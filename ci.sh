#!/usr/bin/env bash
# Local CI gate: build, test, format, lint. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI gate passed."
