#!/usr/bin/env bash
# Local CI gate: build, test, format, lint. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test --features fault-injection --test robustness"
cargo test --features fault-injection --test robustness -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# No-panic gate: gef-core and gef-gam deny unwrap/expect in non-test
# library code via #![cfg_attr(not(test), deny(...))] in their lib.rs;
# this lint pass compiles the libs without cfg(test) to enforce it.
echo "==> cargo clippy (no-panic gate: gef-core, gef-gam)"
cargo clippy -p gef-core -p gef-gam --lib -- -D warnings

echo "CI gate passed."
