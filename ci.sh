#!/usr/bin/env bash
# Local CI gate: build, test, docs, determinism, format, lint. Run
# before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --workspace --release

# The tier-1 suite runs twice: once serial, once on the gef-par worker
# pool. Every assertion must hold identically — the parallel runtime's
# contract is bit-identical results at any thread count.
echo "==> cargo test (GEF_THREADS=1)"
GEF_THREADS=1 cargo test --workspace -q

echo "==> cargo test (GEF_THREADS=4)"
GEF_THREADS=4 cargo test --workspace -q

echo "==> cargo test --doc"
cargo test --workspace --doc -q

echo "==> cargo doc (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

# Telemetry determinism: the same pipeline run at 1 and 4 threads must
# produce reports that agree on every non-timing field (span counts,
# counters, gauges, the event sequence). telemetry_diff exits nonzero
# on any divergence.
echo "==> telemetry determinism (GEF_THREADS=1 vs 4)"
GEF_TRACE=json GEF_THREADS=1 \
    cargo run --release -q -p gef-bench --bin xp_scaling -- --quick --ci-label scaling_t1
GEF_TRACE=json GEF_THREADS=4 \
    cargo run --release -q -p gef-bench --bin xp_scaling -- --quick --ci-label scaling_t4
cargo run --release -q -p gef-bench --bin telemetry_diff -- \
    results/telemetry/scaling_t1.json results/telemetry/scaling_t4.json

# Bench-regression gate: the fixed-seed xp_regress suite (forest
# training, D* labeling, GCV search, end-to-end explain, each at
# GEF_THREADS 1 and 4) against the committed BENCH_baseline.json.
# Noise-aware thresholds; on a machine whose profile doesn't match the
# baseline it warns and skips instead of failing. Every run appends to
# BENCH_trajectory.json. GEF_PROF=1 also archives a Chrome-trace
# timeline under results/profiles/ (load it in ui.perfetto.dev).
echo "==> bench regression gate (xp_regress --ci)"
GEF_PROF=1 cargo run --release -q -p gef-bench --bin xp_regress -- --ci

echo "==> cargo test --features fault-injection --test observability"
cargo test --features fault-injection --test observability -q

# Incident-dump gate: with tracing and profiling explicitly OFF, a
# forced fault under a tight deadline must still produce a schema-valid
# incident dump (the flight recorder is always on), and the dump's own
# replay_faults string must reproduce the same typed error.
# incident_view --force-fault asserts all of it end to end and
# round-trips the dump through gef_trace::json::parse.
echo "==> incident-dump gate (incident_view --force-fault, trace/prof off)"
GEF_TRACE=0 GEF_PROF=0 GEF_INCIDENT_DIR=results/incidents \
    cargo run --release -q -p gef-bench --features fault-injection \
    --bin incident_view -- --force-fault --deadline-ms 150

echo "==> cargo test --features fault-injection --test robustness"
cargo test --features fault-injection --test robustness -q

echo "==> cargo test --features fault-injection --test parallel"
cargo test --features fault-injection --test parallel -q

# Seeded chaos gate: a short random sweep over the GEF_FAULTS schedule
# space with a tight deadline armed. xp_chaos exits nonzero on any
# invariant violation (panic, hang past the hard deadline, or an
# untyped/invalid completion) and prints a replayable GEF_FAULTS
# string for the offending schedule.
echo "==> chaos sweep (xp_chaos --schedules 25 --seed 7)"
cargo run --release -q -p gef-bench --features fault-injection \
    --bin xp_chaos -- --schedules 25 --seed 7 --deadline-ms 1500

# Serve gate: boot the explanation service on an ephemeral port inside
# xp_serve and hammer it with a fixed-seed closed-loop fleet (4 clients
# x 40 requests against 2 workers and a 2-deep queue, then one
# GEF_FAULTS schedule under load). The harness exits nonzero if any
# response leaves the typed-status envelope, a 429 lacks Retry-After,
# a socket hangs, or the drained server still answers.
echo "==> serve gate (xp_serve --ci)"
cargo run --release -q -p gef-bench --features fault-injection \
    --bin xp_serve -- --ci

# Metrics-exposition gate: xp_serve scrapes /metrics into
# BENCH_metrics.prom during the serve gate (and reconciles the server's
# response counters against its own client tallies); metrics_check
# re-validates the scrape as Prometheus text format 0.0.4 and pins the
# families the dashboards depend on.
echo "==> metrics exposition gate (metrics_check BENCH_metrics.prom)"
cargo run --release -q -p gef-bench --bin metrics_check -- BENCH_metrics.prom \
    --require gef_serve_responses_total \
    --require gef_serve_explain_latency_us_bucket \
    --require gef_serve_window_success_ratio

# Store-durability gate: a seeded crash/corruption sweep over the four
# gef-store disk-fault sites (torn writes, bit flips, truncated reads,
# ENOSPC) across write/read/evict phases against fresh stores. xp_store
# exits nonzero if any load returns bytes that are not digest-verified,
# any Corrupt verdict fails to quarantine the artifact, or anything
# panics — and prints a replayable GEF_FAULTS string per violation.
echo "==> store-durability gate (xp_store --ci)"
cargo run --release -q -p gef-bench --features fault-injection \
    --bin xp_store -- --ci

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# No-panic gate: gef-core, gef-gam, gef-par, and gef-forest deny
# unwrap/expect in non-test library code via
# #![cfg_attr(not(test), deny(...))] in their lib.rs; this lint pass
# compiles the libs without cfg(test) to enforce it. gef-par is
# included so the guarantee covers the parallel paths: a task panic
# comes back as ParError::TaskPanicked, never a coordinator re-raise.
# gef-forest is included because the flattened inference kernel uses
# unchecked indexing behind build-time validation — the rest of the
# crate must not hide a panic path that validation was supposed to
# remove. gef-store is included because the artifact store's contract
# is typed errors on every disk-fault path — a panic there would turn
# a corrupt artifact into a dead server.
echo "==> cargo clippy (no-panic gate: gef-core, gef-gam, gef-par, gef-forest, gef-store)"
cargo clippy -p gef-core -p gef-gam -p gef-par -p gef-forest -p gef-store --lib -- -D warnings

echo "CI gate passed."
