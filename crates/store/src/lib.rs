//! # gef-store
//!
//! Crash-safe, content-addressed artifact store for GEF models and
//! derived artifacts: trained forests (binary `GFB1` + LightGBM-style
//! text, side by side), fitted-GAM blobs, and cached explanations keyed
//! by `(model digest, config digest)`. Every artifact is addressed by
//! the 64-bit content digest the flight-recorder/provenance layer
//! already stamps on it (`Forest::content_digest`,
//! `GefConfig::content_digest`), so a name is never trusted — bytes
//! are re-verified against their address on **every** load.
//!
//! ## Durability contract
//!
//! * **Atomic publish** — artifacts are staged in `tmp/`, fsynced, and
//!   `rename(2)`d into place; readers never observe a half-written
//!   file under its final name. A crash mid-publish leaves only a
//!   stale temp file; failed publishes remove their own staging file
//!   and [`Store::open`] sweeps whatever a crash left in `tmp/`.
//! * **Verified loads** — binary artifacts carry per-section FNV
//!   checksums and a whole-file trailer ([`gef_forest::codec`]); after
//!   decode the forest's content digest must equal the address. Text
//!   and blob artifacts are verified the same way (checksummed
//!   envelope or digest recompute).
//! * **Quarantine, never a panic** — a torn, truncated, or bit-flipped
//!   artifact is moved to `quarantine/` with a `.why.json` side-car
//!   (cause, detail, replayable fault schedule) and a
//!   [`Kind::Store`] recorder note; the load then *recovers* through
//!   the text fallback (re-publishing the binary form, self-healing)
//!   or returns a typed [`StoreError`]. Corrupt bytes are never
//!   served.
//! * **Bounded MRU cache** — decoded forests are cached up to
//!   `GEF_STORE_CACHE_MB` ([`cache::MruCache`]) with hit/miss/evict
//!   counters surfaced through `GET /models` in gef-serve.
//!
//! ## On-disk layout
//!
//! ```text
//! <root>/
//!   forests/<digest16>.gfb       binary model (primary cold-load path)
//!   forests/<digest16>.txt       LightGBM-style text (fallback + interchange)
//!   gams/<digest16>.blob         fitted-GAM payload in a GEFE envelope
//!   explanations/<model16>-<config16>.json   explanation JSON in a GEFE envelope
//!   refs/<name>                  human name -> digest16 (atomic replace)
//!   quarantine/                  corrupt artifacts + .why.json side-cars
//!   tmp/                         publish staging (crash debris, swept at open)
//! ```
//!
//! ## Fault injection
//!
//! Four disk-fault sites run through the `gef_trace::fault` registry
//! (compiled to constant `false` without the `fault-injection`
//! feature): [`TORN_WRITE`], [`BIT_FLIP`], [`ENOSPC`] at publish and
//! [`TRUNCATE`] at read. The `xp_store` harness sweeps seeded
//! schedules over all four and asserts the contract above holds with
//! zero violations.
//!
//! [`Kind::Store`]: gef_trace::recorder::Kind::Store

#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;

pub use cache::{CacheStats, MruCache};

use gef_forest::{codec, io as forest_io, Forest};
use gef_trace::hash::{fnv1a_bytes, to_hex};
use gef_trace::recorder::{self, Kind};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Publish-time fault: the staged file receives only half its bytes
/// (and no fsync) before the rename — a torn artifact under its final
/// name, exactly what a crash between write and flush produces.
pub const TORN_WRITE: &str = "store.torn_write";
/// Publish-time fault: one bit of the staged payload is flipped —
/// silent media corruption.
pub const BIT_FLIP: &str = "store.bit_flip";
/// Read-time fault: the read buffer is cut to half its length — a
/// truncated artifact (lost tail).
pub const TRUNCATE: &str = "store.truncate";
/// Publish-time fault: the write fails with an injected out-of-space
/// error; nothing reaches the final name.
pub const ENOSPC: &str = "store.enospc";

/// Envelope magic for non-forest blobs (GAMs, explanations).
const ENVELOPE_MAGIC: &[u8; 4] = b"GEFE";
const ENVELOPE_VERSION: u32 = 1;

/// Typed store failure. Every variant is a *contained* outcome: the
/// offending artifact (if any) has already been quarantined, nothing
/// corrupt was returned, and the caller can fall back to re-fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No artifact exists at the requested address.
    NotFound {
        /// What was looked up (address or ref name).
        what: String,
    },
    /// A filesystem operation failed (includes injected ENOSPC).
    Io {
        /// The operation (`"write"`, `"read"`, `"rename"`, …).
        op: &'static str,
        /// OS-level detail.
        detail: String,
    },
    /// Every on-disk copy of the artifact failed verification; all
    /// corrupt copies are now in `quarantine/`.
    Corrupt {
        /// Address of the artifact.
        artifact: String,
        /// What the last verification attempt saw.
        detail: String,
    },
    /// A ref name outside `[A-Za-z0-9._-]{1,64}` (or starting with a
    /// dot) was rejected before touching the filesystem.
    InvalidName {
        /// The offending name.
        name: String,
    },
}

impl StoreError {
    /// Stable snake_case cause label for incident dumps and telemetry.
    pub fn cause_label(&self) -> &'static str {
        match self {
            StoreError::NotFound { .. } => "store_not_found",
            StoreError::Io { .. } => "store_io",
            StoreError::Corrupt { .. } => "store_corrupt",
            StoreError::InvalidName { .. } => "store_invalid_name",
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound { what } => write!(f, "artifact not found: {what}"),
            StoreError::Io { op, detail } => write!(f, "store {op} failed: {detail}"),
            StoreError::Corrupt { artifact, detail } => {
                write!(f, "artifact {artifact} corrupt (quarantined): {detail}")
            }
            StoreError::InvalidName { name } => write!(f, "invalid ref name: {name:?}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Where a successful forest load came from — surfaced in `/models`
/// and the `xp_store` report so recovery paths are observable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadSource {
    /// Served from the MRU cache (already verified at insert).
    Cache,
    /// Decoded and digest-verified from the binary `GFB1` artifact.
    Binary,
    /// Binary copy was missing or quarantined; recovered from the text
    /// artifact (which then re-published a fresh binary — self-heal).
    TextFallback,
}

impl LoadSource {
    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            LoadSource::Cache => "cache",
            LoadSource::Binary => "binary",
            LoadSource::TextFallback => "text_fallback",
        }
    }
}

/// A digest-verified forest plus the path that produced it.
#[derive(Debug, Clone)]
pub struct Loaded {
    /// The verified model.
    pub forest: Arc<Forest>,
    /// Which load path served it.
    pub source: LoadSource,
}

/// The content-addressed artifact store. Cheap to share behind an
/// `Arc`; all methods take `&self`.
pub struct Store {
    root: PathBuf,
    cache: MruCache,
    tmp_seq: AtomicU64,
}

/// Default cache budget when `GEF_STORE_CACHE_MB` is unset.
pub const DEFAULT_CACHE_MB: u64 = 64;

fn io_err(op: &'static str, e: &std::io::Error) -> StoreError {
    StoreError::Io {
        op,
        detail: e.to_string(),
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Render the currently armed fault schedule as a `GEF_FAULTS`-style
/// replay string (empty when nothing is armed).
fn replay_faults() -> String {
    gef_trace::fault::armed()
        .iter()
        .map(|(site, trig)| format!("{site}={}", trig.to_spec()))
        .collect::<Vec<_>>()
        .join(",")
}

impl Store {
    /// Open (creating if needed) a store rooted at `root`, with the
    /// cache budget from `GEF_STORE_CACHE_MB` (default
    /// [`DEFAULT_CACHE_MB`]; 0 disables caching).
    pub fn open(root: impl AsRef<Path>) -> Result<Store> {
        let mb = gef_trace::env::u64_var_or("GEF_STORE_CACHE_MB", DEFAULT_CACHE_MB);
        Store::open_with_cache(root, mb.saturating_mul(1024 * 1024))
    }

    /// Open with an explicit cache byte budget (harness/test entry).
    pub fn open_with_cache(root: impl AsRef<Path>, cache_bytes: u64) -> Result<Store> {
        let root = root.as_ref().to_path_buf();
        for sub in [
            "forests",
            "gams",
            "explanations",
            "refs",
            "quarantine",
            "tmp",
        ] {
            fs::create_dir_all(root.join(sub)).map_err(|e| io_err("mkdir", &e))?;
        }
        // Sweep publish-staging debris left by crashes mid-publish:
        // anything still under tmp/ was never renamed into place and
        // can only accumulate otherwise.
        if let Ok(rd) = fs::read_dir(root.join("tmp")) {
            let mut swept = 0u64;
            for entry in rd.flatten() {
                if fs::remove_file(entry.path()).is_ok() {
                    swept += 1;
                }
            }
            if swept > 0 {
                recorder::note(Kind::Store, "store.tmp_swept", &format!("{swept} file(s)"));
            }
        }
        Ok(Store {
            root,
            cache: MruCache::new(cache_bytes),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Cache effectiveness snapshot (for `GET /models` and harnesses).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    // ------------------------------------------------------------------
    // Atomic publish plumbing
    // ------------------------------------------------------------------

    /// Write `bytes` to `final_path` atomically: stage under `tmp/`,
    /// fsync, rename. The three publish-time fault sites act here.
    fn write_atomic(&self, final_path: &Path, bytes: &[u8]) -> Result<()> {
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let stem = final_path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "artifact".to_string());
        let tmp = self.root.join("tmp").join(format!("{stem}.{seq}.tmp"));

        if gef_trace::fault::fires(ENOSPC) {
            let _ = fs::remove_file(&tmp);
            return Err(StoreError::Io {
                op: "write",
                detail: "injected ENOSPC: no space left on device".to_string(),
            });
        }

        let mut data = std::borrow::Cow::Borrowed(bytes);
        if gef_trace::fault::fires(BIT_FLIP) && !bytes.is_empty() {
            let mut owned = bytes.to_vec();
            let pos = owned.len() / 3;
            owned[pos] ^= 0x08;
            data = std::borrow::Cow::Owned(owned);
        }
        let torn = gef_trace::fault::fires(TORN_WRITE);
        let write_len = if torn { data.len() / 2 } else { data.len() };

        let staged = (|| {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err("create", &e))?;
            f.write_all(&data[..write_len])
                .map_err(|e| io_err("write", &e))?;
            if !torn {
                // A torn write models a crash before the flush completed.
                f.sync_all().map_err(|e| io_err("fsync", &e))?;
            }
            drop(f);
            fs::rename(&tmp, final_path).map_err(|e| io_err("rename", &e))
        })();
        if let Err(e) = staged {
            // Don't leave staging debris behind on a failed publish
            // (ENOSPC, permission trouble): tmp/ growth must stay
            // bounded. Crash debris is swept at the next open.
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        // Make the rename itself durable; failure here only widens the
        // crash window, it cannot corrupt, so best-effort.
        if let Some(dir) = final_path.parent() {
            if let Ok(d) = fs::File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Read an artifact; the [`TRUNCATE`] read-fault acts here.
    fn read_artifact(&self, path: &Path) -> Result<Option<Vec<u8>>> {
        match fs::read(path) {
            Ok(mut bytes) => {
                if gef_trace::fault::fires(TRUNCATE) {
                    bytes.truncate(bytes.len() / 2);
                }
                Ok(Some(bytes))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", &e)),
        }
    }

    // ------------------------------------------------------------------
    // Quarantine
    // ------------------------------------------------------------------

    /// Move a failed artifact into `quarantine/`, write its `.why.json`
    /// side-car (cause, detail, replayable fault schedule), and leave a
    /// recorder note. Never fails the caller: quarantine is best-effort
    /// containment on a path that is already erroring.
    fn quarantine(&self, path: &Path, cause: &str, detail: &str) {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "artifact".to_string());
        let qdir = self.root.join("quarantine");
        let mut dest = qdir.join(&name);
        let mut n = 1;
        while dest.exists() {
            dest = qdir.join(format!("{name}.{n}"));
            n += 1;
        }
        if fs::rename(path, &dest).is_err() {
            // Cross-device or permission trouble: fall back to
            // copy+remove so the corrupt bytes still leave the hot path.
            if fs::copy(path, &dest).is_ok() {
                let _ = fs::remove_file(path);
            }
        }

        let mut w = gef_trace::json::JsonWriter::new();
        w.begin_object();
        w.key("schema");
        w.value_str("gef-store/quarantine/v1");
        w.key("cause");
        w.value_str(cause);
        w.key("detail");
        w.value_str(detail);
        w.key("artifact");
        w.value_str(&name);
        w.key("quarantined_as");
        w.value_str(
            &dest
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default(),
        );
        w.key("ts_unix_ms");
        w.value_u64(unix_ms());
        w.key("replay_faults");
        w.value_str(&replay_faults());
        w.end_object();
        let side_car = qdir.join(format!(
            "{}.why.json",
            dest.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default()
        ));
        let _ = fs::write(side_car, w.finish());

        gef_trace::global().add("store.quarantined", 1);
        recorder::note(Kind::Store, "store.quarantine", &format!("{name}: {cause}"));
    }

    /// Names of quarantined artifacts (side-cars excluded), sorted.
    pub fn quarantined(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Ok(rd) = fs::read_dir(self.root.join("quarantine")) {
            for entry in rd.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if !name.ends_with(".why.json") {
                    out.push(name);
                }
            }
        }
        out.sort();
        out
    }

    // ------------------------------------------------------------------
    // Forests
    // ------------------------------------------------------------------

    fn binary_path(&self, digest: u64) -> PathBuf {
        self.root
            .join("forests")
            .join(format!("{}.gfb", to_hex(digest)))
    }

    fn text_path(&self, digest: u64) -> PathBuf {
        self.root
            .join("forests")
            .join(format!("{}.txt", to_hex(digest)))
    }

    /// Publish a forest under its content digest: binary `GFB1` first
    /// (the cold-load path), then the text form (fallback +
    /// interchange). Each file lands atomically; a crash between the
    /// two leaves a loadable binary and no text, which the load path
    /// tolerates. Returns the digest (the artifact's address).
    pub fn publish_forest(&self, forest: &Forest) -> Result<u64> {
        let digest = forest.content_digest();
        self.write_atomic(&self.binary_path(digest), &codec::to_binary(forest))?;
        self.write_atomic(
            &self.text_path(digest),
            forest_io::to_text(forest).as_bytes(),
        )?;
        gef_trace::global().add("store.publish", 1);
        Ok(digest)
    }

    /// Load a forest by content digest, verified end to end.
    ///
    /// Path: MRU cache → binary artifact (checksums + digest check) →
    /// text artifact (parse + digest check, then re-publish the binary
    /// — self-heal). Any copy that fails verification is quarantined
    /// with a side-car; only if *every* copy fails does this return
    /// [`StoreError::Corrupt`] (or [`StoreError::NotFound`] when no
    /// copy exists at all). Corrupt bytes are never returned.
    pub fn load_forest(&self, digest: u64) -> Result<Loaded> {
        if let Some(forest) = self.cache.get(digest) {
            return Ok(Loaded {
                forest,
                source: LoadSource::Cache,
            });
        }

        let hex = to_hex(digest);
        let bin_path = self.binary_path(digest);
        let mut last_detail: Option<String> = None;
        let mut saw_copy = false;

        if let Some(bytes) = self.read_artifact(&bin_path)? {
            saw_copy = true;
            match codec::from_binary(&bytes) {
                Ok(forest) if forest.content_digest() == digest => {
                    let forest = Arc::new(forest);
                    self.cache
                        .insert(digest, Arc::clone(&forest), bytes.len() as u64);
                    return Ok(Loaded {
                        forest,
                        source: LoadSource::Binary,
                    });
                }
                Ok(forest) => {
                    let detail = format!(
                        "digest mismatch: decoded {} at address {hex}",
                        to_hex(forest.content_digest())
                    );
                    self.quarantine(&bin_path, "digest_mismatch", &detail);
                    last_detail = Some(detail);
                }
                Err(e) => {
                    let detail = e.to_string();
                    self.quarantine(&bin_path, "binary_decode", &detail);
                    last_detail = Some(detail);
                }
            }
        }

        // Fallback: the text artifact.
        let txt_path = self.text_path(digest);
        if let Some(bytes) = self.read_artifact(&txt_path)? {
            saw_copy = true;
            let parsed = std::str::from_utf8(&bytes)
                .map_err(|e| format!("not UTF-8: {e}"))
                .and_then(|s| forest_io::from_text(s).map_err(|e| e.to_string()));
            match parsed {
                Ok(forest) if forest.content_digest() == digest => {
                    // Self-heal: re-publish the binary form so the next
                    // cold load is fast again. Best-effort — publish
                    // faults may corrupt it again; the next load will
                    // re-quarantine.
                    let bin = codec::to_binary(&forest);
                    let bin_len = bin.len() as u64;
                    let _ = self.write_atomic(&bin_path, &bin);
                    recorder::note(Kind::Store, "store.self_heal", &hex);
                    gef_trace::global().add("store.text_fallback", 1);
                    let forest = Arc::new(forest);
                    // Cache capacity is accounted in binary-artifact
                    // bytes regardless of which path loaded the forest.
                    self.cache.insert(digest, Arc::clone(&forest), bin_len);
                    return Ok(Loaded {
                        forest,
                        source: LoadSource::TextFallback,
                    });
                }
                Ok(forest) => {
                    let detail = format!(
                        "digest mismatch: parsed {} at address {hex}",
                        to_hex(forest.content_digest())
                    );
                    self.quarantine(&txt_path, "digest_mismatch", &detail);
                    last_detail = Some(detail);
                }
                Err(detail) => {
                    self.quarantine(&txt_path, "text_parse", &detail);
                    last_detail = Some(detail);
                }
            }
        }

        if saw_copy {
            Err(StoreError::Corrupt {
                artifact: hex,
                detail: last_detail.unwrap_or_else(|| "all copies failed verification".into()),
            })
        } else {
            Err(StoreError::NotFound { what: hex })
        }
    }

    /// Digests of all forests with at least one artifact on disk,
    /// sorted (no verification — use [`Store::load_forest`] to trust
    /// one).
    pub fn list_forests(&self) -> Vec<u64> {
        let mut out = Vec::new();
        if let Ok(rd) = fs::read_dir(self.root.join("forests")) {
            for entry in rd.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if let Some(hex) = name
                    .strip_suffix(".gfb")
                    .or_else(|| name.strip_suffix(".txt"))
                {
                    if let Ok(d) = u64::from_str_radix(hex, 16) {
                        out.push(d);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    // ------------------------------------------------------------------
    // Refs (human names)
    // ------------------------------------------------------------------

    /// Point `name` at a forest digest (atomic replace).
    pub fn tag(&self, name: &str, digest: u64) -> Result<()> {
        if !valid_name(name) {
            return Err(StoreError::InvalidName {
                name: name.to_string(),
            });
        }
        self.write_atomic(
            &self.root.join("refs").join(name),
            to_hex(digest).as_bytes(),
        )
    }

    /// Resolve a ref name to its digest.
    pub fn resolve(&self, name: &str) -> Result<u64> {
        if !valid_name(name) {
            return Err(StoreError::InvalidName {
                name: name.to_string(),
            });
        }
        let path = self.root.join("refs").join(name);
        let Some(bytes) = self.read_artifact(&path)? else {
            return Err(StoreError::NotFound {
                what: format!("ref {name}"),
            });
        };
        let text = String::from_utf8_lossy(&bytes);
        match u64::from_str_radix(text.trim(), 16) {
            Ok(d) if text.trim().len() == 16 => Ok(d),
            _ => {
                let detail = format!("ref does not hold a 16-hex digest: {:?}", text.trim());
                self.quarantine(&path, "ref_malformed", &detail);
                Err(StoreError::Corrupt {
                    artifact: format!("ref {name}"),
                    detail,
                })
            }
        }
    }

    /// Resolve and load in one step.
    pub fn load_named(&self, name: &str) -> Result<Loaded> {
        let digest = self.resolve(name)?;
        self.load_forest(digest)
    }

    /// All `(name, digest)` refs, name-sorted. Malformed refs are
    /// skipped here (surfaced when resolved individually).
    pub fn refs(&self) -> Vec<(String, u64)> {
        let mut out = Vec::new();
        if let Ok(rd) = fs::read_dir(self.root.join("refs")) {
            for entry in rd.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if let Ok(bytes) = fs::read(entry.path()) {
                    let text = String::from_utf8_lossy(&bytes);
                    if let Ok(d) = u64::from_str_radix(text.trim(), 16) {
                        out.push((name, d));
                    }
                }
            }
        }
        out.sort();
        out
    }

    // ------------------------------------------------------------------
    // Blobs: GAMs and cached explanations (GEFE envelope)
    // ------------------------------------------------------------------

    fn seal(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(payload.len() + 24);
        out.extend_from_slice(ENVELOPE_MAGIC);
        out.extend_from_slice(&ENVELOPE_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a_bytes(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    fn unseal(bytes: &[u8]) -> std::result::Result<Vec<u8>, String> {
        if bytes.len() < 24 {
            return Err(format!("envelope truncated: {} bytes", bytes.len()));
        }
        if &bytes[..4] != ENVELOPE_MAGIC {
            return Err("bad envelope magic".to_string());
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != ENVELOPE_VERSION {
            return Err(format!("unsupported envelope version {version}"));
        }
        let len = u64::from_le_bytes([
            bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
        ]) as usize;
        let sum = u64::from_le_bytes([
            bytes[16], bytes[17], bytes[18], bytes[19], bytes[20], bytes[21], bytes[22], bytes[23],
        ]);
        let payload = &bytes[24..];
        if payload.len() != len {
            return Err(format!(
                "payload length mismatch: header says {len}, found {}",
                payload.len()
            ));
        }
        if fnv1a_bytes(payload) != sum {
            return Err("payload checksum mismatch".to_string());
        }
        Ok(payload.to_vec())
    }

    fn get_sealed(&self, path: &Path, what: &str) -> Result<Option<Vec<u8>>> {
        let Some(bytes) = self.read_artifact(path)? else {
            return Ok(None);
        };
        match Store::unseal(&bytes) {
            Ok(payload) => Ok(Some(payload)),
            Err(detail) => {
                self.quarantine(path, "envelope", &detail);
                Err(StoreError::Corrupt {
                    artifact: what.to_string(),
                    detail,
                })
            }
        }
    }

    /// Store a fitted-GAM payload under its content digest.
    pub fn put_gam(&self, digest: u64, payload: &[u8]) -> Result<()> {
        let path = self
            .root
            .join("gams")
            .join(format!("{}.blob", to_hex(digest)));
        self.write_atomic(&path, &Store::seal(payload))
    }

    /// Fetch a fitted-GAM payload. `Ok(None)` when absent; a corrupt
    /// envelope is quarantined and reported as [`StoreError::Corrupt`].
    pub fn get_gam(&self, digest: u64) -> Result<Option<Vec<u8>>> {
        let hex = to_hex(digest);
        let path = self.root.join("gams").join(format!("{hex}.blob"));
        self.get_sealed(&path, &format!("gam {hex}"))
    }

    fn explanation_path(&self, model: u64, config: u64) -> PathBuf {
        self.root
            .join("explanations")
            .join(format!("{}-{}.json", to_hex(model), to_hex(config)))
    }

    /// Cache an explanation payload (JSON bytes) keyed by
    /// `(model digest, config digest)`.
    pub fn put_explanation(&self, model: u64, config: u64, payload: &[u8]) -> Result<()> {
        self.write_atomic(&self.explanation_path(model, config), &Store::seal(payload))
    }

    /// Fetch a cached explanation. `Ok(None)` when absent; corruption
    /// quarantines the artifact and returns [`StoreError::Corrupt`]
    /// (callers recompute — a cache must never fail a run).
    pub fn get_explanation(&self, model: u64, config: u64) -> Result<Option<Vec<u8>>> {
        let path = self.explanation_path(model, config);
        let what = format!("explanation {}-{}", to_hex(model), to_hex(config));
        self.get_sealed(&path, &what)
    }

    /// Quarantine a cached explanation whose *payload* failed
    /// caller-side validation (JSON parse, provenance-digest mismatch)
    /// even though its envelope checksum held. Best-effort, like all
    /// quarantining: the caller is already recomputing.
    pub fn quarantine_explanation(&self, model: u64, config: u64, cause: &str, detail: &str) {
        let path = self.explanation_path(model, config);
        if path.exists() {
            self.quarantine(&path, cause, detail);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gef_forest::{GbdtParams, GbdtTrainer};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "gef-store-test-{tag}-{}-{}",
            std::process::id(),
            unix_ms()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn train() -> Forest {
        let xs: Vec<Vec<f64>> = (0..150)
            .map(|i| vec![(i % 13) as f64 / 13.0, (i % 5) as f64 / 5.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] - 0.5 * x[1]).collect();
        GbdtTrainer::new(GbdtParams {
            num_trees: 5,
            num_leaves: 4,
            min_data_in_leaf: 5,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap()
    }

    #[test]
    fn publish_then_load_verifies_and_caches() {
        let dir = tmpdir("roundtrip");
        let store = Store::open_with_cache(&dir, 1 << 20).unwrap();
        let forest = train();
        let digest = store.publish_forest(&forest).unwrap();
        let first = store.load_forest(digest).unwrap();
        assert_eq!(first.source, LoadSource::Binary);
        assert_eq!(first.forest.content_digest(), digest);
        let second = store.load_forest(digest).unwrap();
        assert_eq!(second.source, LoadSource::Cache);
        assert_eq!(store.cache_stats().hits, 1);
        assert_eq!(store.list_forests(), vec![digest]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_binary_falls_back_to_text_and_self_heals() {
        let dir = tmpdir("heal");
        let store = Store::open_with_cache(&dir, 0).unwrap();
        let digest = store.publish_forest(&train()).unwrap();
        // Flip a byte mid-file: the checksum must catch it.
        let bin = store.binary_path(digest);
        let mut bytes = fs::read(&bin).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&bin, &bytes).unwrap();

        let loaded = store.load_forest(digest).unwrap();
        assert_eq!(loaded.source, LoadSource::TextFallback);
        assert_eq!(loaded.forest.content_digest(), digest);
        // The corrupt binary is quarantined with a side-car…
        let q = store.quarantined();
        assert_eq!(q.len(), 1, "{q:?}");
        assert!(q[0].ends_with(".gfb"));
        assert!(dir
            .join("quarantine")
            .join(format!("{}.why.json", q[0]))
            .exists());
        // …and the self-healed binary serves the next load directly.
        let again = store.load_forest(digest).unwrap();
        assert_eq!(again.source, LoadSource::Binary);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn both_copies_corrupt_is_typed_with_both_quarantined() {
        let dir = tmpdir("corrupt2");
        let store = Store::open_with_cache(&dir, 0).unwrap();
        let digest = store.publish_forest(&train()).unwrap();
        fs::write(store.binary_path(digest), b"garbage").unwrap();
        fs::write(store.text_path(digest), b"also garbage").unwrap();
        let err = store.load_forest(digest).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err:?}");
        assert_eq!(err.cause_label(), "store_corrupt");
        assert_eq!(store.quarantined().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_artifact_is_not_found() {
        let dir = tmpdir("missing");
        let store = Store::open_with_cache(&dir, 0).unwrap();
        let err = store.load_forest(0xdead_beef).unwrap_err();
        assert!(matches!(err, StoreError::NotFound { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn refs_round_trip_and_reject_bad_names() {
        let dir = tmpdir("refs");
        let store = Store::open_with_cache(&dir, 0).unwrap();
        let digest = store.publish_forest(&train()).unwrap();
        store.tag("paper-forest", digest).unwrap();
        assert_eq!(store.resolve("paper-forest").unwrap(), digest);
        assert_eq!(store.refs(), vec![("paper-forest".to_string(), digest)]);
        assert_eq!(
            store
                .load_named("paper-forest")
                .unwrap()
                .forest
                .content_digest(),
            digest
        );
        for bad in ["", ".hidden", "a/b", "name with space", &"x".repeat(65)] {
            assert!(matches!(
                store.tag(bad, digest),
                Err(StoreError::InvalidName { .. })
            ));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_ref_is_quarantined() {
        let dir = tmpdir("badref");
        let store = Store::open_with_cache(&dir, 0).unwrap();
        fs::write(dir.join("refs").join("broken"), b"not-a-digest").unwrap();
        let err = store.resolve("broken").unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }));
        assert_eq!(store.quarantined(), vec!["broken".to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn explanation_envelope_round_trips_and_detects_corruption() {
        let dir = tmpdir("expl");
        let store = Store::open_with_cache(&dir, 0).unwrap();
        assert_eq!(store.get_explanation(1, 2).unwrap(), None);
        let payload = br#"{"terms":[1.0,2.0]}"#;
        store.put_explanation(1, 2, payload).unwrap();
        assert_eq!(store.get_explanation(1, 2).unwrap().unwrap(), payload);
        // Corrupt one payload byte inside the envelope.
        let path = store.explanation_path(1, 2);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        fs::write(&path, &bytes).unwrap();
        let err = store.get_explanation(1, 2).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }));
        assert_eq!(store.quarantined().len(), 1);
        // Quarantined means gone from the hot path: next get is a miss.
        assert_eq!(store.get_explanation(1, 2).unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gam_blob_round_trips() {
        let dir = tmpdir("gam");
        let store = Store::open_with_cache(&dir, 0).unwrap();
        assert_eq!(store.get_gam(7).unwrap(), None);
        store.put_gam(7, b"gam-bytes").unwrap();
        assert_eq!(store.get_gam(7).unwrap().unwrap(), b"gam-bytes");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_debris_in_tmp_never_surfaces_and_is_swept_at_open() {
        let dir = tmpdir("debris");
        let store = Store::open_with_cache(&dir, 0).unwrap();
        // Simulated crash mid-publish: a stale temp file only.
        let debris = dir.join("tmp").join("x.gfb.0.tmp");
        fs::write(&debris, b"half").unwrap();
        assert!(store.list_forests().is_empty());
        assert!(matches!(
            store.load_forest(1).unwrap_err(),
            StoreError::NotFound { .. }
        ));
        // Reopening the store sweeps the debris: tmp/ growth is
        // bounded across crash loops.
        let _reopened = Store::open_with_cache(&dir, 0).unwrap();
        assert!(!debris.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_publish_leaves_no_tmp_debris() {
        let dir = tmpdir("nodebris");
        let store = Store::open_with_cache(&dir, 0).unwrap();
        // Rename onto a path whose parent is a *file*: create/write
        // succeed, rename fails — the staged tmp file must be cleaned.
        fs::write(dir.join("blocker"), b"").unwrap();
        let err = store
            .write_atomic(&dir.join("blocker").join("x"), b"payload")
            .unwrap_err();
        assert!(
            matches!(err, StoreError::Io { op: "rename", .. }),
            "{err:?}"
        );
        let leftover: Vec<_> = fs::read_dir(dir.join("tmp"))
            .unwrap()
            .flatten()
            .map(|e| e.file_name())
            .collect();
        assert!(leftover.is_empty(), "{leftover:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
