//! Bounded MRU cache of decoded forests.
//!
//! Keyed by content digest, bounded by *artifact bytes* (the on-disk
//! size of the binary form — a stable, cheap proxy for decoded memory
//! footprint), evicting least-recently-used entries until the resident
//! total fits. Capacity comes from `GEF_STORE_CACHE_MB` (0 disables
//! caching entirely: every load is a cold, digest-verified read).
//!
//! Hit/miss/evict totals are kept locally (for `GET /models` and
//! [`crate::Store::cache_stats`]) and mirrored to `gef_trace` counters
//! (`store.cache_hit` / `store.cache_miss` / `store.cache_evict`);
//! each eviction also leaves a [`Kind::Store`] recorder note.
//!
//! [`Kind::Store`]: gef_trace::recorder::Kind::Store

use gef_forest::Forest;
use gef_trace::recorder::{self, Kind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

struct Entry {
    forest: Arc<Forest>,
    bytes: u64,
    /// Logical access clock at last touch; smallest = least recent.
    stamp: u64,
}

struct Inner {
    map: HashMap<u64, Entry>,
    clock: u64,
    resident: u64,
}

/// A point-in-time snapshot of cache effectiveness, reported by
/// `GET /models` and the `xp_store` harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Loads served from memory.
    pub hits: u64,
    /// Loads that had to hit disk.
    pub misses: u64,
    /// Entries evicted to stay under capacity.
    pub evictions: u64,
    /// Forests currently resident.
    pub entries: usize,
    /// Bytes currently resident (binary-artifact sizes).
    pub resident_bytes: u64,
    /// Byte budget (0 = caching disabled).
    pub capacity_bytes: u64,
}

/// Digest-keyed, byte-bounded most-recently-used forest cache.
pub struct MruCache {
    inner: Mutex<Inner>,
    capacity: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl MruCache {
    /// Create a cache bounded to `capacity` bytes (0 disables it).
    pub fn new(capacity: u64) -> Self {
        MruCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                clock: 0,
                resident: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A poisoned cache mutex means a panic mid-insert; the map is
        // still structurally valid (no unsafe), so recover and serve.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Look up a forest by digest, refreshing its recency on hit.
    pub fn get(&self, digest: u64) -> Option<Arc<Forest>> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(&digest) {
            Some(e) => {
                e.stamp = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                gef_trace::global().add("store.cache_hit", 1);
                Some(Arc::clone(&e.forest))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                gef_trace::global().add("store.cache_miss", 1);
                None
            }
        }
    }

    /// Insert a digest-verified forest, evicting LRU entries until the
    /// resident total fits. An artifact larger than the whole budget is
    /// simply not cached.
    pub fn insert(&self, digest: u64, forest: Arc<Forest>, bytes: u64) {
        if self.capacity == 0 || bytes > self.capacity {
            return;
        }
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.map.remove(&digest) {
            inner.resident -= old.bytes;
        }
        while inner.resident + bytes > self.capacity {
            let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, e)| e.stamp) else {
                break;
            };
            if let Some(e) = inner.map.remove(&victim) {
                inner.resident -= e.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                gef_trace::global().add("store.cache_evict", 1);
                recorder::note(
                    Kind::Store,
                    "store.cache_evict",
                    &gef_trace::hash::to_hex(victim),
                );
            }
        }
        inner.resident += bytes;
        inner.map.insert(
            digest,
            Entry {
                forest,
                bytes,
                stamp: clock,
            },
        );
    }

    /// Drop an entry (used when a cached digest's artifacts are
    /// discovered corrupt on disk and re-verified from scratch).
    pub fn remove(&self, digest: u64) {
        let mut inner = self.lock();
        if let Some(e) = inner.map.remove(&digest) {
            inner.resident -= e.bytes;
        }
    }

    /// Current effectiveness snapshot.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            resident_bytes: inner.resident,
            capacity_bytes: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gef_forest::{Objective, Tree};

    fn forest(v: f64) -> Arc<Forest> {
        Arc::new(Forest::new(
            vec![Tree::constant(v, 1)],
            0.0,
            1.0,
            Objective::RegressionL2,
            0,
        ))
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let c = MruCache::new(100);
        c.insert(1, forest(1.0), 40);
        c.insert(2, forest(2.0), 40);
        assert!(c.get(1).is_some()); // 1 is now more recent than 2
        c.insert(3, forest(3.0), 40); // must evict 2
        assert!(c.get(2).is_none());
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert_eq!(s.resident_bytes, 80);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = MruCache::new(0);
        c.insert(1, forest(1.0), 8);
        assert!(c.get(1).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn oversized_artifact_is_not_cached() {
        let c = MruCache::new(10);
        c.insert(1, forest(1.0), 11);
        assert!(c.get(1).is_none());
        assert_eq!(c.stats().entries, 0);
    }

    #[test]
    fn reinsert_replaces_and_keeps_accounting() {
        let c = MruCache::new(100);
        c.insert(1, forest(1.0), 30);
        c.insert(1, forest(1.5), 50);
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.resident_bytes, 50);
        c.remove(1);
        assert_eq!(c.stats().resident_bytes, 0);
    }
}
