//! `gef-serve`: a never-panic explanation service over preloaded
//! forests.
//!
//! A zero-dependency `std::net` HTTP/1.1 server that turns the
//! single-run SLO machinery built across the workspace — the
//! degradation ladder, run budgets, incident dumps, the flight
//! recorder — into a long-lived concurrent service:
//!
//! * `POST /explain` — run the GEF pipeline over a preloaded model and
//!   return the **local explanation** of the posted instance (additive
//!   per-term contributions with standard errors), plus the run's
//!   fidelity, degradation history, and budget outcome.
//! * `POST /predict` — raw forest prediction for the posted instance.
//! * `GET /healthz` — liveness (`serving` / `draining`).
//! * `GET /stats` — request counters, latency quantiles (p50/p95/p99),
//!   a rolling last-minute SLO window, queue depth, and circuit-breaker
//!   state.
//! * `GET /metrics` — the same signals as Prometheus text exposition
//!   (format 0.0.4): counters, per-status response tallies, a
//!   fixed-bucket latency histogram, 1-min/5-min SLO windows, and
//!   store gauges.
//! * `GET /models` — loaded models with their content digests and —
//!   when the server is store-backed ([`Server::start_with_store`] /
//!   `gef-serve --store DIR`) — the `gef-store` MRU-cache state and
//!   quarantine count.
//!
//! **Artifact store (optional).** [`Server::start_with_store`] backs
//! the server with a `gef_store::Store`: `/explain` reuses
//! digest-verified cached explanations keyed by
//! `(model digest, config digest)` ([`gef_core::reuse`]) — corrupt
//! cache entries are quarantined and recomputed, never served — and
//! the store's bounded MRU cache (`GEF_STORE_CACHE_MB`) accelerates
//! model loads across restarts.
//!
//! # Robustness model
//!
//! **Per-request budgets.** Every `/explain` request enters its own
//! scoped [`gef_core::budget::RunBudget`] (hard deadline from the
//! request's `deadline_ms` or [`ServeConfig::deadline_ms`]; soft at
//! 80%), so two concurrent requests hold independent deadlines — one
//! can hard-trip to a typed 504 while its neighbour completes clean.
//!
//! **Admission control.** The accept loop keeps a bounded queue
//! ([`ServeConfig::queue_depth`]); when full, requests are shed
//! immediately with `429` + `Retry-After` instead of piling latency
//! onto everyone. As depth rises past half the bound, admitted requests
//! are served **degraded-by-design**: the pipeline's
//! [`gef_core::FitFloor`] is armed preemptively (univariate-only, then
//! linear surrogate), trading explanation richness for latency instead
//! of answering 503.
//!
//! **Fault containment.** Every request runs under `catch_unwind`: a
//! panic yields a typed `500` plus a [`gef_core::incident`] dump,
//! never a dead server. A circuit breaker trips to the
//! linear-surrogate floor after [`ServeConfig::breaker_threshold`]
//! consecutive GAM-fit failures, and closes again after a cooldown.
//!
//! **Graceful drain.** [`server::Server::shutdown`] stops accepting,
//! lets workers finish every queued connection, then joins them —
//! in-flight requests complete, new connections are refused.
//!
//! # Environment knobs
//!
//! All parsed through [`gef_trace::env`] (typed, warn-once on invalid
//! values, never fatal):
//!
//! | variable | meaning | default |
//! |----------|---------|---------|
//! | `GEF_SERVE_PORT` | TCP port (0 = ephemeral) | 0 |
//! | `GEF_SERVE_WORKERS` | request worker threads | min(threads, 4) |
//! | `GEF_SERVE_QUEUE` | admission queue bound | 32 |
//! | `GEF_SERVE_DEADLINE_MS` | default per-request hard deadline | 10000 |
//! | `GEF_SERVE_MAX_BODY` | request body byte cap | 1048576 |
//! | `GEF_SERVE_BREAKER_K` | consecutive fit failures to trip | 5 |
//! | `GEF_SERVE_BREAKER_COOLDOWN_MS` | breaker open duration | 1000 |
//! | `GEF_SERVE_SLOW_MS` | slow-request capture threshold (0 = off) | 0 |
//! | `GEF_SERVE_PROFILE` | honor `/explain?profile=1` (enables timelines) | 0 |

pub mod http;
pub mod server;

pub use server::{ModelEntry, Server};

/// Server configuration. Construct with [`ServeConfig::from_env`]
/// (production) or build one programmatically (tests, embedding).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// TCP port to bind on loopback (0 = OS-assigned ephemeral port;
    /// read it back via [`Server::port`]).
    pub port: u16,
    /// Request worker threads (min 1).
    pub workers: usize,
    /// Admission queue bound: connections beyond it are shed with 429.
    pub queue_depth: usize,
    /// Default per-request hard deadline in milliseconds; a request's
    /// `deadline_ms` field may lower (never raise) it.
    pub deadline_ms: u64,
    /// Maximum accepted request body size in bytes (larger → 413).
    pub max_body_bytes: usize,
    /// Consecutive GAM-fit failures that open the circuit breaker.
    pub breaker_threshold: u32,
    /// How long the breaker stays open before closing again.
    pub breaker_cooldown_ms: u64,
    /// `/explain` requests slower than this (wall-clock ms) dump a
    /// trace-id-filtered slow-request capture under the incident
    /// directory (`GEF_SERVE_SLOW_MS`); 0 disables.
    pub slow_ms: u64,
    /// Honor `/explain?profile=1` (`GEF_SERVE_PROFILE`): turns timeline
    /// recording on at server start and returns the request's own
    /// Chrome-trace fragment inline in the response.
    pub profile: bool,
    /// Honor `x-gef-test` request headers (deliberate panics etc.).
    /// Never enabled from the environment — tests only.
    pub test_hooks: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: 0,
            workers: gef_par::threads().clamp(1, 4),
            queue_depth: 32,
            deadline_ms: 10_000,
            max_body_bytes: 1 << 20,
            breaker_threshold: 5,
            breaker_cooldown_ms: 1_000,
            slow_ms: 0,
            profile: false,
            test_hooks: false,
        }
    }
}

impl ServeConfig {
    /// Read the configuration from the `GEF_SERVE_*` knobs (see the
    /// crate docs), with [`ServeConfig::default`] filling the gaps.
    /// Invalid values warn once and fall back — never fatal.
    pub fn from_env() -> Self {
        use gef_trace::env::u64_var_or;
        let d = ServeConfig::default();
        ServeConfig {
            port: u64_var_or("GEF_SERVE_PORT", u64::from(d.port)).min(u64::from(u16::MAX)) as u16,
            workers: (u64_var_or("GEF_SERVE_WORKERS", d.workers as u64).max(1) as usize).min(256),
            queue_depth: (u64_var_or("GEF_SERVE_QUEUE", d.queue_depth as u64).max(1) as usize)
                .min(1 << 16),
            deadline_ms: u64_var_or("GEF_SERVE_DEADLINE_MS", d.deadline_ms).max(1),
            max_body_bytes: (u64_var_or("GEF_SERVE_MAX_BODY", d.max_body_bytes as u64).max(64)
                as usize)
                .min(1 << 30),
            breaker_threshold: u64_var_or("GEF_SERVE_BREAKER_K", u64::from(d.breaker_threshold))
                .max(1)
                .min(u64::from(u32::MAX)) as u32,
            breaker_cooldown_ms: u64_var_or("GEF_SERVE_BREAKER_COOLDOWN_MS", d.breaker_cooldown_ms),
            slow_ms: u64_var_or("GEF_SERVE_SLOW_MS", d.slow_ms),
            profile: u64_var_or("GEF_SERVE_PROFILE", 0) != 0,
            test_hooks: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // Env vars are process-global; serialise the tests that set them.
    static LOCK: Mutex<()> = Mutex::new(());

    const VARS: [&str; 9] = [
        "GEF_SERVE_PORT",
        "GEF_SERVE_WORKERS",
        "GEF_SERVE_QUEUE",
        "GEF_SERVE_DEADLINE_MS",
        "GEF_SERVE_MAX_BODY",
        "GEF_SERVE_BREAKER_K",
        "GEF_SERVE_BREAKER_COOLDOWN_MS",
        "GEF_SERVE_SLOW_MS",
        "GEF_SERVE_PROFILE",
    ];

    #[test]
    fn env_config_parses_and_clamps() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for v in VARS {
            std::env::remove_var(v);
        }
        std::env::set_var("GEF_SERVE_PORT", "8123");
        std::env::set_var("GEF_SERVE_WORKERS", "0"); // clamped to 1
        std::env::set_var("GEF_SERVE_QUEUE", "7");
        std::env::set_var("GEF_SERVE_DEADLINE_MS", "bogus"); // warned, default
        std::env::set_var("GEF_SERVE_SLOW_MS", "750");
        std::env::set_var("GEF_SERVE_PROFILE", "1");
        let cfg = ServeConfig::from_env();
        assert_eq!(cfg.port, 8123);
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.queue_depth, 7);
        assert_eq!(cfg.deadline_ms, ServeConfig::default().deadline_ms);
        assert_eq!(cfg.slow_ms, 750);
        assert!(cfg.profile);
        assert!(!cfg.test_hooks, "test hooks never come from the env");
        for v in VARS {
            std::env::remove_var(v);
        }
        let off = ServeConfig::from_env();
        assert_eq!(off.slow_ms, 0, "slow capture defaults off");
        assert!(!off.profile, "profiling defaults off");
    }
}
