//! Standalone explanation service: load a forest, serve explanations.
//!
//! ```text
//! gef-serve [--store DIR] --model model.txt [--model-json model.json] [--name NAME]
//! ```
//!
//! Repeat `--model`/`--model-json` to preload several models (each
//! `--name` applies to the most recent model flag; unnamed models get
//! `model-<i>`). With no model flag a small synthetic demo forest is
//! trained so the endpoints can be exercised immediately.
//!
//! `--store DIR` backs the server with a `gef-store` artifact store:
//! every CLI-given model is published into it (binary + text, tagged
//! with its name), every ref already in the store is loaded as a
//! served model (digest-verified, with quarantine + text-format
//! recovery on corrupt artifacts), `/explain` reuses cached
//! explanations keyed by `(model digest, config digest)`, and
//! `GET /models` reports digests plus MRU-cache state
//! (`GEF_STORE_CACHE_MB`).
//!
//! All serving knobs come from `GEF_SERVE_*` (see the `gef-serve` crate
//! docs): port, workers, queue depth, default deadline, body cap,
//! breaker threshold/cooldown. The process serves until killed; drain
//! semantics are exercised programmatically (see `Server::shutdown`)
//! and by the `xp_serve` harness.

use gef_core::GefConfig;
use gef_forest::{Forest, GbdtParams, GbdtTrainer, Objective};
use gef_serve::{ModelEntry, ServeConfig, Server};

fn demo_forest() -> Forest {
    let mut state = 5u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let xs: Vec<Vec<f64>> = (0..800).map(|_| (0..4).map(|_| next()).collect()).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 2.0 * x[0] - x[1] + (x[2] * 5.0).sin() + 0.5 * x[3])
        .collect();
    GbdtTrainer::new(GbdtParams {
        num_trees: 60,
        num_leaves: 16,
        learning_rate: 0.1,
        min_data_in_leaf: 10,
        objective: Objective::RegressionL2,
        ..Default::default()
    })
    .fit(&xs, &ys)
    .expect("the demo forest trains on synthetic data")
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut models: Vec<ModelEntry> = Vec::new();
    let mut store_dir: Option<String> = None;
    let mut i = 1;
    while i < argv.len() {
        let path = |j: usize| -> &str {
            argv.get(j)
                .unwrap_or_else(|| {
                    eprintln!("{} requires an argument", argv[j - 1]);
                    std::process::exit(2);
                })
                .as_str()
        };
        match argv[i].as_str() {
            flag @ ("--model" | "--model-json") => {
                let p = path(i + 1);
                let raw = std::fs::read_to_string(p).unwrap_or_else(|e| {
                    eprintln!("cannot read {p}: {e}");
                    std::process::exit(2);
                });
                let parsed = if flag == "--model" {
                    gef_forest::io::from_text(&raw)
                } else {
                    gef_forest::io::from_json(&raw)
                };
                let forest = parsed.unwrap_or_else(|e| {
                    eprintln!("cannot parse {p}: {e}");
                    std::process::exit(2);
                });
                models.push(ModelEntry {
                    name: format!("model-{}", models.len()),
                    forest,
                    config: GefConfig::default(),
                });
                i += 2;
            }
            "--store" => {
                store_dir = Some(path(i + 1).to_string());
                i += 2;
            }
            "--name" => {
                let name = path(i + 1).to_string();
                match models.last_mut() {
                    Some(m) => m.name = name,
                    None => {
                        eprintln!("--name must follow a --model/--model-json flag");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other:?} (expected --store/--model/--model-json/--name)");
                std::process::exit(2);
            }
        }
    }
    // Open the artifact store first: CLI models are published into it
    // (binary + text, name-tagged), then *every* ref in the store is
    // loaded back — digest-verified, with quarantine + text-format
    // recovery — so a restarted server picks up models published by
    // earlier runs without re-reading the original files.
    let store = store_dir.map(|dir| {
        let store = gef_store::Store::open(&dir).unwrap_or_else(|e| {
            eprintln!("gef-serve: cannot open store {dir}: {e}");
            std::process::exit(2);
        });
        for m in &models {
            let digest = store.publish_forest(&m.forest).unwrap_or_else(|e| {
                eprintln!("gef-serve: cannot publish {:?} into the store: {e}", m.name);
                std::process::exit(2);
            });
            if let Err(e) = store.tag(&m.name, digest) {
                eprintln!("gef-serve: cannot tag {:?}: {e}", m.name);
                std::process::exit(2);
            }
        }
        for (name, digest) in store.refs() {
            if models.iter().any(|m| m.name == name) {
                continue;
            }
            match store.load_forest(digest) {
                Ok(loaded) => models.push(ModelEntry {
                    name,
                    forest: (*loaded.forest).clone(),
                    config: GefConfig::default(),
                }),
                Err(e) => {
                    // Corrupt store artifacts are quarantined, never
                    // fatal: the server starts without that model.
                    eprintln!("gef-serve: skipping store model {name:?}: {e}");
                }
            }
        }
        std::sync::Arc::new(store)
    });

    if models.is_empty() {
        eprintln!("gef-serve: no --model given; serving a synthetic demo forest as \"demo\"");
        models.push(ModelEntry {
            name: "demo".into(),
            forest: demo_forest(),
            config: GefConfig {
                num_univariate: 4,
                n_samples: 2_000,
                ..Default::default()
            },
        });
    }

    let cfg = ServeConfig::from_env();
    let names: Vec<String> = models.iter().map(|m| m.name.clone()).collect();
    let server = Server::start_with_store(cfg, models, store).unwrap_or_else(|e| {
        eprintln!("gef-serve: cannot bind: {e}");
        std::process::exit(1);
    });
    println!(
        "gef-serve: listening on 127.0.0.1:{} with model(s) {}",
        server.port(),
        names.join(", ")
    );
    println!("  POST /explain  {{\"instance\":[...], \"model\":\"name\", \"deadline_ms\":N}}");
    println!("  POST /predict  {{\"instance\":[...], \"model\":\"name\"}}");
    println!("  GET  /healthz | GET /stats | GET /metrics | GET /models");
    // Serve until the process is killed; there is no signal handling
    // without a libc dependency, so foreground use is Ctrl-C.
    loop {
        std::thread::park();
    }
}
