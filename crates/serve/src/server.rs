//! The server proper: accept loop, admission control, request workers,
//! circuit breaker, and graceful drain.
//!
//! # State machine
//!
//! ```text
//!            accept loop                      request workers
//!  conn ──▶ queue.len() < bound? ──no──▶ 429 + Retry-After (shed)
//!              │ yes
//!              ▼
//!        bounded queue ──▶ worker pops ──▶ per-request scoped budget
//!              │                               │
//!        depth ≥ ½ bound: FitFloor ≥ UnivariateOnly (degrade, not 503)
//!        depth ≥ ¾ bound: FitFloor = LinearSurrogate
//!              │                               │
//!              │                     catch_unwind(explain)
//!              │                  ┌─ Ok(exp)  → 200, breaker.success
//!              │                  ├─ deadline → 504 typed
//!              │                  ├─ fit err  → 500 typed, breaker.failure
//!              │                  └─ panic    → 500 typed + incident dump
//!              │
//!        breaker open (K consecutive fit failures, cooldown-timed):
//!        every admitted /explain runs at the LinearSurrogate floor
//! ```
//!
//! Shutdown: the accept thread stops (new connections are refused once
//! the listener drops), workers finish every queued connection, then
//! exit — a drain, not an abort.

use crate::http::{self, ReadOutcome, Request};
use crate::ServeConfig;
use gef_core::budget::RunBudget;
use gef_core::reuse::CacheOutcome;
use gef_core::{incident, FitFloor, GefConfig, GefError, GefExplainer};
use gef_forest::Forest;
use gef_store::Store;
use gef_trace::ctx;
use gef_trace::hash::to_hex;
use gef_trace::hist::Histogram;
use gef_trace::json::{self, JsonValue, JsonWriter};
use gef_trace::metrics::{FixedHistogram, Outcome, PromWriter, SloWindow};
use std::collections::VecDeque;
use std::io::{BufReader, Read};
use std::net::{TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Read/write timeout on request sockets: a stalled peer can hold a
/// worker for at most this long, never forever.
const SOCKET_TIMEOUT_MS: u64 = 2_000;

/// One preloaded model the server explains.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    /// Name clients address the model by (`"model"` request field).
    pub name: String,
    /// The forest to explain/predict.
    pub forest: Forest,
    /// Pipeline configuration used for its explanations. The server
    /// may *raise* `fit_floor` under load — never lower it.
    pub config: GefConfig,
}

/// Every status the server answers with. `GET /metrics` exports one
/// `gef_serve_responses_total{code=...}` counter per entry (plus an
/// `other` bucket), incremented only when the response bytes were
/// actually written — the series load clients reconcile their own
/// request tallies against.
const STATUS_CODES: [u16; 9] = [200, 400, 404, 405, 413, 429, 500, 501, 504];

/// Index into [`Counters::responses`] for `status` (last slot = other).
fn status_slot(status: u16) -> usize {
    STATUS_CODES
        .iter()
        .position(|&c| c == status)
        .unwrap_or(STATUS_CODES.len())
}

/// Request counters, all monotonic (reported by `GET /stats` and
/// `GET /metrics`).
#[derive(Default)]
struct Counters {
    received: AtomicU64,
    served_ok: AtomicU64,
    degraded: AtomicU64,
    shed: AtomicU64,
    client_errors: AtomicU64,
    server_errors: AtomicU64,
    deadline_trips: AtomicU64,
    panics_contained: AtomicU64,
    breaker_trips: AtomicU64,
    /// Per-request soft-budget trips (80% of the deadline), read at
    /// budget-scope exit.
    budget_soft_trips: AtomicU64,
    /// Per-request hard-budget trips; counts alongside
    /// `deadline_trips` but also catches runs that tripped hard yet
    /// still returned (e.g. a race with completion).
    budget_hard_trips: AtomicU64,
    /// Responses written, indexed by [`status_slot`].
    responses: [AtomicU64; STATUS_CODES.len() + 1],
}

impl Counters {
    /// Count one response of `status` actually written to a socket.
    fn count_response(&self, status: u16) {
        self.responses[status_slot(status)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Circuit breaker over consecutive GAM-fit failures: open trips every
/// admitted `/explain` to the linear-surrogate floor for a cooldown,
/// then closes fully.
struct Breaker {
    threshold: u32,
    cooldown: Duration,
    state: Mutex<BreakerState>,
}

struct BreakerState {
    consecutive: u32,
    open_until: Option<Instant>,
}

impl Breaker {
    fn new(threshold: u32, cooldown: Duration) -> Breaker {
        Breaker {
            threshold: threshold.max(1),
            cooldown,
            state: Mutex::new(BreakerState {
                consecutive: 0,
                open_until: None,
            }),
        }
    }

    fn is_open(&self) -> bool {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match s.open_until {
            Some(t) if Instant::now() < t => true,
            Some(_) => {
                // Cooldown over: close fully and start counting afresh.
                s.open_until = None;
                s.consecutive = 0;
                false
            }
            None => false,
        }
    }

    /// Record a fit failure; returns true when this one tripped the
    /// breaker open.
    fn record_failure(&self) -> bool {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.consecutive = s.consecutive.saturating_add(1);
        if s.open_until.is_none() && s.consecutive >= self.threshold {
            s.open_until = Some(Instant::now() + self.cooldown);
            gef_trace::recorder::note(
                gef_trace::recorder::Kind::Event,
                "serve.breaker_open",
                &format!("{} consecutive fit failures", s.consecutive),
            );
            return true;
        }
        false
    }

    fn record_success(&self) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if s.open_until.is_none() {
            s.consecutive = 0;
        }
    }
}

/// State shared by the accept thread and the request workers.
struct Shared {
    cfg: ServeConfig,
    models: Vec<ModelEntry>,
    /// Artifact store backing model loads and explanation reuse; `None`
    /// runs the server store-less (every explain computes from scratch).
    store: Option<Arc<Store>>,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_ready: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
    latency: Mutex<Histogram>,
    /// Fixed-bucket mirror of `latency` for the `/metrics` histogram
    /// exposition (Prometheus needs stable bucket bounds).
    latency_fixed: Mutex<FixedHistogram>,
    /// Rolling per-second SLO accounting behind `/stats`'s `window`
    /// object and the `gef_serve_window_*` gauges.
    window: SloWindow,
    breaker: Breaker,
}

impl Shared {
    fn queue_depth(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// The preemptive degradation floor for a request admitted *now*:
    /// an open breaker forces the last rung; otherwise queue pressure
    /// walks the ladder (½ bound → univariate-only, ¾ → linear).
    fn pressure_floor(&self) -> FitFloor {
        if self.breaker.is_open() {
            return FitFloor::LinearSurrogate;
        }
        let depth = self.queue_depth();
        let bound = self.cfg.queue_depth.max(1);
        if depth * 4 >= bound * 3 {
            FitFloor::LinearSurrogate
        } else if depth * 2 >= bound {
            FitFloor::UnivariateOnly
        } else {
            FitFloor::Full
        }
    }
}

/// A running explanation server. Dropping it without
/// [`Server::shutdown`] detaches the threads (the process exit reaps
/// them); call `shutdown` for a graceful drain.
pub struct Server {
    shared: Arc<Shared>,
    port: u16,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind on loopback and start serving `models`. Returns once the
    /// listener is bound and workers are up; [`Server::port`] has the
    /// (possibly ephemeral) port.
    pub fn start(cfg: ServeConfig, models: Vec<ModelEntry>) -> std::io::Result<Server> {
        Server::start_with_store(cfg, models, None)
    }

    /// Like [`Server::start`], but backed by an artifact store:
    /// `/explain` reuses digest-verified cached explanations
    /// ([`gef_core::reuse`]), and `GET /models` reports the store's
    /// MRU-cache state alongside the model digests.
    pub fn start_with_store(
        cfg: ServeConfig,
        models: Vec<ModelEntry>,
        store: Option<Arc<Store>>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", cfg.port))?;
        let port = listener.local_addr()?.port();
        // Non-blocking accept so shutdown is observed within one poll
        // interval even with no incoming connections.
        listener.set_nonblocking(true)?;
        if cfg.profile {
            // `/explain?profile=1` serves per-request timeline
            // fragments; recording must be on for spans to exist.
            gef_trace::timeline::set_prof_enabled(true);
        }
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            latency: Mutex::new(Histogram::new()),
            latency_fixed: Mutex::new(FixedHistogram::new()),
            window: SloWindow::new(),
            breaker: Breaker::new(
                cfg.breaker_threshold,
                Duration::from_millis(cfg.breaker_cooldown_ms),
            ),
            models,
            store,
            cfg,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("gef-serve-accept".into())
            .spawn(move || accept_loop(&accept_shared, listener))?;
        let mut workers = Vec::with_capacity(shared.cfg.workers);
        for i in 0..shared.cfg.workers.max(1) {
            let worker_shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("gef-serve-worker-{i}"))
                    .spawn(move || worker_loop(&worker_shared))?,
            );
        }
        gef_trace::recorder::note(
            gef_trace::recorder::Kind::Event,
            "serve.started",
            &format!("port {port}"),
        );
        Ok(Server {
            shared,
            port,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound TCP port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Graceful drain: stop accepting, let workers finish every queued
    /// connection, join all threads. In-flight requests complete; new
    /// connections are refused once the listener closes.
    pub fn shutdown(mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.queue_ready.notify_all();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        gef_trace::recorder::note(gef_trace::recorder::Kind::Event, "serve.drained", "");
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => admit(shared, stream),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
    // Listener drops here: further connects are refused, which is the
    // drain signal remote clients observe.
}

/// Admission control: bounded queue or immediate, cheap shed.
fn admit(shared: &Shared, stream: TcpStream) {
    shared.counters.received.fetch_add(1, Ordering::Relaxed);
    let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
    if q.len() >= shared.cfg.queue_depth {
        drop(q);
        shared.counters.shed.fetch_add(1, Ordering::Relaxed);
        shared.window.record(Outcome::Shed, None);
        // Shed happens before the request is even read, so no client
        // trace id exists yet: mint one so a 429 is still correlatable.
        let hex = to_hex(ctx::new_id());
        // Answer on the accept thread, but never let a slow client
        // stall it: tight write timeout, best-effort delivery.
        let _ = stream.set_write_timeout(Some(Duration::from_millis(50)));
        let mut s = stream;
        let wrote = http::write_response(
            &mut s,
            429,
            "Too Many Requests",
            "application/json",
            &[
                ("retry-after", "1"),
                ("connection", "close"),
                ("x-gef-trace-id", &hex),
            ],
            stamp_trace_id(
                &error_body("overloaded", "admission queue is full; retry shortly"),
                &hex,
            )
            .as_bytes(),
        )
        .is_ok();
        if wrote {
            shared.counters.count_response(429);
        }
        close_gracefully(s, Duration::from_millis(50));
        return;
    }
    q.push_back(stream);
    drop(q);
    shared.queue_ready.notify_one();
}

/// Close a connection whose request may be partly unread without
/// RST-ing the response out of the client's receive buffer.
///
/// Dropping a `TcpStream` with unread inbound bytes makes the kernel
/// send RST, which discards data already queued for the peer — the shed
/// 429 or a 413 would be written and then destroyed in flight. Instead:
/// half-close the write side (flushing the response + FIN), then drain
/// whatever the client was still sending until EOF or a short timeout.
fn close_gracefully(mut stream: TcpStream, drain_for: Duration) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(drain_for));
    let mut sink = [0u8; 1024];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(s) = q.pop_front() {
                    break s;
                }
                if shared.shutdown.load(Ordering::Relaxed) {
                    // Queue drained and no more arrivals: clean exit.
                    return;
                }
                let (guard, _) = shared
                    .queue_ready
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                q = guard;
            }
        };
        handle_connection(shared, stream);
    }
}

/// Serve one connection (keep-alive until close/EOF/violation).
fn handle_connection(shared: &Shared, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(SOCKET_TIMEOUT_MS)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(SOCKET_TIMEOUT_MS)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    loop {
        match http::read_request(&mut reader, shared.cfg.max_body_bytes) {
            ReadOutcome::Eof | ReadOutcome::Io(_) => return,
            ReadOutcome::Malformed(e) => {
                // The stream position is untrustworthy after a protocol
                // violation: answer typed and close. Headers are equally
                // untrustworthy, so mint a fresh trace id.
                shared
                    .counters
                    .client_errors
                    .fetch_add(1, Ordering::Relaxed);
                let (status, reason) = e.status();
                let hex = to_hex(ctx::new_id());
                let wrote = http::write_response(
                    &mut stream,
                    status,
                    reason,
                    "application/json",
                    &[("connection", "close"), ("x-gef-trace-id", &hex)],
                    stamp_trace_id(&error_body(e.cause(), &e.to_string()), &hex).as_bytes(),
                )
                .is_ok();
                if wrote {
                    shared.counters.count_response(status);
                }
                // The rejected request is often partly unread (a 413
                // never reads its body): half-close and drain so the
                // typed answer is not RST away mid-flight.
                close_gracefully(stream, Duration::from_millis(100));
                return;
            }
            ReadOutcome::Request(req) => {
                let close = req.wants_close() || shared.shutdown.load(Ordering::Relaxed);
                // Honor a well-formed client-supplied id (16 hex
                // chars), mint otherwise. The scope makes the id reach
                // every recorder entry, timeline span, and gef-par
                // task this request produces.
                let tctx = ctx::TraceCtx::with_id(
                    req.header("x-gef-trace-id")
                        .and_then(ctx::parse_hex)
                        .unwrap_or_else(ctx::new_id),
                );
                let hex = tctx.hex();
                let response = {
                    let _ctx = tctx.enter();
                    dispatch(shared, &req)
                };
                let conn = if close { "close" } else { "keep-alive" };
                let write_ok = http::write_response(
                    &mut stream,
                    response.status,
                    response.reason,
                    response.content_type,
                    &[("connection", conn), ("x-gef-trace-id", &hex)],
                    response.wire_body(&hex).as_bytes(),
                )
                .is_ok();
                if write_ok {
                    shared.counters.count_response(response.status);
                }
                if close || !write_ok {
                    // A pipelining client may have bytes in flight;
                    // same RST hazard as the malformed path.
                    close_gracefully(stream, Duration::from_millis(100));
                    return;
                }
            }
        }
    }
}

/// A fully-formed response (status line + body).
struct Response {
    status: u16,
    reason: &'static str,
    body: String,
    /// `Content-Type` of `body`: JSON everywhere except `/metrics`.
    content_type: &'static str,
    /// A 200 that served a reduced answer (non-empty degradation
    /// history) — feeds the SLO window's degraded rate.
    degraded: bool,
}

impl Response {
    fn ok(body: String) -> Response {
        Response {
            status: 200,
            reason: "OK",
            body,
            content_type: "application/json",
            degraded: false,
        }
    }

    fn error(status: u16, reason: &'static str, cause: &str, detail: &str) -> Response {
        Response {
            status,
            reason,
            body: error_body(cause, detail),
            content_type: "application/json",
            degraded: false,
        }
    }

    /// The bytes that go on the wire: JSON bodies get the request's
    /// `trace_id` spliced in as their first field; non-JSON bodies
    /// (`/metrics`) pass through untouched.
    fn wire_body(&self, trace_hex: &str) -> String {
        if self.content_type != "application/json" {
            return self.body.clone();
        }
        stamp_trace_id(&self.body, trace_hex)
    }
}

/// Splice `"trace_id":"<hex>"` in as the first field of a rendered
/// JSON object. Every handler body is an object, so prefix splicing
/// keeps the field present on every answer without threading the id
/// through each `JsonWriter` call site.
fn stamp_trace_id(body: &str, trace_hex: &str) -> String {
    match body.strip_prefix('{') {
        Some("}") => format!("{{\"trace_id\":\"{trace_hex}\"}}"),
        Some(rest) => format!("{{\"trace_id\":\"{trace_hex}\",{rest}"),
        None => body.to_string(),
    }
}

/// The SLO-window classification of a finished `/explain`/`/predict`.
fn outcome_of(resp: &Response) -> Outcome {
    match resp.status {
        200 if resp.degraded => Outcome::Degraded,
        200 => Outcome::Ok,
        500..=599 => Outcome::Error,
        // Client errors are the caller's fault, not an availability
        // breach: they don't dent the window's success rate.
        _ => Outcome::Ok,
    }
}

/// `{"error":{"cause":...,"detail":...}}`
fn error_body(cause: &str, detail: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("error");
    w.begin_object();
    w.field_str("cause", cause);
    w.field_str("detail", detail);
    w.end_object();
    w.end_object();
    w.finish()
}

fn dispatch(shared: &Shared, req: &Request) -> Response {
    // `target` may carry a query string (`/explain?profile=1`): route
    // on the path, hand the query to the handler.
    let (path, query) = match req.target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (req.target.as_str(), ""),
    };
    match (req.method.as_str(), path) {
        ("GET", "/healthz") => handle_healthz(shared),
        ("GET", "/stats") => handle_stats(shared),
        ("GET", "/models") => handle_models(shared),
        ("GET", "/metrics") => handle_metrics(shared),
        ("POST", "/explain") => {
            let profile = shared.cfg.profile && query.split('&').any(|p| p == "profile=1");
            let t = Instant::now();
            let resp = handle_explain(shared, req, profile);
            let elapsed_us = t.elapsed().as_micros() as u64;
            shared
                .latency
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .record(elapsed_us);
            shared
                .latency_fixed
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .record(elapsed_us);
            shared.window.record(outcome_of(&resp), Some(elapsed_us));
            count_status(shared, resp.status);
            let elapsed_ms = elapsed_us / 1_000;
            if shared.cfg.slow_ms > 0 && elapsed_ms >= shared.cfg.slow_ms {
                // Slow-request capture: the trace-id-filtered recorder
                // slice (+ timeline when profiling) as an incident-style
                // artifact, while the evidence is still in the ring.
                let trace = ctx::current_id();
                if trace != 0 {
                    let _ = incident::dump_slow(trace, elapsed_ms, shared.cfg.slow_ms, path);
                }
            }
            resp
        }
        ("POST", "/predict") => {
            let resp = handle_predict(shared, req);
            shared.window.record(outcome_of(&resp), None);
            count_status(shared, resp.status);
            resp
        }
        (_, "/healthz" | "/stats" | "/models" | "/metrics" | "/explain" | "/predict") => {
            Response::error(
                405,
                "Method Not Allowed",
                "method_not_allowed",
                &format!("{} is not valid here", req.method),
            )
        }
        _ => Response::error(404, "Not Found", "not_found", &req.target.clone()),
    }
}

fn count_status(shared: &Shared, status: u16) {
    let c = &shared.counters;
    match status {
        200 => {
            c.served_ok.fetch_add(1, Ordering::Relaxed);
        }
        400..=499 => {
            c.client_errors.fetch_add(1, Ordering::Relaxed);
        }
        _ => {
            c.server_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn handle_healthz(shared: &Shared) -> Response {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("ok");
    w.value_raw("true");
    w.field_str(
        "status",
        if shared.shutdown.load(Ordering::Relaxed) {
            "draining"
        } else {
            "serving"
        },
    );
    w.field_u64("models", shared.models.len() as u64);
    w.end_object();
    Response::ok(w.finish())
}

fn handle_stats(shared: &Shared) -> Response {
    let c = &shared.counters;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_u64("received", c.received.load(Ordering::Relaxed));
    w.field_u64("served_ok", c.served_ok.load(Ordering::Relaxed));
    w.field_u64("degraded", c.degraded.load(Ordering::Relaxed));
    w.field_u64("shed", c.shed.load(Ordering::Relaxed));
    w.field_u64("client_errors", c.client_errors.load(Ordering::Relaxed));
    w.field_u64("server_errors", c.server_errors.load(Ordering::Relaxed));
    w.field_u64("deadline_trips", c.deadline_trips.load(Ordering::Relaxed));
    w.field_u64(
        "panics_contained",
        c.panics_contained.load(Ordering::Relaxed),
    );
    w.field_u64("breaker_trips", c.breaker_trips.load(Ordering::Relaxed));
    w.key("breaker_open");
    w.value_raw(if shared.breaker.is_open() {
        "true"
    } else {
        "false"
    });
    w.field_u64("queue_depth", shared.queue_depth() as u64);
    w.field_u64("queue_bound", shared.cfg.queue_depth as u64);
    w.field_str("pressure_floor", shared.pressure_floor().label());
    {
        let h = shared.latency.lock().unwrap_or_else(|e| e.into_inner());
        w.key("explain_latency_us");
        w.begin_object();
        w.field_u64("count", h.count());
        if h.count() > 0 {
            w.field_f64("mean", h.mean());
            w.field_u64("p50", h.quantile(0.50));
            w.field_u64("p95", h.quantile(0.95));
            w.field_u64("p99", h.quantile(0.99));
        }
        w.end_object();
    }
    {
        // Rolling last-minute view, same machinery as /metrics'
        // gef_serve_window_* gauges.
        let s = shared.window.summary(60);
        w.key("window");
        w.begin_object();
        w.field_u64("window_secs", s.window_secs);
        w.field_u64("requests", s.total);
        w.field_u64("ok", s.ok);
        w.field_u64("degraded", s.degraded);
        w.field_u64("shed", s.shed);
        w.field_u64("errors", s.errors);
        w.field_f64("success_rate", s.success_rate);
        w.field_f64("shed_rate", s.shed_rate);
        w.field_f64("degraded_rate", s.degraded_rate);
        w.field_u64("p99_us", s.p99_us);
        w.end_object();
    }
    w.end_object();
    Response::ok(w.finish())
}

/// `GET /metrics`: the Prometheus text exposition (format 0.0.4) of
/// the server's counters, per-status response tallies, fixed-bucket
/// latency histogram, rolling SLO windows, breaker/queue gauges, and —
/// when store-backed — MRU-cache and quarantine gauges.
fn handle_metrics(shared: &Shared) -> Response {
    let c = &shared.counters;
    let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
    let mut w = PromWriter::new();

    w.metric(
        "gef_serve_connections_received_total",
        "counter",
        "Connections seen by the accept loop, admitted or shed.",
    );
    w.sample_u64(
        "gef_serve_connections_received_total",
        &[],
        load(&c.received),
    );

    w.metric(
        "gef_serve_responses_total",
        "counter",
        "Responses written to sockets, by HTTP status code.",
    );
    for (i, &code) in STATUS_CODES.iter().enumerate() {
        let code_s = code.to_string();
        w.sample_u64(
            "gef_serve_responses_total",
            &[("code", &code_s)],
            load(&c.responses[i]),
        );
    }
    w.sample_u64(
        "gef_serve_responses_total",
        &[("code", "other")],
        load(&c.responses[STATUS_CODES.len()]),
    );

    let singles: [(&str, &str, u64); 8] = [
        (
            "gef_serve_served_ok_total",
            "200 answers to /explain and /predict.",
            load(&c.served_ok),
        ),
        (
            "gef_serve_degraded_total",
            "200 answers that served a degraded explanation.",
            load(&c.degraded),
        ),
        (
            "gef_serve_shed_total",
            "Connections shed with 429 by admission control.",
            load(&c.shed),
        ),
        (
            "gef_serve_client_errors_total",
            "4xx answers (malformed requests included).",
            load(&c.client_errors),
        ),
        (
            "gef_serve_server_errors_total",
            "5xx answers to /explain and /predict.",
            load(&c.server_errors),
        ),
        (
            "gef_serve_deadline_trips_total",
            "Requests that tripped their hard deadline (504).",
            load(&c.deadline_trips),
        ),
        (
            "gef_serve_panics_contained_total",
            "Worker panics contained by catch_unwind.",
            load(&c.panics_contained),
        ),
        (
            "gef_serve_breaker_trips_total",
            "Times the circuit breaker tripped open.",
            load(&c.breaker_trips),
        ),
    ];
    for (name, help, v) in singles {
        w.metric(name, "counter", help);
        w.sample_u64(name, &[], v);
    }

    w.metric(
        "gef_serve_budget_trips_total",
        "counter",
        "Per-request run-budget trips observed at budget-scope exit.",
    );
    w.sample_u64(
        "gef_serve_budget_trips_total",
        &[("kind", "soft")],
        load(&c.budget_soft_trips),
    );
    w.sample_u64(
        "gef_serve_budget_trips_total",
        &[("kind", "hard")],
        load(&c.budget_hard_trips),
    );

    {
        let h = shared
            .latency_fixed
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        w.histogram(
            "gef_serve_explain_latency_us",
            "Wall-clock /explain latency in microseconds.",
            &h,
        );
    }

    w.metric(
        "gef_serve_breaker_open",
        "gauge",
        "1 while the circuit breaker is open.",
    );
    w.sample_u64(
        "gef_serve_breaker_open",
        &[],
        u64::from(shared.breaker.is_open()),
    );
    w.metric(
        "gef_serve_queue_depth",
        "gauge",
        "Connections waiting in the admission queue.",
    );
    w.sample_u64("gef_serve_queue_depth", &[], shared.queue_depth() as u64);
    w.metric(
        "gef_serve_queue_bound",
        "gauge",
        "Admission queue bound (shed above this).",
    );
    w.sample_u64("gef_serve_queue_bound", &[], shared.cfg.queue_depth as u64);
    w.metric(
        "gef_serve_pressure_floor",
        "gauge",
        "Preemptive degradation floor (0=full, 1=univariate_only, 2=linear_surrogate).",
    );
    w.sample_u64(
        "gef_serve_pressure_floor",
        &[],
        match shared.pressure_floor() {
            FitFloor::Full => 0,
            FitFloor::UnivariateOnly => 1,
            FitFloor::LinearSurrogate => 2,
        },
    );

    if let Some(store) = &shared.store {
        let s = store.cache_stats();
        let cache: [(&str, &str, &str, u64); 6] = [
            (
                "gef_serve_store_cache_hits_total",
                "counter",
                "Model loads served from the MRU cache.",
                s.hits,
            ),
            (
                "gef_serve_store_cache_misses_total",
                "counter",
                "Model loads that went to disk.",
                s.misses,
            ),
            (
                "gef_serve_store_cache_evictions_total",
                "counter",
                "MRU cache evictions.",
                s.evictions,
            ),
            (
                "gef_serve_store_cache_entries",
                "gauge",
                "Models resident in the MRU cache.",
                s.entries as u64,
            ),
            (
                "gef_serve_store_cache_resident_bytes",
                "gauge",
                "Bytes resident in the MRU cache.",
                s.resident_bytes,
            ),
            (
                "gef_serve_store_cache_capacity_bytes",
                "gauge",
                "MRU cache capacity in bytes.",
                s.capacity_bytes,
            ),
        ];
        for (name, kind, help, v) in cache {
            w.metric(name, kind, help);
            w.sample_u64(name, &[], v);
        }
        w.metric(
            "gef_serve_store_quarantined",
            "gauge",
            "Artifacts quarantined by the store after digest mismatches.",
        );
        w.sample_u64(
            "gef_serve_store_quarantined",
            &[],
            store.quarantined().len() as u64,
        );
    }

    let windows = [
        ("1m", shared.window.summary(60)),
        ("5m", shared.window.summary(300)),
    ];
    w.metric(
        "gef_serve_window_requests",
        "gauge",
        "Requests finished inside the rolling window.",
    );
    for (label, s) in &windows {
        w.sample_u64("gef_serve_window_requests", &[("window", label)], s.total);
    }
    w.metric(
        "gef_serve_window_success_ratio",
        "gauge",
        "Rolling (ok+degraded)/total; 1 when idle.",
    );
    for (label, s) in &windows {
        w.sample(
            "gef_serve_window_success_ratio",
            &[("window", label)],
            s.success_rate,
        );
    }
    w.metric(
        "gef_serve_window_shed_ratio",
        "gauge",
        "Rolling shed/total.",
    );
    for (label, s) in &windows {
        w.sample(
            "gef_serve_window_shed_ratio",
            &[("window", label)],
            s.shed_rate,
        );
    }
    w.metric(
        "gef_serve_window_degraded_ratio",
        "gauge",
        "Rolling degraded/total.",
    );
    for (label, s) in &windows {
        w.sample(
            "gef_serve_window_degraded_ratio",
            &[("window", label)],
            s.degraded_rate,
        );
    }
    w.metric(
        "gef_serve_window_p99_us",
        "gauge",
        "Rolling bucket-estimate p99 /explain latency (microseconds).",
    );
    for (label, s) in &windows {
        w.sample_u64("gef_serve_window_p99_us", &[("window", label)], s.p99_us);
    }

    Response {
        status: 200,
        reason: "OK",
        body: w.finish(),
        content_type: "text/plain; version=0.0.4",
        degraded: false,
    }
}

/// `GET /models`: every loaded model's name + content digests, plus —
/// when the server is store-backed — the store's MRU-cache state and
/// quarantine count, so operators can see recovery activity without
/// shelling into the store directory.
fn handle_models(shared: &Shared) -> Response {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("models");
    w.begin_array();
    for m in &shared.models {
        w.begin_object();
        w.field_str("name", &m.name);
        w.field_str("digest", &to_hex(m.forest.content_digest()));
        w.field_str("config_digest", &to_hex(m.config.content_digest()));
        w.field_u64("num_trees", m.forest.trees.len() as u64);
        w.field_u64("num_features", m.forest.num_features as u64);
        w.end_object();
    }
    w.end_array();
    w.key("cache");
    match &shared.store {
        Some(store) => {
            let s = store.cache_stats();
            w.begin_object();
            w.field_u64("hits", s.hits);
            w.field_u64("misses", s.misses);
            w.field_u64("evictions", s.evictions);
            w.field_u64("entries", s.entries as u64);
            w.field_u64("resident_bytes", s.resident_bytes);
            w.field_u64("capacity_bytes", s.capacity_bytes);
            w.end_object();
            w.field_u64("quarantined", store.quarantined().len() as u64);
        }
        None => {
            w.value_raw("null");
            w.field_u64("quarantined", 0);
        }
    }
    w.end_object();
    Response::ok(w.finish())
}

/// Parse the request body and resolve the target model and instance.
fn parse_instance<'a>(
    shared: &'a Shared,
    req: &Request,
) -> Result<(&'a ModelEntry, Vec<f64>, JsonValue), Response> {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Err(Response::error(
            400,
            "Bad Request",
            "bad_json",
            "body is not valid UTF-8",
        ));
    };
    let body =
        json::parse(text).map_err(|e| Response::error(400, "Bad Request", "bad_json", &e))?;
    let model = match body.get("model").and_then(|m| m.as_str()) {
        Some(name) => shared
            .models
            .iter()
            .find(|m| m.name == name)
            .ok_or_else(|| {
                Response::error(
                    404,
                    "Not Found",
                    "model_not_found",
                    &format!("no model named {name:?}"),
                )
            })?,
        None if shared.models.len() == 1 => &shared.models[0],
        None => {
            return Err(Response::error(
                400,
                "Bad Request",
                "bad_instance",
                "a 'model' field is required when several models are loaded",
            ))
        }
    };
    let Some(values) = body.get("instance").and_then(|i| i.as_array()) else {
        return Err(Response::error(
            400,
            "Bad Request",
            "bad_instance",
            "an 'instance' array of numbers is required",
        ));
    };
    let mut instance = Vec::with_capacity(values.len());
    for v in values {
        match v.as_f64() {
            Some(x) if x.is_finite() => instance.push(x),
            _ => {
                return Err(Response::error(
                    400,
                    "Bad Request",
                    "bad_instance",
                    "instance values must be finite numbers",
                ))
            }
        }
    }
    if instance.len() != model.forest.num_features {
        return Err(Response::error(
            400,
            "Bad Request",
            "bad_instance",
            &format!(
                "instance has {} values; model {:?} expects {}",
                instance.len(),
                model.name,
                model.forest.num_features
            ),
        ));
    }
    Ok((model, instance, body))
}

fn handle_predict(shared: &Shared, req: &Request) -> Response {
    let (model, instance, _) = match parse_instance(shared, req) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    // Unified batch entry point: single rows take the walker, but any
    // armed budget still trips a typed error instead of a partial
    // answer, and larger batches (future multi-instance bodies) ride
    // the flattened kernel transparently.
    let prediction = match model.forest.predict_batch(std::slice::from_ref(&instance)) {
        Ok(preds) => preds[0],
        Err(err @ gef_forest::ForestError::DeadlineExceeded { .. }) => {
            shared
                .counters
                .deadline_trips
                .fetch_add(1, Ordering::Relaxed);
            return Response::error(504, "Gateway Timeout", "deadline", &err.to_string());
        }
        Err(err) => {
            return Response::error(500, "Internal Server Error", "predict", &err.to_string())
        }
    };
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("ok");
    w.value_raw("true");
    w.field_str("model", &model.name);
    w.field_f64("prediction", prediction);
    w.end_object();
    Response::ok(w.finish())
}

/// Whether this error means "the GAM fit itself is failing" — the
/// signal the circuit breaker integrates.
fn is_fit_failure(cause: &str) -> bool {
    matches!(
        cause,
        "gam" | "recovery_exhausted" | "non_finite_labels" | "worker_panic"
    )
}

fn handle_explain(shared: &Shared, req: &Request, profile: bool) -> Response {
    let (model, instance, body) = match parse_instance(shared, req) {
        Ok(p) => p,
        Err(resp) => return resp,
    };
    // Per-request hard deadline: the request may lower the server
    // default, never raise it. Soft pressure at 80%, mirroring
    // RunBudget::from_env.
    let deadline_ms = body
        .get("deadline_ms")
        .and_then(|d| d.as_f64())
        .filter(|&d| d >= 1.0)
        .map(|d| (d as u64).min(shared.cfg.deadline_ms))
        .unwrap_or(shared.cfg.deadline_ms);
    let floor = shared.pressure_floor();
    let mut config = model.config.clone();
    config.fit_floor = config.fit_floor.max(floor);
    let budget = RunBudget {
        hard_deadline: Some(Duration::from_millis(deadline_ms)),
        soft_deadline: Some(Duration::from_millis(deadline_ms.saturating_mul(4) / 5)),
        ..RunBudget::unlimited()
    };
    let outcome = {
        // The scope guard lives exactly as long as the run, so an early
        // return can never leak this request's deadline to the next.
        let scope = budget.enter();
        let result = catch_unwind(AssertUnwindSafe(|| {
            if shared.cfg.test_hooks {
                match req.header("x-gef-test") {
                    Some("panic") => panic!("test hook: deliberate worker panic"),
                    Some("sleep") => {
                        // Deterministically holds this worker busy so
                        // admission-control tests can fill the queue.
                        let ms = req
                            .header("x-gef-test-ms")
                            .and_then(|v| v.parse::<u64>().ok())
                            .unwrap_or(200)
                            .min(10_000);
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                    _ => {}
                }
            }
            let explainer = GefExplainer::new(config.clone());
            match &shared.store {
                // Store-backed: reuse a digest-verified cached
                // explanation when one exists for this exact
                // (model, config) pair. Pressure-raised floors change
                // the config digest, and deadline-degraded runs are
                // never published (nor served from cache), so degraded
                // and full explanations cannot alias.
                Some(store) => explainer
                    .explain_cached(&model.forest, store)
                    .map(|(exp, outcome)| (exp, Some(outcome))),
                None => explainer.explain(&model.forest).map(|exp| (exp, None)),
            }
        }));
        // Read the trip flags while this request's budget is still the
        // one in scope; after the guard drops the thread reverts to
        // the (unarmed) global budget.
        if scope.budget().soft_tripped() {
            shared
                .counters
                .budget_soft_trips
                .fetch_add(1, Ordering::Relaxed);
        }
        if scope.budget().hard_tripped() {
            shared
                .counters
                .budget_hard_trips
                .fetch_add(1, Ordering::Relaxed);
        }
        result
    };
    match outcome {
        Err(payload) => {
            // Fault containment: typed 500 + incident dump, never a
            // dead worker.
            shared
                .counters
                .panics_contained
                .fetch_add(1, Ordering::Relaxed);
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            incident::dump_now("serve_panic", &detail);
            if shared.breaker.record_failure() {
                shared
                    .counters
                    .breaker_trips
                    .fetch_add(1, Ordering::Relaxed);
            }
            Response::error(500, "Internal Server Error", "worker_panic", &detail)
        }
        Ok(Err(err)) => {
            let cause = err.cause_label();
            if matches!(
                err,
                GefError::DeadlineExceeded { .. } | GefError::BudgetExceeded(_)
            ) {
                shared
                    .counters
                    .deadline_trips
                    .fetch_add(1, Ordering::Relaxed);
                return Response::error(504, "Gateway Timeout", cause, &err.to_string());
            }
            if is_fit_failure(cause) && shared.breaker.record_failure() {
                shared
                    .counters
                    .breaker_trips
                    .fetch_add(1, Ordering::Relaxed);
            }
            Response::error(500, "Internal Server Error", cause, &err.to_string())
        }
        Ok(Ok((exp, cache_outcome))) => {
            shared.breaker.record_success();
            if !exp.degradations.is_empty() {
                shared.counters.degraded.fetch_add(1, Ordering::Relaxed);
            }
            let local = exp.local(&instance);
            let mut w = JsonWriter::new();
            w.begin_object();
            w.key("ok");
            w.value_raw("true");
            w.field_str("model", &model.name);
            w.field_f64("prediction", local.prediction);
            w.field_f64("baseline", local.baseline);
            w.field_f64("fidelity_r2", exp.fidelity_r2);
            w.field_str("floor", config.fit_floor.label());
            w.field_str("budget_outcome", &exp.provenance.budget_outcome);
            w.field_str(
                "cache",
                cache_outcome
                    .as_ref()
                    .map(CacheOutcome::label)
                    .unwrap_or("off"),
            );
            w.key("degradations");
            w.begin_array();
            for d in &exp.degradations {
                w.value_str(d.action.label());
            }
            w.end_array();
            w.key("contributions");
            w.begin_array();
            for c in &local.contributions {
                w.begin_object();
                w.field_str("term", &c.label);
                w.key("features");
                w.begin_array();
                for &f in &c.features {
                    w.value_u64(f as u64);
                }
                w.end_array();
                w.key("values");
                w.begin_array();
                for &v in &c.values {
                    w.value_f64(v);
                }
                w.end_array();
                w.field_f64("contribution", c.contribution);
                w.field_f64("std_error", c.std_error);
                w.end_object();
            }
            w.end_array();
            if profile {
                // The request's own flame view: the merged timeline
                // filtered down to spans stamped with this trace id
                // (a complete Chrome-trace document, embeddable raw).
                let trace = ctx::current_id();
                w.key("profile");
                if gef_trace::timeline::prof_enabled() && trace != 0 {
                    w.value_raw(&gef_trace::timeline::chrome_trace_fragment(trace));
                } else {
                    w.value_raw("null");
                }
            }
            w.end_object();
            let mut resp = Response::ok(w.finish());
            resp.degraded = !exp.degradations.is_empty();
            resp
        }
    }
}
