//! Minimal, hardened HTTP/1.1 request parsing and response writing.
//!
//! The parser is the server's first line of fault containment: it faces
//! raw bytes from untrusted sockets and must **never panic, never hang,
//! never allocate unboundedly** — every malformed input maps to a typed
//! [`ParseError`] that the server answers with `400`/`413`/`501`. Every
//! read is capped ([`MAX_REQUEST_LINE`], [`MAX_HEADER_LINE`],
//! [`MAX_HEADER_COUNT`], the caller's body limit), so a hostile peer
//! cannot grow a line or header block past a few KiB. Property tests at
//! the bottom of this module drive the parser with arbitrary and
//! adversarially-structured byte streams.
//!
//! Supported surface: `Content-Length` bodies only (chunked
//! transfer-encoding answers `501`), no continuation (folded) headers,
//! `HTTP/1.x` request lines.

use std::io::{BufRead, Read, Write};

/// Byte cap on the request line (method + target + version).
pub const MAX_REQUEST_LINE: usize = 8192;
/// Byte cap on a single header line.
pub const MAX_HEADER_LINE: usize = 8192;
/// Cap on the number of headers.
pub const MAX_HEADER_COUNT: usize = 64;

/// A typed parse failure; [`ParseError::status`] maps it to the HTTP
/// answer and [`ParseError::cause`] to the machine-readable label used
/// in error bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Malformed or oversized request line.
    RequestLine(String),
    /// Malformed header, oversized header line, or too many headers.
    Header(String),
    /// Missing, duplicated, or unparseable `Content-Length`.
    ContentLength(String),
    /// Declared body exceeds the server's cap.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// The server's cap.
        max: usize,
    },
    /// Connection closed before the declared body arrived.
    TruncatedBody {
        /// Bytes actually received.
        got: usize,
        /// Bytes declared.
        want: usize,
    },
    /// Syntactically valid but unsupported (e.g. chunked bodies).
    Unsupported(String),
}

impl ParseError {
    /// The `(status, reason)` this failure answers with: `413` for an
    /// oversized body, `501` for unsupported encodings, `400` otherwise.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            ParseError::BodyTooLarge { .. } => (413, "Payload Too Large"),
            ParseError::Unsupported(_) => (501, "Not Implemented"),
            _ => (400, "Bad Request"),
        }
    }

    /// Machine-readable cause label for the JSON error body.
    pub fn cause(&self) -> &'static str {
        match self {
            ParseError::RequestLine(_) => "bad_request_line",
            ParseError::Header(_) => "bad_header",
            ParseError::ContentLength(_) => "bad_content_length",
            ParseError::BodyTooLarge { .. } => "body_too_large",
            ParseError::TruncatedBody { .. } => "truncated_body",
            ParseError::Unsupported(_) => "unsupported",
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::RequestLine(d) => write!(f, "bad request line: {d}"),
            ParseError::Header(d) => write!(f, "bad header: {d}"),
            ParseError::ContentLength(d) => write!(f, "bad content-length: {d}"),
            ParseError::BodyTooLarge { declared, max } => {
                write!(f, "body of {declared} bytes exceeds the {max}-byte cap")
            }
            ParseError::TruncatedBody { got, want } => {
                write!(f, "body truncated at {got} of {want} bytes")
            }
            ParseError::Unsupported(d) => write!(f, "unsupported: {d}"),
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// Request target, verbatim (`/explain`, …).
    pub target: String,
    /// Headers in arrival order, names as sent.
    pub headers: Vec<(String, String)>,
    /// The body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// request (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Outcome of reading one request off a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, well-formed request.
    Request(Request),
    /// Clean close before any byte of a new request (keep-alive end).
    Eof,
    /// A typed protocol violation — answer [`ParseError::status`] and
    /// close (the stream position is no longer trustworthy).
    Malformed(ParseError),
    /// The transport failed (timeout, reset); just drop the connection.
    Io(std::io::ErrorKind),
}

/// Read one line (up to and including `\n`) with a hard byte cap.
/// Returns `Ok(None)` on clean EOF before any byte.
fn read_capped_line(r: &mut impl BufRead, cap: usize) -> Result<Option<Vec<u8>>, ReadOutcome> {
    let mut line = Vec::new();
    // `take` bounds the read so a peer streaming an endless line cannot
    // grow the buffer past the cap.
    match r.take(cap as u64 + 1).read_until(b'\n', &mut line) {
        Ok(0) => Ok(None),
        Ok(_) => {
            if line.last() != Some(&b'\n') {
                // Either the line exceeded the cap (more bytes pending)
                // or the stream ended mid-line; both are malformed.
                if line.len() > cap {
                    Err(ReadOutcome::Malformed(ParseError::RequestLine(format!(
                        "line exceeds the {cap}-byte cap"
                    ))))
                } else {
                    Err(ReadOutcome::Malformed(ParseError::RequestLine(
                        "stream ended mid-line".into(),
                    )))
                }
            } else {
                if line.ends_with(b"\n") {
                    line.pop();
                }
                if line.ends_with(b"\r") {
                    line.pop();
                }
                Ok(Some(line))
            }
        }
        Err(e) => Err(ReadOutcome::Io(e.kind())),
    }
}

fn is_token(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_graphic() && !b"()<>@,;:\\\"/[]?={} ".contains(&b))
}

/// Read and parse one request. `max_body` caps the accepted
/// `Content-Length`; larger bodies fail with
/// [`ParseError::BodyTooLarge`] **without reading the body**.
pub fn read_request(r: &mut impl BufRead, max_body: usize) -> ReadOutcome {
    // --- request line ---
    let line = match read_capped_line(r, MAX_REQUEST_LINE) {
        Ok(Some(l)) => l,
        Ok(None) => return ReadOutcome::Eof,
        Err(out) => return out,
    };
    let Ok(line) = String::from_utf8(line) else {
        return ReadOutcome::Malformed(ParseError::RequestLine("not valid UTF-8".into()));
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return ReadOutcome::Malformed(ParseError::RequestLine(format!(
                "expected 'METHOD TARGET VERSION', got {} part(s)",
                line.split(' ').count()
            )))
        }
    };
    if !is_token(method) {
        return ReadOutcome::Malformed(ParseError::RequestLine("method is not a token".into()));
    }
    if target.is_empty() || !target.bytes().all(|b| b.is_ascii_graphic()) {
        return ReadOutcome::Malformed(ParseError::RequestLine("malformed target".into()));
    }
    if !version.starts_with("HTTP/1.") {
        return ReadOutcome::Malformed(ParseError::RequestLine(format!(
            "unsupported version {version:?}"
        )));
    }

    // --- headers ---
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_capped_line(r, MAX_HEADER_LINE) {
            Ok(Some(l)) => l,
            Ok(None) => {
                return ReadOutcome::Malformed(ParseError::Header(
                    "stream ended inside the header block".into(),
                ))
            }
            Err(ReadOutcome::Malformed(ParseError::RequestLine(d))) => {
                return ReadOutcome::Malformed(ParseError::Header(d))
            }
            Err(out) => return out,
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADER_COUNT {
            return ReadOutcome::Malformed(ParseError::Header(format!(
                "more than {MAX_HEADER_COUNT} headers"
            )));
        }
        let Ok(line) = String::from_utf8(line) else {
            return ReadOutcome::Malformed(ParseError::Header("not valid UTF-8".into()));
        };
        let Some((name, value)) = line.split_once(':') else {
            return ReadOutcome::Malformed(ParseError::Header(format!(
                "no ':' in {:?}",
                line.chars().take(40).collect::<String>()
            )));
        };
        if !is_token(name) {
            return ReadOutcome::Malformed(ParseError::Header("header name is not a token".into()));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    // --- body ---
    for (k, v) in &headers {
        if k.eq_ignore_ascii_case("transfer-encoding") {
            return ReadOutcome::Malformed(ParseError::Unsupported(format!(
                "transfer-encoding {v:?} (only content-length bodies)"
            )));
        }
    }
    let lengths: Vec<&str> = headers
        .iter()
        .filter(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| v.as_str())
        .collect();
    let body_len = match lengths.as_slice() {
        [] => 0,
        [one] => match one.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                return ReadOutcome::Malformed(ParseError::ContentLength(format!(
                    "unparseable value {one:?}"
                )))
            }
        },
        many => {
            return ReadOutcome::Malformed(ParseError::ContentLength(format!(
                "{} content-length headers",
                many.len()
            )))
        }
    };
    if body_len > max_body {
        return ReadOutcome::Malformed(ParseError::BodyTooLarge {
            declared: body_len,
            max: max_body,
        });
    }
    let mut body = Vec::new();
    if body_len > 0 {
        match r.take(body_len as u64).read_to_end(&mut body) {
            Ok(got) if got < body_len => {
                return ReadOutcome::Malformed(ParseError::TruncatedBody {
                    got,
                    want: body_len,
                })
            }
            Ok(_) => {}
            Err(e) => return ReadOutcome::Io(e.kind()),
        }
    }
    ReadOutcome::Request(Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body,
    })
}

/// Write one `HTTP/1.1` response with `Content-Length` framing and the
/// given `Content-Type` (`application/json` for every API response;
/// `gef-serve`'s `/metrics` uses the Prometheus text type). The
/// `Connection` header must be supplied via `extra_headers` by callers
/// that want one.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {status} {reason}\r\n");
    head.push_str(&format!("content-type: {content_type}\r\n"));
    head.push_str(&format!("content-length: {}\r\n", body.len()));
    for (k, v) in extra_headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> ReadOutcome {
        read_request(&mut Cursor::new(bytes), 4096)
    }

    #[test]
    fn parses_a_wellformed_post() {
        let raw = b"POST /explain HTTP/1.1\r\ncontent-length: 4\r\nx-a: b\r\n\r\n{\"\"}";
        let ReadOutcome::Request(req) = parse(raw) else {
            panic!("expected a request");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/explain");
        assert_eq!(req.body, b"{\"\"}");
        assert_eq!(req.header("X-A"), Some("b"));
        assert!(!req.wants_close());
    }

    #[test]
    fn clean_eof_is_not_an_error() {
        assert!(matches!(parse(b""), ReadOutcome::Eof));
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        let raw = b"POST / HTTP/1.1\r\ncontent-length: 2\r\nContent-Length: 2\r\n\r\nab";
        let ReadOutcome::Malformed(e) = parse(raw) else {
            panic!("expected malformed");
        };
        assert_eq!(e.status().0, 400);
        assert_eq!(e.cause(), "bad_content_length");
    }

    #[test]
    fn oversized_body_is_413_without_reading_it() {
        let raw = b"POST / HTTP/1.1\r\ncontent-length: 1000000\r\n\r\n";
        let ReadOutcome::Malformed(e) = parse(raw) else {
            panic!("expected malformed");
        };
        assert_eq!(e.status().0, 413);
    }

    #[test]
    fn truncated_body_is_400() {
        let raw = b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc";
        let ReadOutcome::Malformed(e) = parse(raw) else {
            panic!("expected malformed");
        };
        assert_eq!(e.cause(), "truncated_body");
        assert_eq!(e.status().0, 400);
    }

    #[test]
    fn chunked_bodies_answer_501() {
        let raw = b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n";
        let ReadOutcome::Malformed(e) = parse(raw) else {
            panic!("expected malformed");
        };
        assert_eq!(e.status().0, 501);
    }

    #[test]
    fn oversized_request_line_is_rejected() {
        let mut raw = b"GET /".to_vec();
        raw.extend(std::iter::repeat_n(b'a', MAX_REQUEST_LINE + 10));
        raw.extend_from_slice(b" HTTP/1.1\r\n\r\n");
        let ReadOutcome::Malformed(e) = parse(&raw) else {
            panic!("expected malformed");
        };
        assert_eq!(e.status().0, 400);
    }

    #[test]
    fn header_flood_is_rejected() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..(MAX_HEADER_COUNT + 5) {
            raw.extend_from_slice(format!("x-{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let ReadOutcome::Malformed(e) = parse(&raw) else {
            panic!("expected malformed");
        };
        assert_eq!(e.cause(), "bad_header");
    }

    #[test]
    fn response_writer_frames_with_content_length() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "Too Many Requests",
            "application/json",
            &[("retry-after", "1")],
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    proptest! {
        /// Arbitrary bytes never panic the parser, and every outcome is
        /// one of the four typed ones.
        #[test]
        fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
            match parse(&bytes) {
                ReadOutcome::Request(_) | ReadOutcome::Eof
                | ReadOutcome::Malformed(_) | ReadOutcome::Io(_) => {}
            }
        }

        /// Structured near-miss requests (hostile request lines,
        /// header blocks, and length declarations around a valid
        /// skeleton) never panic, and any malformed outcome carries a
        /// 400/413/501 status.
        #[test]
        fn structured_garbage_maps_to_typed_statuses(
            method in "[A-Za-z \\t]{0,12}",
            target in "[ -~]{0,40}",
            version in prop_oneof![Just("HTTP/1.1".to_string()), "[A-Z/0-9.]{0,10}"],
            header_name in "[A-Za-z0-9:() -]{0,24}",
            header_val in "[ -~]{0,32}",
            declared in prop_oneof![Just("4".to_string()), "[0-9]{1,9}", "[a-z-]{1,6}"],
            body in proptest::collection::vec(any::<u8>(), 0..16),
        ) {
            let mut raw = format!("{method} {target} {version}\r\n").into_bytes();
            raw.extend_from_slice(format!("{header_name}: {header_val}\r\n").as_bytes());
            raw.extend_from_slice(format!("content-length: {declared}\r\n").as_bytes());
            raw.extend_from_slice(b"\r\n");
            raw.extend_from_slice(&body);
            match parse(&raw) {
                ReadOutcome::Malformed(e) => {
                    let (status, _) = e.status();
                    prop_assert!(status == 400 || status == 413 || status == 501);
                }
                ReadOutcome::Request(req) => {
                    // Accepted requests must have honoured the declared
                    // length exactly.
                    let want: usize = declared.parse().unwrap_or(0);
                    prop_assert_eq!(req.body.len(), want);
                }
                ReadOutcome::Eof | ReadOutcome::Io(_) => {}
            }
        }

        /// Well-formed requests round-trip: whatever we serialize, the
        /// parser returns verbatim.
        #[test]
        fn wellformed_requests_roundtrip(
            path in "[a-z]{0,12}",
            nheaders in 0usize..8,
            body in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let target = format!("/{path}");
            let mut raw = format!("POST {target} HTTP/1.1\r\n").into_bytes();
            for i in 0..nheaders {
                raw.extend_from_slice(format!("x-h{i}: v{i}\r\n").as_bytes());
            }
            raw.extend_from_slice(format!("content-length: {}\r\n\r\n", body.len()).as_bytes());
            raw.extend_from_slice(&body);
            let ReadOutcome::Request(req) = parse(&raw) else {
                return Err(TestCaseError::fail("expected a request"));
            };
            prop_assert_eq!(req.method, "POST");
            prop_assert_eq!(req.target, target);
            prop_assert_eq!(req.body, body);
            prop_assert_eq!(req.headers.len(), nheaders + 1);
        }
    }
}
