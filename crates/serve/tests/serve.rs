//! End-to-end tests of the explanation service over real sockets:
//! per-request (not shared) deadlines, admission-control shedding,
//! panic containment, circuit breaking, and graceful drain.

use gef_core::GefConfig;
use gef_forest::{Forest, GbdtParams, GbdtTrainer};
use gef_serve::{ModelEntry, ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn train_forest() -> Forest {
    let mut state = 42u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let xs: Vec<Vec<f64>> = (0..400).map(|_| (0..3).map(|_| next()).collect()).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] - 2.0 * x[1] + x[2]).collect();
    GbdtTrainer::new(GbdtParams {
        num_trees: 30,
        num_leaves: 8,
        learning_rate: 0.2,
        min_data_in_leaf: 5,
        ..Default::default()
    })
    .fit(&xs, &ys)
    .unwrap()
}

fn model(n_samples: usize) -> ModelEntry {
    ModelEntry {
        name: "m".into(),
        forest: train_forest(),
        config: GefConfig {
            num_univariate: 3,
            n_samples,
            ..Default::default()
        },
    }
}

fn start(cfg: ServeConfig, n_samples: usize) -> Server {
    // Keep incident dumps from error-path tests out of the repo tree.
    std::env::set_var("GEF_INCIDENT_DIR", env!("CARGO_TARGET_TMPDIR"));
    Server::start(cfg, vec![model(n_samples)]).expect("server start")
}

/// Minimal HTTP/1.1 client: one request, `Connection: close`, returns
/// `(status, body)`.
fn roundtrip(port: u16, request: &str) -> (u16, String) {
    let mut s = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(request.as_bytes()).expect("write");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read");
    let status: u16 = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn post(port: u16, path: &str, body: &str, extra: &str) -> (u16, String) {
    roundtrip(
        port,
        &format!(
            "POST {path} HTTP/1.1\r\nconnection: close\r\n{extra}content-length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(port: u16, path: &str) -> (u16, String) {
    roundtrip(
        port,
        &format!("GET {path} HTTP/1.1\r\nconnection: close\r\n\r\n"),
    )
}

/// Like [`roundtrip`], but returns the raw response (status line +
/// headers + body) for tests that inspect headers.
fn roundtrip_raw(port: u16, request: &str) -> String {
    let mut s = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(request.as_bytes()).expect("write");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read");
    raw
}

/// The value of response header `name` (case-insensitive), if present.
fn header_value(raw: &str, name: &str) -> Option<String> {
    let head = raw.split("\r\n\r\n").next()?;
    for line in head.lines().skip(1) {
        if let Some((k, v)) = line.split_once(':') {
            if k.eq_ignore_ascii_case(name) {
                return Some(v.trim().to_string());
            }
        }
    }
    None
}

/// The string value of a `"key":"value"` pair in a JSON body (enough
/// for the flat fields these tests read).
fn json_str_field(body: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = body.find(&pat)? + pat.len();
    let rest = &body[start..];
    Some(rest[..rest.find('"')?].to_string())
}

#[test]
fn predict_healthz_stats_and_404() {
    let server = start(ServeConfig::default(), 1000);
    let port = server.port();

    let (status, body) = get(port, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"serving\""), "{body}");

    let (status, body) = post(port, "/predict", r#"{"instance":[0.5,0.5,0.5]}"#, "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"prediction\""), "{body}");

    let (status, body) = post(port, "/predict", r#"{"instance":[0.5]}"#, "");
    assert_eq!(status, 400);
    assert!(body.contains("bad_instance"), "{body}");

    let (status, _) = get(port, "/nowhere");
    assert_eq!(status, 404);

    let (status, _) = get(port, "/predict");
    assert_eq!(status, 405);

    let (status, body) = get(port, "/stats");
    assert_eq!(status, 200);
    assert!(body.contains("\"queue_bound\""), "{body}");

    server.shutdown();
}

#[test]
fn explain_returns_contributions() {
    let server = start(ServeConfig::default(), 1500);
    let port = server.port();
    let (status, body) = post(port, "/explain", r#"{"instance":[0.2,0.8,0.5]}"#, "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ok\":true"), "{body}");
    assert!(body.contains("\"contributions\""), "{body}");
    assert!(body.contains("\"fidelity_r2\""), "{body}");
    server.shutdown();
}

/// THE scoping acceptance criterion: a request with a 1 ms deadline
/// hard-trips to a typed 504 while a simultaneous request with a
/// generous deadline completes clean — deadlines are per-request, not
/// process-global.
#[test]
fn concurrent_requests_hold_independent_deadlines() {
    let server = start(
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
        4000,
    );
    let port = server.port();
    let tight = std::thread::spawn(move || {
        post(
            port,
            "/explain",
            r#"{"instance":[0.5,0.5,0.5],"deadline_ms":1}"#,
            "",
        )
    });
    let roomy = std::thread::spawn(move || {
        post(
            port,
            "/explain",
            r#"{"instance":[0.5,0.5,0.5],"deadline_ms":9000}"#,
            "",
        )
    });
    let (tight_status, tight_body) = tight.join().unwrap();
    let (roomy_status, roomy_body) = roomy.join().unwrap();
    assert_eq!(tight_status, 504, "tight must trip: {tight_body}");
    assert!(tight_body.contains("\"deadline\""), "{tight_body}");
    assert_eq!(roomy_status, 200, "roomy must complete: {roomy_body}");
    assert!(roomy_body.contains("\"ok\":true"), "{roomy_body}");
}

#[test]
fn overload_sheds_with_429_and_retry_after() {
    let server = start(
        ServeConfig {
            workers: 1,
            queue_depth: 1,
            test_hooks: true,
            ..ServeConfig::default()
        },
        1000,
    );
    let port = server.port();
    // Hold the single worker busy for 1.5 s.
    let busy = std::thread::spawn(move || {
        post(
            port,
            "/explain",
            r#"{"instance":[0.5,0.5,0.5]}"#,
            "x-gef-test: sleep\r\nx-gef-test-ms: 1500\r\n",
        )
    });
    std::thread::sleep(Duration::from_millis(300));
    // Fill the queue (depth 1) with a second held connection…
    let queued = std::thread::spawn(move || get(port, "/healthz"));
    std::thread::sleep(Duration::from_millis(100));
    // …so further arrivals must be shed.
    let mut s = TcpStream::connect(("127.0.0.1", port)).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read shed response");
    assert!(raw.starts_with("HTTP/1.1 429 "), "{raw}");
    assert!(raw.to_ascii_lowercase().contains("retry-after: 1"), "{raw}");
    assert!(raw.contains("overloaded"), "{raw}");
    // The held requests still complete (shed is a rejection of the
    // *new* arrival, not an abort of admitted work).
    let (busy_status, _) = busy.join().unwrap();
    assert_eq!(busy_status, 200);
    let (queued_status, _) = queued.join().unwrap();
    assert_eq!(queued_status, 200);
    server.shutdown();
}

#[test]
fn panics_are_contained_and_breaker_trips_to_linear_floor() {
    let server = start(
        ServeConfig {
            workers: 1,
            breaker_threshold: 2,
            breaker_cooldown_ms: 60_000,
            test_hooks: true,
            ..ServeConfig::default()
        },
        1000,
    );
    let port = server.port();
    for _ in 0..2 {
        let (status, body) = post(
            port,
            "/explain",
            r#"{"instance":[0.5,0.5,0.5]}"#,
            "x-gef-test: panic\r\n",
        );
        assert_eq!(status, 500, "{body}");
        assert!(body.contains("worker_panic"), "{body}");
    }
    // The server survived both panics…
    let (status, _) = get(port, "/healthz");
    assert_eq!(status, 200);
    // …and two consecutive failures opened the breaker: the next
    // explanation is served, degraded to the linear-surrogate floor.
    let (status, body) = get(port, "/stats");
    assert_eq!(status, 200);
    assert!(body.contains("\"breaker_open\":true"), "{body}");
    let (status, body) = post(port, "/explain", r#"{"instance":[0.5,0.5,0.5]}"#, "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"floor\":\"linear_surrogate\""), "{body}");
    assert!(body.contains("linear_surrogate"), "{body}");
    server.shutdown();
}

#[test]
fn shutdown_drains_and_refuses_new_connections() {
    let server = start(ServeConfig::default(), 1000);
    let port = server.port();
    let (status, _) = post(port, "/predict", r#"{"instance":[0.1,0.2,0.3]}"#, "");
    assert_eq!(status, 200);
    server.shutdown();
    // The listener is gone: new connections must be refused (or at
    // least never answered by a live server).
    match TcpStream::connect(("127.0.0.1", port)) {
        Err(_) => {}
        Ok(mut s) => {
            // Rare race: the OS may still complete the handshake from
            // the backlog; a read must then see EOF, never a response.
            s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n");
            let mut buf = String::new();
            let n = s.read_to_string(&mut buf).unwrap_or(0);
            assert_eq!(n, 0, "a drained server must not answer: {buf}");
        }
    }
}

#[test]
fn malformed_requests_answer_typed_and_server_survives() {
    let server = start(ServeConfig::default(), 1000);
    let port = server.port();
    let cases: [(&str, u16); 4] = [
        ("BOGUS LINE\r\n\r\n", 400),
        (
            "POST /explain HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
            400,
        ),
        (
            "POST /explain HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n",
            413,
        ),
        (
            "POST /explain HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
            501,
        ),
    ];
    for (raw, want) in cases {
        let (status, body) = roundtrip(port, raw);
        assert_eq!(status, want, "{raw:?} → {body}");
        assert!(body.contains("\"error\""), "{body}");
    }
    let (status, _) = get(port, "/healthz");
    assert_eq!(status, 200, "server must survive malformed input");
    server.shutdown();
}

/// Store-backed serving: `GET /models` reports digests + cache state,
/// and two identical `/explain` requests hit the explanation cache the
/// second time (`"cache":"miss"` then `"cache":"hit"`).
#[test]
fn store_backed_explain_caches_and_models_lists_digests() {
    std::env::set_var("GEF_INCIDENT_DIR", env!("CARGO_TARGET_TMPDIR"));
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!(
        "serve-store-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let store = std::sync::Arc::new(gef_store::Store::open(&dir).expect("store open"));
    let entry = model(800);
    let digest = store.publish_forest(&entry.forest).expect("publish");
    store.tag(&entry.name, digest).expect("tag");
    let server = Server::start_with_store(ServeConfig::default(), vec![entry], Some(store.clone()))
        .expect("server start");
    let port = server.port();

    let (status, body) = get(port, "/models");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"name\":\"m\""), "{body}");
    assert!(
        body.contains(&format!(
            "\"digest\":\"{}\"",
            gef_trace::hash::to_hex(digest)
        )),
        "{body}"
    );
    assert!(body.contains("\"cache\":{"), "{body}");
    assert!(body.contains("\"quarantined\":0"), "{body}");

    let req = r#"{"instance":[0.2,0.8,0.5]}"#;
    let (status, body) = post(port, "/explain", req, "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"cache\":\"miss\""), "{body}");
    let (status, body) = post(port, "/explain", req, "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"cache\":\"hit\""), "{body}");
    // The reuse path survives a restart: the cached explanation lives
    // in the store, not in server memory.
    server.shutdown();
    let server2 = Server::start_with_store(
        ServeConfig::default(),
        vec![model(800)],
        Some(store.clone()),
    )
    .expect("server restart");
    let (status, body) = post(server2.port(), "/explain", req, "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"cache\":\"hit\""), "{body}");
    server2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every response echoes a trace id: minted ones are 16-hex, and a
/// well-formed client-supplied `x-gef-trace-id` is honored verbatim in
/// both the response header and the body's `trace_id` field.
#[test]
fn responses_echo_and_honor_trace_ids() {
    let server = start(ServeConfig::default(), 800);
    let port = server.port();

    let raw = roundtrip_raw(port, "GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n");
    let minted = header_value(&raw, "x-gef-trace-id").expect("minted trace id header");
    assert_eq!(minted.len(), 16, "{minted}");
    assert!(minted.chars().all(|c| c.is_ascii_hexdigit()), "{minted}");
    assert!(raw.contains(&format!("\"trace_id\":\"{minted}\"")), "{raw}");

    let body = r#"{"instance":[0.2,0.8,0.5]}"#;
    let raw = roundtrip_raw(
        port,
        &format!(
            "POST /explain HTTP/1.1\r\nconnection: close\r\nx-gef-trace-id: 00000000deadbeef\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        ),
    );
    assert!(raw.starts_with("HTTP/1.1 200 "), "{raw}");
    assert_eq!(
        header_value(&raw, "x-gef-trace-id").as_deref(),
        Some("00000000deadbeef"),
        "{raw}"
    );
    assert!(raw.contains("\"trace_id\":\"00000000deadbeef\""), "{raw}");

    // A malformed client id (wrong length) is replaced, not echoed.
    let raw = roundtrip_raw(
        port,
        "GET /healthz HTTP/1.1\r\nconnection: close\r\nx-gef-trace-id: nope\r\n\r\n",
    );
    let replaced = header_value(&raw, "x-gef-trace-id").expect("replacement id");
    assert_ne!(replaced, "nope");
    assert_eq!(replaced.len(), 16);
    server.shutdown();
}

/// The tentpole isolation criterion: two concurrent `/explain?profile=1`
/// requests (with gef-par workers fanned out under `GEF_THREADS=4`) get
/// distinct trace ids, and each response's profile fragment contains
/// only spans stamped with its *own* id, covering the pipeline stages
/// that ran.
#[test]
fn concurrent_profiles_are_isolated_per_trace_id() {
    std::env::set_var("GEF_THREADS", "4");
    let server = start(
        ServeConfig {
            workers: 2,
            profile: true,
            ..ServeConfig::default()
        },
        2500,
    );
    let port = server.port();
    let spawn = || {
        std::thread::spawn(move || {
            post(
                port,
                "/explain?profile=1",
                r#"{"instance":[0.2,0.8,0.5]}"#,
                "",
            )
        })
    };
    let (a, b) = (spawn(), spawn());
    let (status_a, body_a) = a.join().unwrap();
    let (status_b, body_b) = b.join().unwrap();
    assert_eq!(status_a, 200, "{body_a}");
    assert_eq!(status_b, 200, "{body_b}");

    let id_a = json_str_field(&body_a, "trace_id").expect("trace id a");
    let id_b = json_str_field(&body_b, "trace_id").expect("trace id b");
    assert_ne!(id_a, id_b, "concurrent requests must get distinct ids");

    for (body, own, other) in [(&body_a, &id_a, &id_b), (&body_b, &id_b, &id_a)] {
        assert!(body.contains("\"profile\":{"), "{body}");
        // Every span in the fragment is stamped with this request's id
        // and no other request's spans leak in.
        let stamps: Vec<&str> = body
            .match_indices("\"trace\":\"")
            .map(|(i, pat)| &body[i + pat.len()..i + pat.len() + 16])
            .collect();
        assert!(
            !stamps.is_empty(),
            "fragment must contain stamped spans: {body}"
        );
        for s in &stamps {
            assert_eq!(s, own, "foreign span in fragment: {body}");
        }
        assert!(!body.contains(&format!("\"trace\":\"{other}\"")), "{body}");
        // Stage coverage: the pipeline root span ran under this id.
        assert!(body.contains("pipeline.explain"), "{body}");
    }
    server.shutdown();
}

/// `GET /metrics` serves a parseable Prometheus text exposition whose
/// counters never move backwards across scrapes, and whose per-status
/// response tallies account for the traffic in between.
#[test]
fn metrics_exposition_parses_and_counters_are_monotonic() {
    let server = start(ServeConfig::default(), 800);
    let port = server.port();

    let raw = roundtrip_raw(port, "GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n");
    assert!(raw.starts_with("HTTP/1.1 200 "), "{raw}");
    assert!(
        header_value(&raw, "content-type").is_some_and(|ct| ct.starts_with("text/plain")),
        "{raw}"
    );
    let body1 = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap();
    let exp1 = gef_trace::metrics::validate(&body1).expect("first scrape validates");
    assert!(!exp1.named("gef_serve_responses_total").is_empty());
    assert!(exp1.value("gef_serve_explain_latency_us_count").is_some());
    assert!(!exp1.named("gef_serve_window_success_ratio").is_empty());

    // Traffic between scrapes: 200 (explain), 200 (predict), 404, 405.
    let (s, _) = post(port, "/explain", r#"{"instance":[0.2,0.8,0.5]}"#, "");
    assert_eq!(s, 200);
    let (s, _) = post(port, "/predict", r#"{"instance":[0.2,0.8,0.5]}"#, "");
    assert_eq!(s, 200);
    let (s, _) = get(port, "/nowhere");
    assert_eq!(s, 404);
    let (s, _) = get(port, "/explain");
    assert_eq!(s, 405);

    let (status, body2) = get(port, "/metrics");
    assert_eq!(status, 200);
    let exp2 = gef_trace::metrics::validate(&body2).expect("second scrape validates");

    // Monotonicity: every counter sample of the first scrape is <= its
    // successor in the second.
    for s1 in exp1.samples.iter().filter(|s| s.name.ends_with("_total")) {
        let v2 = exp2
            .samples
            .iter()
            .find(|s2| s2.name == s1.name && s2.labels == s1.labels)
            .unwrap_or_else(|| panic!("{} vanished between scrapes", s1.name))
            .value;
        assert!(
            v2 >= s1.value,
            "{}{:?} went backwards: {} -> {v2}",
            s1.name,
            s1.labels,
            s1.value
        );
    }
    // The 4 probes plus the first /metrics response itself all landed
    // in the per-status tallies.
    let sum1 = exp1.sum("gef_serve_responses_total");
    let sum2 = exp2.sum("gef_serve_responses_total");
    assert!(
        sum2 >= sum1 + 5.0,
        "expected >= 5 new responses between scrapes, got {sum1} -> {sum2}"
    );
    let c404: f64 = exp2
        .named("gef_serve_responses_total")
        .iter()
        .filter(|s| s.label("code") == Some("404"))
        .map(|s| s.value)
        .sum();
    assert!(c404 >= 1.0, "{body2}");
    server.shutdown();
}

/// A request slower than `slow_ms` leaves a slow-request capture in
/// the incident directory, filed under — and filtered to — its own
/// trace id.
#[test]
fn slow_requests_dump_a_trace_filtered_capture() {
    let server = start(
        ServeConfig {
            test_hooks: true,
            slow_ms: 50,
            ..ServeConfig::default()
        },
        800,
    );
    let port = server.port();
    let hex = "feedfacecafef00d";
    let (status, body) = post(
        port,
        "/explain",
        r#"{"instance":[0.2,0.8,0.5]}"#,
        &format!("x-gef-trace-id: {hex}\r\nx-gef-test: sleep\r\nx-gef-test-ms: 200\r\n"),
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(json_str_field(&body, "trace_id").as_deref(), Some(hex));

    // The capture is written before the response goes out, so it must
    // exist by now. Trace ids are unique, so the shared incident dir
    // (CARGO_TARGET_TMPDIR) cannot collide across tests.
    let path =
        std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("incident-slow_{hex}.json"));
    let doc = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing capture {}: {e}", path.display()));
    assert!(doc.contains("\"schema\":\"gef-core/slowreq/v1\""), "{doc}");
    assert!(doc.contains(&format!("\"trace_id\":\"{hex}\"")), "{doc}");
    assert!(doc.contains("\"threshold_ms\":50"), "{doc}");
    // The timeline slot is always present (null unless profiling was
    // on — another test in this process may have enabled it).
    assert!(doc.contains("\"timeline\":"), "{doc}");
    let _ = std::fs::remove_file(&path);
    server.shutdown();
}
