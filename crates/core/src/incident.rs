//! Incident dumps: the flight recorder's crash-box output.
//!
//! When a pipeline run fails with a typed [`GefError`] — or when a tool
//! wants a snapshot on demand — this module drains the always-on
//! [`gef_trace::recorder`] and writes one self-contained JSON document
//! to `results/incidents/<label>-<cause>.json`. The dump carries
//! everything a post-mortem needs with **all opt-in telemetry off**:
//!
//! * the last [`EVENT_WINDOW`] flight-recorder records, merged across
//!   threads in global order (span transitions, events, degradations,
//!   budget trips, fault fires, contained panics);
//! * config / forest content digests tying the incident to the exact
//!   inputs (see [`gef_trace::hash::Digest`]);
//! * a replayable `GEF_FAULTS` string reconstructed from the armed
//!   fault schedule, plus per-site hit/fired counters;
//! * budget state (armed, remaining, trip latches, iteration caps),
//!   thread count, and the degradation history.
//!
//! # Schema
//!
//! Documents are versioned by the `schema` field ([`SCHEMA`]); the full
//! field list is documented in the workspace `DESIGN.md`. Dumps are
//! written with [`gef_trace::json::JsonWriter`] and are valid JSON by
//! construction — `gef_trace::json::parse` round-trips them, which CI
//! asserts.
//!
//! # Knobs
//!
//! | variable | effect |
//! |----------|--------|
//! | `GEF_INCIDENT_DIR` | output directory (default `results/incidents`) |
//! | `GEF_INCIDENTS=0` / `off` | disable dumping entirely |
//!
//! Dumping is best-effort and infallible from the caller's view: any
//! I/O failure is reported on stderr and swallowed ([`dump_error`]
//! returns `None`), because an incident writer that can itself crash
//! the process would be worse than no incident writer.

use crate::GefError;
use gef_trace::hash::to_hex;
use gef_trace::json::JsonWriter;
use gef_trace::recorder;
use std::path::PathBuf;
use std::sync::Mutex;

/// Schema identifier stamped into every dump (`schema` field).
pub const SCHEMA: &str = "gef-core/incident/v1";

/// Schema identifier of slow-request capture artifacts (see
/// [`render_slow`]): the trace-id-filtered recorder slice plus timeline
/// fragment a request leaves behind when it exceeds the serve layer's
/// `GEF_SERVE_SLOW_MS` threshold.
pub const SLOW_SCHEMA: &str = "gef-core/slowreq/v1";

/// How many of the most recent flight-recorder records a dump carries.
pub const EVENT_WINDOW: usize = 200;

/// How many dumps per label the incident directory retains. Mirrors
/// the `BENCH_trajectory.json` pruning: after every successful write,
/// dumps whose file name shares the current label prefix are pruned to
/// the newest [`INCIDENT_KEEP`] by modification time, so a long chaos
/// campaign (or a crash-looping service) cannot grow
/// `results/incidents/` without bound.
pub const INCIDENT_KEEP: usize = 50;

static LABEL: Mutex<Option<String>> = Mutex::new(None);

/// Set the process-wide incident label (the `<label>` half of the dump
/// file name). Experiment binaries set this to their run identifier
/// (e.g. `xp_chaos` sets one per schedule); unset, dumps are labelled
/// `incident`.
pub fn set_label(label: &str) {
    let mut slot = LABEL.lock().unwrap_or_else(|e| e.into_inner());
    *slot = Some(label.to_string());
}

/// The current incident label (default `incident`).
pub fn label() -> String {
    LABEL
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
        .unwrap_or_else(|| "incident".to_string())
}

/// Whether dumping is enabled (`GEF_INCIDENTS=0`/`off`/`false`
/// disables). Unit-test builds never dump: the suite deliberately
/// drives error paths, and each would litter a `results/incidents/`
/// under the crate root. Integration tests and binaries link the
/// non-`cfg(test)` library, so they exercise real dumps.
pub fn enabled() -> bool {
    if cfg!(test) {
        return false;
    }
    match std::env::var("GEF_INCIDENTS") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "0" || v == "off" || v == "false")
        }
        Err(_) => true,
    }
}

/// The directory incident dumps land in: `GEF_INCIDENT_DIR` when set,
/// else `results/incidents` under the current working directory.
pub fn incident_dir() -> PathBuf {
    match std::env::var("GEF_INCIDENT_DIR") {
        Ok(dir) if !dir.trim().is_empty() => PathBuf::from(dir),
        _ => PathBuf::from("results").join("incidents"),
    }
}

/// Restrict a file-name fragment to `[A-Za-z0-9._-]`, mapping everything
/// else to `_` (labels may come from CLI args or env).
fn sanitize(s: &str) -> String {
    let cleaned: String = s
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "incident".to_string()
    } else {
        cleaned
    }
}

/// Everything the dump knows about the run beyond what the process
/// globals (recorder, fault registry, budget) already hold. All fields
/// are optional: a dump with no context is still a valid incident.
#[derive(Debug, Clone, Default)]
pub struct IncidentContext {
    /// `GefConfig::content_digest` of the run's configuration.
    pub config_digest: Option<u64>,
    /// `Forest::content_digest` of the explained model.
    pub forest_digest: Option<u64>,
    /// The run's RNG seed.
    pub seed: Option<u64>,
}

/// Render the incident document for `cause`/`error` as a JSON string.
/// Pure with respect to the filesystem (reads only process globals), so
/// tests can validate the schema without touching disk.
pub fn render(cause: &str, error: &str, ctx: &IncidentContext) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", SCHEMA);
    w.field_str("label", &label());
    w.field_str("cause", cause);
    w.field_str("error", error);
    // The trace id of the request scope active at dump time — ties the
    // incident to one HTTP response's X-Gef-Trace-Id. Empty outside any
    // request scope (library callers, CLI tools).
    w.field_str(
        "trace_id",
        &gef_trace::ctx::current_hex().unwrap_or_default(),
    );
    w.field_u64("created_unix_ms", unix_ms());
    w.field_u64("threads", gef_par::threads() as u64);
    match ctx.config_digest {
        Some(d) => w.field_str("config_digest", &to_hex(d)),
        None => {
            w.key("config_digest");
            w.value_raw("null");
        }
    }
    match ctx.forest_digest {
        Some(d) => w.field_str("forest_digest", &to_hex(d)),
        None => {
            w.key("forest_digest");
            w.value_raw("null");
        }
    }
    match ctx.seed {
        Some(s) => w.field_u64("seed", s),
        None => {
            w.key("seed");
            w.value_raw("null");
        }
    }

    // Replayable fault schedule: the armed sites rendered back into the
    // GEF_FAULTS grammar, plus what each site actually did.
    let armed = gef_trace::fault::armed();
    let spec: Vec<String> = armed
        .iter()
        .map(|(site, trig)| format!("{site}={}", trig.to_spec()))
        .collect();
    w.field_str("replay_faults", &spec.join(","));
    w.key("faults_fired");
    w.begin_array();
    for (site, hits, fired) in gef_trace::fault::armed_counts() {
        w.begin_object();
        w.field_str("site", &site);
        w.field_u64("hits", hits);
        w.field_u64("fired", fired);
        w.end_object();
    }
    w.end_array();

    // Budget state at dump time (the pipeline dumps while its budget
    // guard is still armed, so trips are visible here).
    w.key("budget");
    w.begin_object();
    w.key("active");
    w.value_raw(if gef_trace::budget::active() {
        "true"
    } else {
        "false"
    });
    match gef_trace::budget::remaining_ms() {
        Some(ms) => w.field_u64("remaining_ms", ms),
        None => {
            w.key("remaining_ms");
            w.value_raw("null");
        }
    }
    w.key("hard_tripped");
    w.value_raw(if gef_trace::budget::hard_tripped() {
        "true"
    } else {
        "false"
    });
    w.key("soft_tripped");
    w.value_raw(if gef_trace::budget::soft_tripped() {
        "true"
    } else {
        "false"
    });
    w.field_u64("boost_round_cap", gef_trace::budget::boost_round_cap());
    w.field_u64("pirls_iter_cap", gef_trace::budget::pirls_iter_cap());
    w.end_object();

    // Drain the flight recorder: the most recent window, globally
    // ordered, plus the degradation subset pulled out for quick triage.
    let records = recorder::snapshot_last(EVENT_WINDOW);
    w.key("degradations");
    w.begin_array();
    for r in records
        .iter()
        .filter(|r| r.kind == recorder::Kind::Degradation)
    {
        w.begin_object();
        w.field_str("action", &r.name);
        w.field_str("detail", r.detail.as_deref().unwrap_or(""));
        w.end_object();
    }
    w.end_array();
    write_events(&mut w, &records);
    w.field_u64("events_overwritten", recorder::overwritten_total());
    w.end_object();
    w.finish()
}

/// Emit an `events` array of flight-recorder records (shared by
/// incident and slow-request documents).
fn write_events(w: &mut JsonWriter, records: &[recorder::Record]) {
    w.key("events");
    w.begin_array();
    for r in records {
        w.begin_object();
        w.field_str("kind", r.kind.label());
        w.field_u64("tid", r.tid);
        w.field_str("thread", &r.thread);
        w.field_u64("ts_ns", r.ts_ns);
        w.field_u64("seq", r.seq);
        w.field_str("name", &r.name);
        if r.trace != 0 {
            w.field_str("trace", &to_hex(r.trace));
        }
        if !r.fields.is_empty() {
            w.key("fields");
            w.begin_object();
            for (k, v) in &r.fields {
                w.field_f64(k, *v);
            }
            w.end_object();
        }
        if let Some(detail) = &r.detail {
            w.field_str("detail", detail);
        }
        w.end_object();
    }
    w.end_array();
}

/// Render a slow-request capture for the request `trace`: the
/// trace-id-filtered flight-recorder slice plus (when profiling is on)
/// the request's Chrome-trace timeline fragment. Pure with respect to
/// the filesystem, like [`render`].
pub fn render_slow(trace: u64, elapsed_ms: u64, threshold_ms: u64, detail: &str) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", SLOW_SCHEMA);
    w.field_str("label", &label());
    w.field_str("cause", "slow_request");
    w.field_str("trace_id", &to_hex(trace));
    w.field_str("detail", detail);
    w.field_u64("elapsed_ms", elapsed_ms);
    w.field_u64("threshold_ms", threshold_ms);
    w.field_u64("created_unix_ms", unix_ms());
    w.field_u64("threads", gef_par::threads() as u64);
    write_events(&mut w, &recorder::snapshot_trace(EVENT_WINDOW, trace));
    w.field_u64("events_overwritten", recorder::overwritten_total());
    w.key("timeline");
    if gef_trace::timeline::prof_enabled() {
        // A valid Chrome-trace JSON document, embedded verbatim.
        w.value_raw(&gef_trace::timeline::chrome_trace_fragment(trace));
    } else {
        w.value_raw("null");
    }
    w.end_object();
    w.finish()
}

/// Dump a slow-request capture under the incident directory as
/// `<label>-slow_<trace>.json` — pruned by the same newest-
/// [`INCIDENT_KEEP`] per-label policy as incident dumps. Best-effort;
/// returns the written path, or `None` when dumping is disabled or the
/// write failed.
pub fn dump_slow(trace: u64, elapsed_ms: u64, threshold_ms: u64, detail: &str) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    let doc = render_slow(trace, elapsed_ms, threshold_ms, detail);
    let dir = incident_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "gef-core: cannot create incident dir {}: {e}",
            dir.display()
        );
        return None;
    }
    let path = dump_path(&format!("slow_{}", to_hex(trace)));
    match std::fs::write(&path, doc) {
        Ok(()) => {
            eprintln!("gef-core: wrote slow-request capture {}", path.display());
            prune_label_dumps(&dir);
            Some(path)
        }
        Err(e) => {
            eprintln!(
                "gef-core: cannot write slow-request capture {}: {e}",
                path.display()
            );
            None
        }
    }
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn write_dump(cause: &str, error: &str, ctx: &IncidentContext) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    let doc = render(cause, error, ctx);
    let dir = incident_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!(
            "gef-core: cannot create incident dir {}: {e}",
            dir.display()
        );
        return None;
    }
    let path = dump_path(cause);
    match std::fs::write(&path, doc) {
        Ok(()) => {
            eprintln!("gef-core: wrote incident dump {}", path.display());
            prune_label_dumps(&dir);
            Some(path)
        }
        Err(e) => {
            eprintln!(
                "gef-core: cannot write incident dump {}: {e}",
                path.display()
            );
            None
        }
    }
}

/// Bound incident-directory growth: keep only the newest
/// [`INCIDENT_KEEP`] dumps sharing the current label prefix, deleting
/// older ones (by modification time). Best-effort, like everything on
/// the incident path; when it fires it leaves a
/// [`gef_trace::recorder::Kind::Store`] note with the delete count.
fn prune_label_dumps(dir: &std::path::Path) {
    prune_with_prefix(dir, &format!("{}-", sanitize(&label())));
}

fn prune_with_prefix(dir: &std::path::Path, prefix: &str) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    let mut dumps: Vec<(std::time::SystemTime, PathBuf)> = rd
        .flatten()
        .filter(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.starts_with(prefix) && name.ends_with(".json")
        })
        .filter_map(|e| {
            let mtime = e.metadata().and_then(|m| m.modified()).ok()?;
            Some((mtime, e.path()))
        })
        .collect();
    if dumps.len() <= INCIDENT_KEEP {
        return;
    }
    // Newest first; everything past the keep horizon goes.
    dumps.sort_by_key(|d| std::cmp::Reverse(d.0));
    let mut pruned = 0u64;
    for (_, path) in dumps.drain(INCIDENT_KEEP..) {
        if std::fs::remove_file(&path).is_ok() {
            pruned += 1;
        }
    }
    if pruned > 0 {
        recorder::note(
            recorder::Kind::Store,
            "incident.pruned",
            &format!("{pruned} dump(s) past keep={INCIDENT_KEEP} for label prefix {prefix:?}"),
        );
    }
}

/// The path a dump with the current label and the given cause lands at
/// (whether or not it has been written yet): harnesses archiving
/// incidents use this to reference dumps that `GefExplainer::explain`
/// wrote internally.
pub fn dump_path(cause: &str) -> PathBuf {
    incident_dir().join(format!("{}-{}.json", sanitize(&label()), sanitize(cause)))
}

/// Dump an incident for a typed pipeline error. Called by
/// `GefExplainer::explain` on every `Err` path (while its budget guard
/// is still armed, so the dump sees the trip state). Best-effort:
/// returns the written path, or `None` when dumping is disabled or the
/// write failed.
pub fn dump_error(err: &GefError, ctx: &IncidentContext) -> Option<PathBuf> {
    write_dump(err.cause_label(), &err.to_string(), ctx)
}

/// Dump an incident on demand (no error object), e.g. from an operator
/// tool taking a snapshot of a live process. `cause` becomes the file
/// name's cause half; `detail` the `error` field.
pub fn dump_now(cause: &str, detail: &str) -> Option<PathBuf> {
    write_dump(cause, detail, &IncidentContext::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gef_trace::json::{parse, JsonValue};

    #[test]
    fn render_produces_schema_valid_json() {
        let ctx = IncidentContext {
            config_digest: Some(0xabc),
            forest_digest: None,
            seed: Some(7),
        };
        recorder::note(
            recorder::Kind::Degradation,
            "shrunk_bases",
            "gam_fit: NotPositiveDefinite",
        );
        let doc = render("deadline", "hard deadline exceeded (at pirls)", &ctx);
        let v = parse(&doc).unwrap_or_else(|e| panic!("invalid incident json: {e}\n{doc}"));
        assert_eq!(v.get("schema").and_then(JsonValue::as_str), Some(SCHEMA));
        assert_eq!(v.get("cause").and_then(JsonValue::as_str), Some("deadline"));
        assert_eq!(
            v.get("config_digest").and_then(JsonValue::as_str),
            Some("0000000000000abc")
        );
        assert_eq!(v.get("forest_digest"), Some(&JsonValue::Null));
        assert_eq!(v.get("seed").and_then(JsonValue::as_f64), Some(7.0));
        assert!(v.get("budget").is_some());
        assert!(v.get("events").and_then(JsonValue::as_array).is_some());
        assert!(v.get("replay_faults").and_then(JsonValue::as_str).is_some());
    }

    #[test]
    fn render_stamps_the_active_trace_scope() {
        {
            let _scope = gef_trace::ctx::TraceCtx::with_id(0xfeed).enter();
            let doc = render("deadline", "boom", &IncidentContext::default());
            let v = parse(&doc).unwrap();
            assert_eq!(
                v.get("trace_id").and_then(JsonValue::as_str),
                Some("000000000000feed")
            );
        }
        let doc = render("deadline", "boom", &IncidentContext::default());
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("trace_id").and_then(JsonValue::as_str), Some(""));
    }

    #[test]
    fn render_slow_filters_events_to_the_request() {
        let trace = 0xbeefu64;
        {
            let _scope = gef_trace::ctx::TraceCtx::with_id(trace).enter();
            recorder::note(recorder::Kind::Event, "slow.mine", "in scope");
        }
        recorder::note(recorder::Kind::Event, "slow.other", "out of scope");
        let doc = render_slow(trace, 950, 500, "POST /explain");
        let v = parse(&doc).unwrap_or_else(|e| panic!("invalid slow json: {e}\n{doc}"));
        assert_eq!(
            v.get("schema").and_then(JsonValue::as_str),
            Some(SLOW_SCHEMA)
        );
        assert_eq!(
            v.get("trace_id").and_then(JsonValue::as_str),
            Some("000000000000beef")
        );
        assert_eq!(v.get("elapsed_ms").and_then(JsonValue::as_f64), Some(950.0));
        let events = v.get("events").and_then(JsonValue::as_array).unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(JsonValue::as_str) == Some("slow.mine")));
        assert!(events
            .iter()
            .all(|e| e.get("name").and_then(JsonValue::as_str) != Some("slow.other")));
        // Profiling is off in unit tests, so the timeline slot is null.
        assert_eq!(v.get("timeline"), Some(&JsonValue::Null));
    }

    #[test]
    fn sanitize_restricts_charset() {
        assert_eq!(sanitize("ok-file_1.json"), "ok-file_1.json");
        assert_eq!(sanitize("a/b\\c d!"), "a_b_c_d_");
        assert_eq!(sanitize(""), "incident");
    }

    #[test]
    fn pruning_keeps_newest_per_label_and_spares_other_labels() {
        let dir = std::env::temp_dir().join(format!(
            "gef-incident-prune-{}-{}",
            std::process::id(),
            unix_ms()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        for i in 0..INCIDENT_KEEP + 5 {
            std::fs::write(dir.join(format!("sweep-c{i:03}.json")), b"{}").unwrap();
        }
        std::fs::write(dir.join("other-label.json"), b"{}").unwrap();
        std::fs::write(dir.join("sweep-not-a-dump.txt"), b"x").unwrap();
        prune_with_prefix(&dir, "sweep-");
        let remaining: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        let sweep_dumps = remaining
            .iter()
            .filter(|n| n.starts_with("sweep-") && n.ends_with(".json"))
            .count();
        assert_eq!(sweep_dumps, INCIDENT_KEEP);
        assert!(remaining.contains(&"other-label.json".to_string()));
        assert!(remaining.contains(&"sweep-not-a-dump.txt".to_string()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn label_defaults_and_sets() {
        // Label state is process-global; keep this the only test that
        // mutates it, and restore the default afterwards.
        let before = label();
        set_label("chaos-042");
        assert_eq!(label(), "chaos-042");
        set_label(&before);
    }
}
