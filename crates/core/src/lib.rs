//! # gef-core
//!
//! GAM-based Explanation of Forests (GEF) — the paper's contribution.
//!
//! Given a trained forest `T` (and **nothing else**: no training data),
//! GEF builds an interpretable GAM surrogate `Γ` in five steps:
//!
//! 1. **Univariate selection** ([`selection`]): pick the top-`|F'|`
//!    features by accumulated split gain.
//! 2. **Sampling domains** ([`sampling`]): turn each feature's split
//!    thresholds `V_i` into a discrete sampling domain `D_i` with one of
//!    five strategies (*All-Thresholds*, *K-Quantile*, *Equi-Width*,
//!    *K-Means*, *Equi-Size*).
//! 3. **Synthetic dataset** ([`generate`]): sample `N` instances
//!    uniformly from `D_1 × … × D_n` and label them with the forest.
//! 4. **Interaction selection** ([`interactions`]): rank feature pairs
//!    within `F'` with *Pair-Gain*, *Count-Path*, *Gain-Path* or
//!    *H-Stat* and keep the top `|F''|`.
//! 5. **GAM fitting** ([`pipeline`]): cubic P-splines for continuous
//!    features, factor terms for detected categoricals
//!    (`|V_i| < L = 10`), penalized tensor products for `F''`, single
//!    shared λ tuned by GCV.
//!
//! ## Quick example
//!
//! ```
//! use gef_core::{GefConfig, GefExplainer};
//! use gef_forest::{GbdtParams, GbdtTrainer};
//!
//! // A forest someone else trained (we pretend the data is gone).
//! let xs: Vec<Vec<f64>> = (0..500)
//!     .map(|i| vec![(i % 71) as f64 / 71.0, (i % 53) as f64 / 53.0])
//!     .collect();
//! let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 + (x[1] * 6.0).sin()).collect();
//! let forest = GbdtTrainer::new(GbdtParams {
//!     num_trees: 60, num_leaves: 8, learning_rate: 0.2, min_data_in_leaf: 5,
//!     ..Default::default()
//! }).fit(&xs, &ys).unwrap();
//!
//! // Explain it without the data.
//! let config = GefConfig { num_univariate: 2, n_samples: 4000, ..Default::default() };
//! let explanation = GefExplainer::new(config).explain(&forest).unwrap();
//! assert_eq!(explanation.selected_features.len(), 2);
//! let err = (explanation.predict(&[0.5, 0.25]) - forest.predict(&[0.5, 0.25])).abs();
//! assert!(err < 0.35, "surrogate should track the forest, err={err}");
//! ```

// Library code must surface failures as `GefError`, never panic; tests
// are exempt. Local `#[allow]`s mark the few provably-infallible spots.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod budget;
#[cfg(feature = "fault-injection")]
pub mod faults;
pub mod generate;
pub mod incident;
pub mod interactions;
pub mod pipeline;
pub mod recovery;
pub mod report;
pub mod reuse;
pub mod sampling;
pub mod selection;

pub use budget::RunBudget;
pub use generate::SyntheticDataset;
pub use interactions::InteractionStrategy;
pub use pipeline::{
    GefConfig, GefExplainer, GefExplanation, LocalExplanation, Provenance, StageTimings,
};
pub use recovery::{Degradation, DegradationAction, FitFloor};
pub use report::ExplanationReport;
pub use sampling::SamplingStrategy;

/// Errors produced by the GEF pipeline.
#[derive(Debug)]
pub enum GefError {
    /// The forest has no usable structure (e.g. no split nodes).
    DegenerateForest(String),
    /// Invalid configuration.
    InvalidConfig(String),
    /// Failure in the underlying GAM fit.
    Gam(gef_gam::GamError),
    /// Too many `D*` rows carried non-finite forest labels to fit
    /// anything after scrubbing.
    NonFiniteLabels {
        /// Rows removed by the scrub.
        removed: usize,
        /// Rows before scrubbing.
        total: usize,
    },
    /// Every rung of the degradation ladder failed.
    RecoveryExhausted {
        /// Fit attempts made (full spec + each ladder rung tried).
        attempts: usize,
        /// The last attempt's failure.
        last: String,
    },
    /// The run's hard wall-clock deadline (`GEF_DEADLINE_MS` /
    /// [`budget::RunBudget`]) passed at a cooperative checkpoint.
    /// Already-completed work is abandoned cleanly — never a hang,
    /// never a panic.
    DeadlineExceeded {
        /// The checkpoint that observed the trip (a pipeline stage
        /// name, `"gcv_grid"`, `"pirls"`, `"train"`, `"predict"`, or
        /// `"parallel"` for a mid-region cancellation).
        at: &'static str,
    },
    /// A non-time budget cap (e.g. `GEF_MAX_DSTAR_ROWS`) is too tight
    /// to produce any valid explanation.
    BudgetExceeded(String),
    /// A parallel worker panicked; carries the first worker's panic
    /// payload (see `gef_par::ParError`).
    WorkerPanicked(String),
    /// Failure in the underlying forest (training or batch labeling).
    Forest(gef_forest::ForestError),
}

impl std::fmt::Display for GefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GefError::DegenerateForest(m) => write!(f, "degenerate forest: {m}"),
            GefError::InvalidConfig(m) => write!(f, "invalid GEF configuration: {m}"),
            GefError::Gam(e) => write!(f, "GAM fitting failed: {e}"),
            GefError::NonFiniteLabels { removed, total } => write!(
                f,
                "{removed} of {total} D* rows had non-finite forest labels; too few remain"
            ),
            GefError::RecoveryExhausted { attempts, last } => write!(
                f,
                "degradation ladder exhausted after {attempts} attempts; last failure: {last}"
            ),
            GefError::DeadlineExceeded { at } => {
                write!(f, "hard deadline exceeded (at {at})")
            }
            GefError::BudgetExceeded(m) => write!(f, "run budget exceeded: {m}"),
            GefError::WorkerPanicked(payload) => {
                write!(f, "a parallel worker panicked: {payload}")
            }
            GefError::Forest(e) => write!(f, "forest failure: {e}"),
        }
    }
}

impl GefError {
    /// Stable machine-readable cause label, used in incident-dump file
    /// names (`<label>-<cause>.json`) and in the dump's `cause` field.
    /// One lowercase snake-case token per variant; never changes once
    /// published.
    pub fn cause_label(&self) -> &'static str {
        match self {
            GefError::DegenerateForest(_) => "degenerate_forest",
            GefError::InvalidConfig(_) => "invalid_config",
            GefError::Gam(_) => "gam",
            GefError::NonFiniteLabels { .. } => "non_finite_labels",
            GefError::RecoveryExhausted { .. } => "recovery_exhausted",
            GefError::DeadlineExceeded { .. } => "deadline",
            GefError::BudgetExceeded(_) => "budget",
            GefError::WorkerPanicked(_) => "worker_panic",
            GefError::Forest(_) => "forest",
        }
    }
}

impl std::error::Error for GefError {}

impl From<gef_gam::GamError> for GefError {
    fn from(e: gef_gam::GamError) -> Self {
        // Budget trips and worker panics keep their typed identity
        // across the layer boundary instead of vanishing into `Gam`.
        match e {
            gef_gam::GamError::DeadlineExceeded { at } => GefError::DeadlineExceeded { at },
            gef_gam::GamError::WorkerPanicked(payload) => GefError::WorkerPanicked(payload),
            e => GefError::Gam(e),
        }
    }
}

impl From<gef_forest::ForestError> for GefError {
    fn from(e: gef_forest::ForestError) -> Self {
        match e {
            gef_forest::ForestError::DeadlineExceeded { at } => GefError::DeadlineExceeded { at },
            gef_forest::ForestError::WorkerPanicked(payload) => GefError::WorkerPanicked(payload),
            e => GefError::Forest(e),
        }
    }
}

impl From<gef_par::ParError> for GefError {
    fn from(e: gef_par::ParError) -> Self {
        match e {
            gef_par::ParError::TaskPanicked { payload } => GefError::WorkerPanicked(payload),
            // A cancelled region means the hard deadline (or an explicit
            // cancel) fired mid-fan-out.
            gef_par::ParError::Cancelled => GefError::DeadlineExceeded { at: "parallel" },
        }
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, GefError>;
