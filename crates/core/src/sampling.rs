//! Sampling-domain construction (paper Sec. 3.3).
//!
//! Each feature's sorted threshold list `V_i` (elicited from the
//! forest) is turned into a discrete *sampling domain* `D_i` by one of
//! five strategies. All strategies except *All-Thresholds* take a
//! budget `K` bounding the domain size. The `ε` domain extension is
//! `0.05 · (v_t − v_1)` as in the paper.

/// Fraction of the threshold span used to extend the domain beyond the
/// extreme thresholds (the paper's ε).
pub const EPSILON_FRACTION: f64 = 0.05;

/// A sampling-domain construction strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingStrategy {
    /// Midpoints of all consecutive thresholds plus `v₁ − ε` and
    /// `v_t + ε` (Cohen et al.'s approach; the paper's baseline).
    AllThresholds,
    /// The `K` quantiles of the threshold list.
    KQuantile(usize),
    /// `K` evenly spaced points over `[v₁ − ε, v_t + ε]`.
    EquiWidth(usize),
    /// Centroids of a `k = min(K, |V|)`-means clustering of the
    /// thresholds.
    KMeans(usize),
    /// Split the sorted thresholds into `K` contiguous equal-size
    /// sublists and take each sublist's mean.
    EquiSize(usize),
}

impl SamplingStrategy {
    /// Human-readable name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            SamplingStrategy::AllThresholds => "All-Thresholds",
            SamplingStrategy::KQuantile(_) => "K-Quantile",
            SamplingStrategy::EquiWidth(_) => "Equi-Width",
            SamplingStrategy::KMeans(_) => "K-Means",
            SamplingStrategy::EquiSize(_) => "Equi-Size",
        }
    }

    /// The strategy's point budget `K` (`None` for All-Thresholds).
    pub fn k(&self) -> Option<usize> {
        match *self {
            SamplingStrategy::AllThresholds => None,
            SamplingStrategy::KQuantile(k)
            | SamplingStrategy::EquiWidth(k)
            | SamplingStrategy::KMeans(k)
            | SamplingStrategy::EquiSize(k) => Some(k),
        }
    }

    /// Same strategy with a different budget (All-Thresholds is
    /// unchanged).
    pub fn with_k(&self, k: usize) -> SamplingStrategy {
        match self {
            SamplingStrategy::AllThresholds => SamplingStrategy::AllThresholds,
            SamplingStrategy::KQuantile(_) => SamplingStrategy::KQuantile(k),
            SamplingStrategy::EquiWidth(_) => SamplingStrategy::EquiWidth(k),
            SamplingStrategy::KMeans(_) => SamplingStrategy::KMeans(k),
            SamplingStrategy::EquiSize(_) => SamplingStrategy::EquiSize(k),
        }
    }

    /// Build the sampling domain for a sorted threshold list, which may
    /// contain duplicates (the paper's `V_i` is the multiset of
    /// thresholds across split nodes; the density-aware strategies use
    /// the multiplicity). Returns a sorted, de-duplicated, non-empty
    /// domain; returns an empty vector only when `thresholds` is empty.
    pub fn domain(&self, thresholds: &[f64]) -> Vec<f64> {
        if thresholds.is_empty() {
            return Vec::new();
        }
        debug_assert!(
            thresholds.windows(2).all(|w| w[0] <= w[1]),
            "thresholds must be sorted"
        );
        let mut out = match *self {
            SamplingStrategy::AllThresholds => all_thresholds(thresholds),
            SamplingStrategy::KQuantile(k) => k_quantile(thresholds, k),
            SamplingStrategy::EquiWidth(k) => equi_width(thresholds, k),
            SamplingStrategy::KMeans(k) => k_means_1d(thresholds, k),
            SamplingStrategy::EquiSize(k) => equi_size(thresholds, k),
        };
        out.sort_by(f64::total_cmp);
        out.dedup();
        out
    }
}

/// ε extension for a threshold list (5% of the span, with a fallback
/// for a single threshold so the domain still has width).
fn epsilon(thresholds: &[f64]) -> f64 {
    let span = thresholds[thresholds.len() - 1] - thresholds[0];
    if span > 0.0 {
        EPSILON_FRACTION * span
    } else {
        EPSILON_FRACTION * thresholds[0].abs().max(1.0)
    }
}

fn all_thresholds(v: &[f64]) -> Vec<f64> {
    let eps = epsilon(v);
    let mut out = Vec::with_capacity(v.len() + 1);
    out.push(v[0] - eps);
    out.extend(v.windows(2).map(|w| 0.5 * (w[0] + w[1])));
    out.push(v[v.len() - 1] + eps);
    out
}

fn k_quantile(v: &[f64], k: usize) -> Vec<f64> {
    let k = k.max(1);
    if k == 1 {
        return vec![gef_linalg::stats::quantile_sorted(v, 0.5)];
    }
    (0..k)
        .map(|j| gef_linalg::stats::quantile_sorted(v, j as f64 / (k - 1) as f64))
        .collect()
}

fn equi_width(v: &[f64], k: usize) -> Vec<f64> {
    let eps = epsilon(v);
    gef_linalg::stats::linspace(v[0] - eps, v[v.len() - 1] + eps, k.max(1))
}

/// Weighted Lloyd's algorithm in 1-D.
///
/// The multiset is collapsed to `(distinct value, multiplicity)` pairs
/// and `k` is capped at the number of *distinct* values (the paper's
/// `k = min(|V_i|, K)`): asking for more centroids than distinct
/// thresholds degenerates to the full threshold set. Centroids are
/// initialized at quantiles of the distinct values and updated with
/// multiplicity weights, so dense split regions attract centroids —
/// the strategy's stated goal — without centroids collapsing into
/// each other (empty clusters retain their previous position).
fn k_means_1d(v: &[f64], k: usize) -> Vec<f64> {
    // Collapse to weighted distinct values.
    let mut distinct: Vec<(f64, f64)> = Vec::new();
    for &x in v {
        match distinct.last_mut() {
            Some((val, w)) if *val == x => *w += 1.0,
            _ => distinct.push((x, 1.0)),
        }
    }
    let k = k.clamp(1, distinct.len());
    if k == distinct.len() {
        return distinct.into_iter().map(|(x, _)| x).collect();
    }
    let values: Vec<f64> = distinct.iter().map(|&(x, _)| x).collect();
    let mut centroids = k_quantile(&values, k);
    centroids.dedup();
    for _ in 0..100 {
        // Assign each distinct value to its nearest centroid (both
        // sorted, so a forward pointer suffices).
        let m = centroids.len();
        let mut sums = vec![0.0; m];
        let mut weights = vec![0.0; m];
        let mut c = 0usize;
        for &(x, w) in &distinct {
            while c + 1 < m && (centroids[c + 1] - x).abs() < (centroids[c] - x).abs() {
                c += 1;
            }
            sums[c] += w * x;
            weights[c] += w;
        }
        let mut moved = false;
        let mut next = Vec::with_capacity(m);
        for i in 0..m {
            let updated = if weights[i] > 0.0 {
                sums[i] / weights[i]
            } else {
                // Empty cluster: keep its previous position.
                centroids[i]
            };
            if (updated - centroids[i]).abs() > 1e-12 {
                moved = true;
            }
            next.push(updated);
        }
        next.sort_by(f64::total_cmp);
        centroids = next;
        if !moved {
            break;
        }
    }
    centroids.dedup();
    centroids
}

fn equi_size(v: &[f64], k: usize) -> Vec<f64> {
    let k = k.clamp(1, v.len());
    let n = v.len();
    (0..k)
        .map(|j| {
            let lo = j * n / k;
            let hi = ((j + 1) * n / k).max(lo + 1);
            v[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thresholds() -> Vec<f64> {
        // Concentrated around 0.5 like the Fig. 3 sigmoid forest.
        vec![
            0.1, 0.42, 0.45, 0.47, 0.49, 0.5, 0.51, 0.53, 0.55, 0.58, 0.9,
        ]
    }

    #[test]
    fn all_thresholds_midpoints_and_extension() {
        let v = vec![0.0, 1.0, 3.0];
        let d = SamplingStrategy::AllThresholds.domain(&v);
        // ε = 0.05 * 3 = 0.15
        let expect = [-0.15, 0.5, 2.0, 3.15];
        assert_eq!(d.len(), expect.len());
        for (a, b) in d.iter().zip(expect) {
            assert!((a - b).abs() < 1e-12, "{d:?}");
        }
    }

    #[test]
    fn all_thresholds_single_value() {
        let d = SamplingStrategy::AllThresholds.domain(&[2.0]);
        assert_eq!(d.len(), 2);
        assert!(d[0] < 2.0 && d[1] > 2.0);
    }

    #[test]
    fn k_quantile_includes_extremes() {
        let v = thresholds();
        let d = SamplingStrategy::KQuantile(5).domain(&v);
        assert_eq!(d.len(), 5);
        assert_eq!(d[0], 0.1);
        assert_eq!(d[4], 0.9);
        // Quantiles concentrate where thresholds concentrate.
        let in_center = d.iter().filter(|&&x| (0.4..=0.6).contains(&x)).count();
        assert!(in_center >= 3, "domain={d:?}");
    }

    #[test]
    fn equi_width_is_evenly_spaced() {
        let v = thresholds();
        let d = SamplingStrategy::EquiWidth(9).domain(&v);
        assert_eq!(d.len(), 9);
        let step = d[1] - d[0];
        for w in d.windows(2) {
            assert!((w[1] - w[0] - step).abs() < 1e-12);
        }
        // Covers the ε-extended span.
        assert!(d[0] < 0.1 && d[8] > 0.9);
    }

    #[test]
    fn k_means_follows_density() {
        let v = thresholds();
        let d = SamplingStrategy::KMeans(4).domain(&v);
        assert!(d.len() <= 4 && !d.is_empty());
        // Most centroids land in the dense center region.
        let in_center = d.iter().filter(|&&x| (0.4..=0.6).contains(&x)).count();
        assert!(in_center >= 2, "domain={d:?}");
    }

    #[test]
    fn k_means_caps_at_value_count() {
        let v = vec![1.0, 2.0, 3.0];
        let d = SamplingStrategy::KMeans(10).domain(&v);
        assert_eq!(d, v);
    }

    #[test]
    fn equi_size_means_of_sublists() {
        let v: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let d = SamplingStrategy::EquiSize(4).domain(&v);
        assert_eq!(d, vec![0.5, 2.5, 4.5, 6.5]);
        // K > |V| caps at |V|.
        let d2 = SamplingStrategy::EquiSize(99).domain(&v);
        assert_eq!(d2, v);
    }

    #[test]
    fn domains_are_sorted_deduped_nonempty() {
        let v = thresholds();
        for strat in [
            SamplingStrategy::AllThresholds,
            SamplingStrategy::KQuantile(6),
            SamplingStrategy::EquiWidth(6),
            SamplingStrategy::KMeans(6),
            SamplingStrategy::EquiSize(6),
        ] {
            let d = strat.domain(&v);
            assert!(!d.is_empty(), "{}", strat.name());
            for w in d.windows(2) {
                assert!(w[0] < w[1], "{} not sorted/deduped: {d:?}", strat.name());
            }
        }
    }

    #[test]
    fn empty_thresholds_give_empty_domain() {
        for strat in [
            SamplingStrategy::AllThresholds,
            SamplingStrategy::KQuantile(4),
            SamplingStrategy::EquiWidth(4),
            SamplingStrategy::KMeans(4),
            SamplingStrategy::EquiSize(4),
        ] {
            assert!(strat.domain(&[]).is_empty());
        }
    }

    #[test]
    fn k_accessors() {
        assert_eq!(SamplingStrategy::AllThresholds.k(), None);
        assert_eq!(SamplingStrategy::KQuantile(7).k(), Some(7));
        assert_eq!(
            SamplingStrategy::EquiSize(3).with_k(9),
            SamplingStrategy::EquiSize(9)
        );
        assert_eq!(
            SamplingStrategy::AllThresholds.with_k(9),
            SamplingStrategy::AllThresholds
        );
    }

    #[test]
    fn k_one_degenerate_cases() {
        let v = thresholds();
        for strat in [
            SamplingStrategy::KQuantile(1),
            SamplingStrategy::EquiWidth(1),
            SamplingStrategy::KMeans(1),
            SamplingStrategy::EquiSize(1),
        ] {
            let d = strat.domain(&v);
            assert_eq!(d.len(), 1, "{}", strat.name());
        }
    }
}
