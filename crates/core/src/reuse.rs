//! Explanation reuse through the content-addressed artifact store.
//!
//! A *full-quality* explanation is a pure function of
//! `(forest structure, GefConfig)` — both content-digested — so a
//! finished one can be served from `gef-store` without re-running the
//! pipeline. This module adds [`GefExplainer::explain_cached`]: look up
//! `(Forest::content_digest, GefConfig::content_digest)` in the store,
//! verify the cached artifact *twice* (the store checks the envelope
//! checksum; this layer re-checks the embedded provenance digests
//! against the key), and only then reuse it. Any failure along the way
//! — corrupt envelope, unparseable payload, provenance mismatch —
//! quarantines the artifact and **recomputes**: the cache accelerates
//! runs, it never fails or falsifies them.
//!
//! **Quality gate.** The cache key carries no quality dimension:
//! deadline-driven degradation (a soft-tripped `RunBudget` capping
//! `n_samples`, ladder fallbacks) does *not* change the config digest,
//! unlike breaker-raised fit floors. So a degraded run is never
//! published — otherwise one tight-deadline request would poison the
//! key and every later request, however generous its deadline, would
//! be served the collapsed explanation as a `Hit`. Symmetrically, a
//! cached artifact whose provenance records a degraded run (written by
//! an older writer or out of band) is bypassed and recomputed, and a
//! full-quality recompute overwrites it.
//!
//! Outcomes are observable: `store.reuse_hit` / `store.reuse_miss` /
//! `store.reuse_recovered` counters, plus a
//! [`Kind::Store`] recorder note on every non-hit.
//!
//! [`Kind::Store`]: gef_trace::recorder::Kind::Store

use crate::pipeline::{GefExplainer, GefExplanation};
use crate::Result;
use gef_forest::Forest;
use gef_store::Store;
use gef_trace::hash::to_hex;
use gef_trace::recorder::{self, Kind};

/// How [`GefExplainer::explain_cached`] obtained its explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the store; provenance digests matched the key.
    Hit,
    /// No cached artifact existed; computed (and, if the run was
    /// full-quality, published).
    Miss,
    /// A cached artifact existed but was unusable — corrupt,
    /// provenance-mismatched, or produced by a degraded run (detail
    /// says which). Corrupt and mismatched copies are quarantined;
    /// valid-but-degraded ones are simply bypassed. The explanation
    /// was recomputed either way.
    Recovered(String),
}

/// Whether `exp` came from a full-quality run: no degradation-ladder
/// actions and no budget trip. Only such explanations may be served
/// from — or published to — the store, because the cache key
/// (model digest, config digest) cannot distinguish a degraded run
/// from a full one.
fn full_quality(exp: &GefExplanation) -> bool {
    exp.degradations.is_empty()
        && !matches!(
            exp.provenance.budget_outcome.as_str(),
            "soft_tripped" | "hard_tripped"
        )
}

impl CacheOutcome {
    /// Stable lowercase label for telemetry and reports.
    pub fn label(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Recovered(_) => "recovered",
        }
    }
}

impl GefExplainer {
    /// Explain `forest`, reusing a stored explanation when a verified
    /// *full-quality* one exists for this exact `(model, config)`
    /// digest pair.
    ///
    /// Store trouble is never fatal: every cache-side failure falls
    /// back to computing the explanation (and re-publishing it,
    /// best-effort). The only errors this returns are the pipeline's
    /// own. Degraded runs — a soft/hard budget trip or any
    /// degradation-ladder action — are served but **not published**,
    /// and a cached artifact recording a degraded run is bypassed, so
    /// the store only ever holds full-quality explanations.
    pub fn explain_cached(
        &self,
        forest: &Forest,
        store: &Store,
    ) -> Result<(GefExplanation, CacheOutcome)> {
        let model = forest.content_digest();
        let config = self.config().content_digest();
        let key = format!("{}-{}", to_hex(model), to_hex(config));

        let mut recovered: Option<String> = None;
        match store.get_explanation(model, config) {
            Ok(Some(bytes)) => {
                let parsed = std::str::from_utf8(&bytes)
                    .ok()
                    .and_then(|s| GefExplanation::from_json(s).ok());
                match parsed {
                    Some(exp)
                        if exp.provenance.forest_digest == to_hex(model)
                            && exp.provenance.config_digest == to_hex(config) =>
                    {
                        if full_quality(&exp) {
                            gef_trace::global().add("store.reuse_hit", 1);
                            return Ok((exp, CacheOutcome::Hit));
                        }
                        // Valid but produced by a degraded run: not
                        // corruption, so no quarantine — bypass it and
                        // let a full-quality recompute overwrite it.
                        let detail = format!(
                            "cached explanation is degraded (budget_outcome={}, {} degradations); recomputing",
                            exp.provenance.budget_outcome,
                            exp.degradations.len()
                        );
                        recovered = Some(detail);
                    }
                    Some(exp) => {
                        let detail = format!(
                            "provenance mismatch: cached ({}, {}) under key {key}",
                            exp.provenance.forest_digest, exp.provenance.config_digest
                        );
                        store.quarantine_explanation(model, config, "provenance_mismatch", &detail);
                        recovered = Some(detail);
                    }
                    None => {
                        let detail =
                            "cached explanation payload failed to parse as explanation JSON"
                                .to_string();
                        store.quarantine_explanation(model, config, "payload_parse", &detail);
                        recovered = Some(detail);
                    }
                }
            }
            Ok(None) => {}
            // The store already quarantined the corrupt envelope (or
            // the read itself failed); recompute.
            Err(e) => recovered = Some(e.to_string()),
        }

        let explanation = self.explain(forest)?;
        if full_quality(&explanation) {
            if let Err(e) = store.put_explanation(model, config, explanation.to_json().as_bytes()) {
                // Publish failure (e.g. injected ENOSPC) must not fail
                // the run — the freshly computed explanation is still
                // good.
                recorder::note(Kind::Store, "store.reuse_put_failed", &e.to_string());
            }
        } else {
            gef_trace::global().add("store.reuse_publish_skipped", 1);
            recorder::note(
                Kind::Store,
                "store.reuse_publish_skipped",
                &format!(
                    "degraded run not published (budget_outcome={}, {} degradations)",
                    explanation.provenance.budget_outcome,
                    explanation.degradations.len()
                ),
            );
        }
        let outcome = match recovered {
            Some(detail) => {
                gef_trace::global().add("store.reuse_recovered", 1);
                recorder::note(Kind::Store, "store.reuse_recovered", &detail);
                CacheOutcome::Recovered(detail)
            }
            None => {
                gef_trace::global().add("store.reuse_miss", 1);
                CacheOutcome::Miss
            }
        };
        Ok((explanation, outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::GefConfig;
    use gef_forest::{GbdtParams, GbdtTrainer};

    fn train() -> Forest {
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                vec![
                    (i % 19) as f64 / 19.0,
                    (i % 7) as f64 / 7.0,
                    (i % 3) as f64 / 3.0,
                ]
            })
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0] - x[1] + 0.3 * x[2]).collect();
        GbdtTrainer::new(GbdtParams {
            num_trees: 10,
            num_leaves: 6,
            min_data_in_leaf: 5,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap()
    }

    fn quick_config() -> GefConfig {
        GefConfig {
            n_samples: 200,
            seed: 11,
            ..Default::default()
        }
    }

    fn tmp_store(tag: &str) -> (std::path::PathBuf, Store) {
        let dir = std::env::temp_dir().join(format!(
            "gef-reuse-test-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open_with_cache(&dir, 0).unwrap();
        (dir, store)
    }

    #[test]
    fn miss_then_hit_round_trip() {
        let (dir, store) = tmp_store("hit");
        let forest = train();
        let explainer = GefExplainer::new(quick_config());
        let (first, outcome) = explainer.explain_cached(&forest, &store).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let (second, outcome) = explainer.explain_cached(&forest, &store).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(first.to_json(), second.to_json());
        // A different config is a different key: miss again.
        let other = GefExplainer::new(GefConfig {
            seed: 99,
            ..quick_config()
        });
        let (_, outcome) = other.explain_cached(&forest, &store).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cached_payload_recovers_and_quarantines() {
        let (dir, store) = tmp_store("recover");
        let forest = train();
        let explainer = GefExplainer::new(quick_config());
        let model = forest.content_digest();
        let config = explainer.config().content_digest();

        // A validly-sealed envelope holding garbage: the store's
        // checksum passes, the payload parse must not.
        store
            .put_explanation(model, config, b"{\"not\": \"an explanation\"}")
            .unwrap();
        let (exp, outcome) = explainer.explain_cached(&forest, &store).unwrap();
        assert!(matches!(outcome, CacheOutcome::Recovered(_)), "{outcome:?}");
        assert_eq!(store.quarantined().len(), 1);
        assert_eq!(exp.provenance.forest_digest, to_hex(model));

        // The recompute re-published a good artifact: next call hits.
        let (_, outcome) = explainer.explain_cached(&forest, &store).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn degraded_cached_artifact_is_bypassed_not_served() {
        let (dir, store) = tmp_store("degraded");
        let forest = train();
        let explainer = GefExplainer::new(quick_config());
        let model = forest.content_digest();
        let config = explainer.config().content_digest();

        // A well-formed artifact under the right key whose provenance
        // records a deadline soft-trip (as a pre-quality-gate writer
        // could have published): it must be bypassed, not served.
        let mut degraded = explainer.explain(&forest).unwrap();
        degraded.provenance.budget_outcome = "soft_tripped".to_string();
        store
            .put_explanation(model, config, degraded.to_json().as_bytes())
            .unwrap();

        let (exp, outcome) = explainer.explain_cached(&forest, &store).unwrap();
        assert!(matches!(outcome, CacheOutcome::Recovered(_)), "{outcome:?}");
        // Valid-but-degraded is not corruption: nothing is quarantined.
        assert!(store.quarantined().is_empty());
        assert_eq!(exp.provenance.budget_outcome, "unarmed");

        // The full-quality recompute overwrote it: next call hits and
        // serves the full artifact.
        let (exp, outcome) = explainer.explain_cached(&forest, &store).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(exp.provenance.budget_outcome, "unarmed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn degraded_run_is_not_published() {
        let (dir, store) = tmp_store("nopub");
        let forest = train();
        let explainer = GefExplainer::new(quick_config());
        let model = forest.content_digest();
        let config = explainer.config().content_digest();

        // An already-expired soft deadline (thread-scoped so parallel
        // tests are unaffected): the run soft-trips and degrades.
        {
            let budget = gef_trace::budget::Budget::armed(None, Some(std::time::Duration::ZERO));
            let _scope = budget.enter();
            let (exp, outcome) = explainer.explain_cached(&forest, &store).unwrap();
            assert_eq!(outcome, CacheOutcome::Miss);
            assert_eq!(exp.provenance.budget_outcome, "soft_tripped");
        }

        // The degraded run must not have been published: the next
        // (clean) request is a miss that publishes full quality, and
        // only then do hits begin.
        assert_eq!(store.get_explanation(model, config).unwrap(), None);
        let (exp, outcome) = explainer.explain_cached(&forest, &store).unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(exp.provenance.budget_outcome, "unarmed");
        let (exp, outcome) = explainer.explain_cached(&forest, &store).unwrap();
        assert_eq!(outcome, CacheOutcome::Hit);
        assert_eq!(exp.provenance.budget_outcome, "unarmed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_provenance_is_recovered_not_served() {
        let (dir, store) = tmp_store("wrongkey");
        let forest = train();
        let explainer = GefExplainer::new(quick_config());
        let model = forest.content_digest();
        let config = explainer.config().content_digest();

        // A real explanation produced under a DIFFERENT config, stored
        // under this key (as if a buggy writer cross-wired addresses):
        // the envelope and JSON are valid, but the embedded provenance
        // digests don't match the key — it must not be served.
        let other = GefExplainer::new(GefConfig {
            seed: 99,
            ..quick_config()
        });
        let foreign = other.explain(&forest).unwrap();
        store
            .put_explanation(model, config, foreign.to_json().as_bytes())
            .unwrap();
        let (exp, outcome) = explainer.explain_cached(&forest, &store).unwrap();
        assert!(matches!(outcome, CacheOutcome::Recovered(_)), "{outcome:?}");
        assert_eq!(store.quarantined().len(), 1);
        assert_eq!(exp.provenance.config_digest, to_hex(config));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
