//! Serializable explanation reports.
//!
//! [`ExplanationReport`] is a self-contained JSON-friendly summary of a
//! [`crate::GefExplanation`]: selected features, interaction ranking,
//! fidelity, and the component curves with credible bands. It is what a
//! certification authority would archive next to the audited model, and
//! what downstream plotting tools consume.

use crate::pipeline::{GefExplanation, Provenance, StageTimings};
use crate::recovery::Degradation;
use serde::{Deserialize, Serialize};

/// One univariate component curve.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CurvePoint {
    /// Feature value.
    pub x: f64,
    /// Centered component estimate.
    pub estimate: f64,
    /// Lower 95% credible bound.
    pub lo: f64,
    /// Upper 95% credible bound.
    pub hi: f64,
}

/// One selected feature with its curve.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct FeatureReport {
    /// Feature index in the model's input space.
    pub feature: usize,
    /// Feature name, when available.
    pub name: Option<String>,
    /// Accumulated forest gain (why it was selected).
    pub gain: f64,
    /// Whether it was modelled as a factor (categorical) term.
    pub categorical: bool,
    /// Term importance (sd of the component over `D*`).
    pub importance: f64,
    /// Component curve over the sampling domain.
    pub curve: Vec<CurvePoint>,
}

/// A ranked interaction candidate.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct InteractionReport {
    /// The feature pair.
    pub features: (usize, usize),
    /// Heuristic importance score.
    pub score: f64,
    /// Whether the pair was included as a tensor term.
    pub selected: bool,
}

/// Serializable summary of a GEF explanation.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ExplanationReport {
    /// Report format version.
    pub version: u32,
    /// Selected univariate features with their curves.
    pub features: Vec<FeatureReport>,
    /// Full interaction ranking.
    pub interactions: Vec<InteractionReport>,
    /// RMSE of the surrogate vs the forest on held-out `D*`.
    pub fidelity_rmse: f64,
    /// R² of the surrogate vs the forest on held-out `D*`.
    pub fidelity_r2: f64,
    /// Wall-clock spent in each pipeline stage (ns). Defaults to zero
    /// when parsing reports archived before this field existed.
    #[serde(default)]
    pub stage_timings: StageTimings,
    /// Graceful degradations applied while producing the explanation.
    /// An auditor reading the report can tell at a glance whether the
    /// fidelity numbers come from the full model or a degraded one.
    /// Defaults to empty for reports archived before the recovery
    /// ladder existed.
    #[serde(default)]
    pub degradations: Vec<Degradation>,
    /// Structured provenance of the producing run (config / forest /
    /// GAM digests, seed, threads, budget outcome). Defaults to the
    /// all-empty version-0 block for reports archived before provenance
    /// existed.
    #[serde(default)]
    pub provenance: Provenance,
}

impl ExplanationReport {
    /// Build a report from an explanation; `names` (if given) resolves
    /// feature indices to names, `grid` controls curve resolution.
    pub fn from_explanation(exp: &GefExplanation, names: Option<&[String]>, grid: usize) -> Self {
        let features = exp
            .selected_features
            .iter()
            .enumerate()
            .map(|(term, &f)| FeatureReport {
                feature: f,
                name: names.and_then(|n| n.get(f).cloned()),
                gain: exp.profile.gain(f),
                categorical: exp.categorical[term],
                importance: exp.gam.term_importance(term),
                curve: exp
                    .component_curve(f, grid)
                    .map(|c| {
                        c.into_iter()
                            .map(|(x, estimate, lo, hi)| CurvePoint {
                                x,
                                estimate,
                                lo,
                                hi,
                            })
                            .collect()
                    })
                    .unwrap_or_default(),
            })
            .collect();
        let interactions = exp
            .interaction_ranking
            .iter()
            .map(|&(pair, score)| InteractionReport {
                features: pair,
                score,
                selected: exp.interactions.contains(&pair),
            })
            .collect();
        ExplanationReport {
            version: 1,
            features,
            interactions,
            fidelity_rmse: exp.fidelity_rmse,
            fidelity_r2: exp.fidelity_r2,
            stage_timings: exp.telemetry,
            degradations: exp.degradations.clone(),
            provenance: exp.provenance.clone(),
        }
    }

    /// Serialize to pretty JSON.
    // Serialization of a plain-data struct cannot fail.
    #[allow(clippy::expect_used)]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }

    /// Parse a report back from JSON.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GefConfig, GefExplainer};
    use gef_forest::{GbdtParams, GbdtTrainer};

    fn explanation() -> GefExplanation {
        let xs: Vec<Vec<f64>> = (0..800)
            .map(|i| vec![(i % 53) as f64 / 53.0, (i % 29) as f64 / 29.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 - x[1]).collect();
        let forest = GbdtTrainer::new(GbdtParams {
            num_trees: 40,
            num_leaves: 8,
            learning_rate: 0.2,
            min_data_in_leaf: 5,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        GefExplainer::new(GefConfig {
            num_univariate: 2,
            num_interactions: 1,
            n_samples: 3000,
            ..Default::default()
        })
        .explain(&forest)
        .unwrap()
    }

    #[test]
    fn report_round_trips_through_json() {
        let exp = explanation();
        let names = vec!["alpha".to_string(), "beta".to_string()];
        let report = ExplanationReport::from_explanation(&exp, Some(&names), 11);
        let json = report.to_json();
        let parsed = ExplanationReport::from_json(&json).unwrap();
        assert_eq!(report, parsed);
    }

    #[test]
    fn report_contents_match_explanation() {
        let exp = explanation();
        let report = ExplanationReport::from_explanation(&exp, None, 11);
        assert_eq!(report.features.len(), exp.selected_features.len());
        assert_eq!(report.interactions.len(), exp.interaction_ranking.len());
        assert_eq!(report.fidelity_rmse, exp.fidelity_rmse);
        // Selected interactions are flagged.
        let n_selected = report.interactions.iter().filter(|i| i.selected).count();
        assert_eq!(n_selected, exp.interactions.len());
        // Curves have the requested resolution (continuous features).
        for f in &report.features {
            if !f.categorical {
                assert_eq!(f.curve.len(), 11);
            }
            assert!(f
                .curve
                .iter()
                .all(|p| p.lo <= p.estimate && p.estimate <= p.hi));
        }
        assert!(report.features[0].name.is_none());
        // Stage timings and degradations are carried over.
        assert_eq!(report.stage_timings, exp.telemetry);
        assert!(report.stage_timings.total_ns() > 0);
        assert_eq!(report.degradations, exp.degradations);
        assert!(
            report.degradations.is_empty(),
            "clean run should not degrade"
        );
        // Provenance is copied through verbatim.
        assert_eq!(report.provenance, exp.provenance);
        assert_eq!(report.provenance.schema_version, 1);
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(ExplanationReport::from_json("{").is_err());
        assert!(ExplanationReport::from_json("{}").is_err());
    }
}
