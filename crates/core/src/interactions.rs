//! Bi-variate component selection (paper Sec. 3.4).
//!
//! Candidate pairs are drawn from `F' × F'` (the *heredity principle*:
//! an interaction is considered only if both features are already main
//! effects). Four importance heuristics are provided, from cheapest to
//! most expensive:
//!
//! * **Pair-Gain** — `I(f_i, f_j) = I(f_i) + I(f_j)` from the
//!   univariate gains (a quick baseline);
//! * **Count-Path** — number of ancestor/descendant node pairs testing
//!   the two features on the same decision path, summed over trees;
//! * **Gain-Path** — the same paths weighted by `min(gain_a, gain_b)`;
//! * **H-Stat** — Friedman & Popescu's H statistic computed from
//!   partial-dependence functions estimated on a sample of `D*`
//!   (the only data-driven strategy, and the expensive one:
//!   `O(N·|F'|²)` forest evaluations versus `O(|T|)` for the others).

use crate::generate::SyntheticDataset;
use crate::selection::ForestProfile;
use crate::{GefError, Result};
use gef_forest::{Forest, Tree};
use std::collections::HashMap;

/// Strategy for ranking candidate feature interactions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InteractionStrategy {
    /// Sum of univariate gain importances.
    PairGain,
    /// Count of same-path node pairs.
    CountPath,
    /// Same-path node pairs weighted by the minimum node gain.
    GainPath,
    /// Friedman's H statistic estimated from a `D*` sample.
    HStat {
        /// Number of evaluation points (rows of `D*`).
        eval_points: usize,
        /// Number of background rows used for partial dependence.
        background: usize,
    },
}

impl InteractionStrategy {
    /// Human-readable name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            InteractionStrategy::PairGain => "Pair-Gain",
            InteractionStrategy::CountPath => "Count-Path",
            InteractionStrategy::GainPath => "Gain-Path",
            InteractionStrategy::HStat { .. } => "H-Stat",
        }
    }

    /// Default H-Stat configuration (100 eval points × 100 background
    /// rows, the ballpark of "a sample of `D*`").
    pub fn h_stat_default() -> Self {
        InteractionStrategy::HStat {
            eval_points: 100,
            background: 100,
        }
    }
}

/// Rank every unordered pair from `selected` by interaction importance,
/// descending. `data` is required for [`InteractionStrategy::HStat`].
pub fn rank_interactions(
    forest: &Forest,
    profile: &ForestProfile,
    selected: &[usize],
    strategy: InteractionStrategy,
    data: Option<&SyntheticDataset>,
) -> Result<Vec<((usize, usize), f64)>> {
    if selected.len() < 2 {
        return Ok(Vec::new());
    }
    let mut scores: Vec<((usize, usize), f64)> = match strategy {
        InteractionStrategy::PairGain => pairs_of(selected)
            .into_iter()
            .map(|(i, j)| ((i, j), profile.gain(i) + profile.gain(j)))
            .collect(),
        InteractionStrategy::CountPath => path_scores(forest, selected, |_, _| 1.0),
        InteractionStrategy::GainPath => path_scores(forest, selected, |ga, gb| ga.min(gb)),
        InteractionStrategy::HStat {
            eval_points,
            background,
        } => {
            let data = data.ok_or_else(|| {
                GefError::InvalidConfig("H-Stat requires a synthetic dataset sample".into())
            })?;
            if data.is_empty() {
                return Err(GefError::InvalidConfig(
                    "H-Stat requires a non-empty dataset".into(),
                ));
            }
            h_stat_scores(forest, selected, data, eval_points, background)
        }
    };
    scores.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    Ok(scores)
}

/// Keep the top-`k` pairs of a ranking (the paper's `F''`).
pub fn top_pairs(ranked: &[((usize, usize), f64)], k: usize) -> Vec<(usize, usize)> {
    ranked.iter().take(k).map(|&(p, _)| p).collect()
}

fn pairs_of(selected: &[usize]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (a, &i) in selected.iter().enumerate() {
        for &j in &selected[a + 1..] {
            out.push((i.min(j), i.max(j)));
        }
    }
    out
}

/// Shared skeleton for Count-Path / Gain-Path: accumulate `weight(gain_a,
/// gain_b)` over every ancestor/descendant pair of split nodes whose
/// features differ, restricted to the selected features.
fn path_scores(
    forest: &Forest,
    selected: &[usize],
    weight: impl Fn(f64, f64) -> f64,
) -> Vec<((usize, usize), f64)> {
    let in_sel: Vec<bool> = {
        let max_f = forest.num_features;
        let mut v = vec![false; max_f];
        for &f in selected {
            v[f] = true;
        }
        v
    };
    let mut acc: HashMap<(usize, usize), f64> = HashMap::new();
    for tree in &forest.trees {
        accumulate_tree(tree, &in_sel, &weight, &mut acc);
    }
    // Ensure every candidate pair appears (zero score when never
    // co-occurring).
    let mut out: Vec<((usize, usize), f64)> = pairs_of(selected)
        .into_iter()
        .map(|p| (p, acc.get(&p).copied().unwrap_or(0.0)))
        .collect();
    out.sort_by_key(|a| a.0);
    out
}

fn accumulate_tree(
    tree: &Tree,
    in_sel: &[bool],
    weight: &impl Fn(f64, f64) -> f64,
    acc: &mut HashMap<(usize, usize), f64>,
) {
    // DFS maintaining the stack of ancestor (feature, gain) pairs.
    fn rec(
        tree: &Tree,
        idx: usize,
        ancestors: &mut Vec<(usize, f64)>,
        in_sel: &[bool],
        weight: &impl Fn(f64, f64) -> f64,
        acc: &mut HashMap<(usize, usize), f64>,
    ) {
        let node = &tree.nodes[idx];
        if node.is_leaf() {
            return;
        }
        let f = node.feature as usize;
        if in_sel[f] {
            for &(af, ag) in ancestors.iter() {
                if af != f {
                    let key = (af.min(f), af.max(f));
                    *acc.entry(key).or_insert(0.0) += weight(ag, node.gain);
                }
            }
        }
        let push = in_sel[f];
        if push {
            ancestors.push((f, node.gain));
        }
        rec(tree, node.left as usize, ancestors, in_sel, weight, acc);
        rec(tree, node.right as usize, ancestors, in_sel, weight, acc);
        if push {
            ancestors.pop();
        }
    }
    let mut ancestors = Vec::with_capacity(32);
    rec(tree, 0, &mut ancestors, in_sel, weight, acc);
}

/// Friedman–Popescu H² for every candidate pair.
fn h_stat_scores(
    forest: &Forest,
    selected: &[usize],
    data: &SyntheticDataset,
    eval_points: usize,
    background: usize,
) -> Vec<((usize, usize), f64)> {
    let n = data.len();
    let e = eval_points.clamp(1, n);
    let b = background.clamp(1, n);
    let eval: &[Vec<f64>] = &data.xs[..e];
    // Use the tail of the dataset as background (disjoint when large
    // enough, harmlessly overlapping otherwise).
    let bg: &[Vec<f64>] = &data.xs[n - b..];

    // Univariate PD of each selected feature at the eval points.
    let mut pd_uni: HashMap<usize, Vec<f64>> = HashMap::new();
    let mut buf: Vec<Vec<f64>> = bg.to_vec();
    for &f in selected {
        let mut pd = Vec::with_capacity(e);
        for xk in eval {
            for (row, orig) in buf.iter_mut().zip(bg) {
                row.clone_from(orig);
                row[f] = xk[f];
            }
            let mean = buf.iter().map(|r| forest.predict_raw(r)).sum::<f64>() / b as f64;
            pd.push(mean);
        }
        center(&mut pd);
        pd_uni.insert(f, pd);
    }

    pairs_of(selected)
        .into_iter()
        .map(|(i, j)| {
            let mut pd_ij = Vec::with_capacity(e);
            for xk in eval {
                for (row, orig) in buf.iter_mut().zip(bg) {
                    row.clone_from(orig);
                    row[i] = xk[i];
                    row[j] = xk[j];
                }
                let mean = buf.iter().map(|r| forest.predict_raw(r)).sum::<f64>() / b as f64;
                pd_ij.push(mean);
            }
            center(&mut pd_ij);
            let pi = &pd_uni[&i];
            let pj = &pd_uni[&j];
            let mut num = 0.0;
            let mut den = 0.0;
            for k in 0..e {
                let d = pd_ij[k] - pi[k] - pj[k];
                num += d * d;
                den += pd_ij[k] * pd_ij[k];
            }
            let h2 = if den > 0.0 { num / den } else { 0.0 };
            ((i, j), h2)
        })
        .collect()
}

fn center(v: &mut [f64]) {
    let m = v.iter().sum::<f64>() / v.len() as f64;
    for x in v.iter_mut() {
        *x -= m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{build_domains, generate};
    use crate::sampling::SamplingStrategy;
    use gef_forest::{GbdtParams, GbdtTrainer};

    /// Forest on y = x0*x1 (strong interaction) + x2 (no interaction).
    fn interacting_forest() -> Forest {
        let mut state = 5u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let xs: Vec<Vec<f64>> = (0..1500).map(|_| vec![next(), next(), next()]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 4.0 * x[0] * x[1] + x[2]).collect();
        GbdtTrainer::new(GbdtParams {
            num_trees: 80,
            num_leaves: 16,
            learning_rate: 0.15,
            min_data_in_leaf: 5,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap()
    }

    fn ranked_with(strategy: InteractionStrategy) -> Vec<((usize, usize), f64)> {
        let f = interacting_forest();
        let profile = ForestProfile::analyze(&f);
        let selected = vec![0, 1, 2];
        let data = if matches!(strategy, InteractionStrategy::HStat { .. }) {
            let domains =
                build_domains(&profile, &selected, SamplingStrategy::AllThresholds).unwrap();
            Some(generate(&f, &domains, 400, true, 7).unwrap())
        } else {
            None
        };
        rank_interactions(&f, &profile, &selected, strategy, data.as_ref()).unwrap()
    }

    #[test]
    fn count_path_ranks_true_interaction_first() {
        let ranked = ranked_with(InteractionStrategy::CountPath);
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0].0, (0, 1), "ranked={ranked:?}");
        assert!(ranked[0].1 > ranked[2].1);
    }

    #[test]
    fn gain_path_ranks_true_interaction_first() {
        let ranked = ranked_with(InteractionStrategy::GainPath);
        assert_eq!(ranked[0].0, (0, 1), "ranked={ranked:?}");
    }

    #[test]
    fn h_stat_ranks_true_interaction_first() {
        let ranked = ranked_with(InteractionStrategy::h_stat_default());
        assert_eq!(ranked[0].0, (0, 1), "ranked={ranked:?}");
        // H² of the true pair well above the null pairs.
        assert!(
            ranked[0].1 > 3.0 * ranked[1].1.max(1e-9),
            "ranked={ranked:?}"
        );
    }

    #[test]
    fn pair_gain_is_sum_of_gains() {
        let f = interacting_forest();
        let profile = ForestProfile::analyze(&f);
        let ranked = rank_interactions(
            &f,
            &profile,
            &[0, 1, 2],
            InteractionStrategy::PairGain,
            None,
        )
        .unwrap();
        for &((i, j), s) in &ranked {
            assert!((s - (profile.gain(i) + profile.gain(j))).abs() < 1e-9);
        }
    }

    #[test]
    fn h_stat_without_data_errors() {
        let f = interacting_forest();
        let profile = ForestProfile::analyze(&f);
        let r = rank_interactions(
            &f,
            &profile,
            &[0, 1],
            InteractionStrategy::h_stat_default(),
            None,
        );
        assert!(r.is_err());
    }

    #[test]
    fn fewer_than_two_features_gives_empty() {
        let f = interacting_forest();
        let profile = ForestProfile::analyze(&f);
        let r =
            rank_interactions(&f, &profile, &[0], InteractionStrategy::CountPath, None).unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn top_pairs_takes_prefix() {
        let ranked = vec![((0, 1), 5.0), ((1, 2), 3.0), ((0, 2), 1.0)];
        assert_eq!(top_pairs(&ranked, 2), vec![(0, 1), (1, 2)]);
        assert_eq!(top_pairs(&ranked, 0), Vec::<(usize, usize)>::new());
        assert_eq!(top_pairs(&ranked, 99).len(), 3);
    }

    #[test]
    fn count_path_on_known_tree() {
        use gef_forest::tree::Node;
        // Root f0; left child f1 (with two leaf children); right leaf.
        // Ancestor/descendant pairs: (f0,f1) once.
        let tree = Tree {
            nodes: vec![
                Node::split(0, 0.5, 1, 2, 10.0, 100),
                Node::split(1, 0.3, 3, 4, 4.0, 60),
                Node::leaf(1.0, 40),
                Node::leaf(0.0, 30),
                Node::leaf(2.0, 30),
            ],
        };
        let forest = Forest::new(vec![tree], 0.0, 1.0, gef_forest::Objective::RegressionL2, 2);
        let profile = ForestProfile::analyze(&forest);
        let count = rank_interactions(
            &forest,
            &profile,
            &[0, 1],
            InteractionStrategy::CountPath,
            None,
        )
        .unwrap();
        assert_eq!(count, vec![((0, 1), 1.0)]);
        let gain = rank_interactions(
            &forest,
            &profile,
            &[0, 1],
            InteractionStrategy::GainPath,
            None,
        )
        .unwrap();
        assert_eq!(gain, vec![((0, 1), 4.0)]); // min(10, 4)
    }

    #[test]
    fn same_feature_pairs_excluded() {
        use gef_forest::tree::Node;
        // Root f0 with child also f0: contributes nothing.
        let tree = Tree {
            nodes: vec![
                Node::split(0, 0.5, 1, 2, 10.0, 100),
                Node::split(0, 0.25, 3, 4, 4.0, 60),
                Node::leaf(1.0, 40),
                Node::leaf(0.0, 30),
                Node::leaf(2.0, 30),
            ],
        };
        let forest = Forest::new(vec![tree], 0.0, 1.0, gef_forest::Objective::RegressionL2, 2);
        let profile = ForestProfile::analyze(&forest);
        let ranked = rank_interactions(
            &forest,
            &profile,
            &[0, 1],
            InteractionStrategy::CountPath,
            None,
        )
        .unwrap();
        assert_eq!(ranked, vec![((0, 1), 0.0)]);
    }
}
