//! Run budgets: wall-clock deadlines and size caps for one pipeline run.
//!
//! [`RunBudget`] is the `gef-core` facade over the always-compiled
//! primitive in [`gef_trace::budget`]. It reads the environment knobs,
//! and installs deadlines and iteration caps for the duration of a
//! scope in one of two ways:
//!
//! * [`RunBudget::enter`] (preferred) arms a **fresh scoped
//!   [`gef_trace::budget::Budget`]** on the calling thread — concurrent
//!   runs each hold their own deadline, which is how `gef-serve` gives
//!   every request an independent budget;
//! * [`RunBudget::arm`] (compatibility) arms the **process-global**
//!   budget, the pre-scoping behaviour the `xp_*` binaries drive.
//!
//! Both return RAII guards that disarm everything on drop.
//!
//! ## Environment knobs
//!
//! | variable | meaning |
//! |----------|---------|
//! | `GEF_DEADLINE_MS` | hard wall-clock deadline for the run; once passed, every cooperative checkpoint returns [`GefError::DeadlineExceeded`] |
//! | `GEF_SOFT_DEADLINE_MS` | soft deadline (budget pressure); the GAM recovery ladder descends one rung preemptively, recorded as a degradation. Defaults to 80% of the hard deadline when only that is set |
//! | `GEF_MAX_BOOST_ROUNDS` | cap on forest boosting rounds (0 = unlimited) |
//! | `GEF_MAX_PIRLS_ITERS` | cap on PIRLS iterations per GAM fit (0 = unlimited) |
//! | `GEF_MAX_DSTAR_ROWS` | cap on `D*` rows; a tighter-than-requested cap is recorded as a degradation, a cap below the fitting minimum (16) fails with [`GefError::BudgetExceeded`] |
//!
//! Invalid (unparseable) values are never fatal: the knob is ignored
//! through the shared [`gef_trace::env`] path — a warn-once stderr line
//! naming the raw value, an `env.invalid` flight-recorder note, and —
//! when telemetry is enabled — an `env.invalid` event.
//!
//! [`GefError::DeadlineExceeded`]: crate::GefError::DeadlineExceeded
//! [`GefError::BudgetExceeded`]: crate::GefError::BudgetExceeded

use std::time::Duration;

/// Declarative budget for one [`crate::GefExplainer::explain`] run.
///
/// Construct with [`RunBudget::from_env`] (production: driven by the
/// `GEF_*` variables above) or build one programmatically; then
/// [`RunBudget::arm`] it around the work it should bound.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Hard wall-clock deadline (None = unbounded).
    pub hard_deadline: Option<Duration>,
    /// Soft deadline: budget pressure, not an abort (None = unarmed).
    pub soft_deadline: Option<Duration>,
    /// Boosting-round cap for forest training (0 = unlimited).
    pub max_boost_rounds: u64,
    /// PIRLS-iteration cap per GAM fit (0 = unlimited).
    pub max_pirls_iters: u64,
    /// `D*` row cap (0 = unlimited).
    pub max_dstar_rows: usize,
}

use gef_trace::env::u64_var as env_u64;

impl RunBudget {
    /// An unlimited budget: nothing armed, nothing capped.
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// Whether this budget constrains anything at all.
    pub fn is_unlimited(&self) -> bool {
        *self == RunBudget::default()
    }

    /// Read the budget from the `GEF_*` environment knobs (see the
    /// module docs). Unset or invalid variables leave that limit off.
    pub fn from_env() -> Self {
        let hard_ms = env_u64("GEF_DEADLINE_MS").filter(|&ms| ms > 0);
        let soft_ms = env_u64("GEF_SOFT_DEADLINE_MS")
            .filter(|&ms| ms > 0)
            // With only a hard deadline set, arm soft pressure at 80%
            // of it so the ladder starts cutting cost before the abort.
            .or(hard_ms.map(|ms| ms.saturating_mul(4) / 5));
        RunBudget {
            hard_deadline: hard_ms.map(Duration::from_millis),
            soft_deadline: soft_ms.map(Duration::from_millis),
            max_boost_rounds: env_u64("GEF_MAX_BOOST_ROUNDS").unwrap_or(0),
            max_pirls_iters: env_u64("GEF_MAX_PIRLS_ITERS").unwrap_or(0),
            max_dstar_rows: env_u64("GEF_MAX_DSTAR_ROWS").unwrap_or(0) as usize,
        }
    }

    /// Arm the process-global budget with this run's deadlines and
    /// iteration caps. Everything disarms (and any pending cancellation
    /// clears) when the returned guard drops.
    ///
    /// This is the compatibility path: concurrent runs share the one
    /// global budget. Anything serving requests in parallel must use
    /// [`RunBudget::enter`] instead.
    #[must_use = "the budget disarms when this guard drops"]
    pub fn arm(&self) -> gef_trace::budget::BudgetGuard {
        gef_trace::budget::set_boost_round_cap(self.max_boost_rounds);
        gef_trace::budget::set_pirls_iter_cap(self.max_pirls_iters);
        gef_trace::budget::scoped(self.hard_deadline, self.soft_deadline)
    }

    /// Arm a **fresh scoped budget** on the calling thread: deadlines
    /// and caps bind this thread (and any gef-par regions it
    /// dispatches) only, leaving the process-global budget and other
    /// threads untouched. This is how `gef-serve` gives each request an
    /// independent deadline. Dropping the guard leaves the scope —
    /// including on early-error paths, so a failed phase can never leak
    /// a stale deadline into the next one.
    #[must_use = "the budget leaves scope when this guard drops"]
    pub fn enter(&self) -> ScopedBudget {
        let budget = gef_trace::budget::Budget::armed(self.hard_deadline, self.soft_deadline);
        budget.set_boost_round_cap(self.max_boost_rounds);
        budget.set_pirls_iter_cap(self.max_pirls_iters);
        let scope = budget.enter();
        ScopedBudget {
            budget,
            _scope: scope,
        }
    }
}

/// RAII scope from [`RunBudget::enter`]: while held, every cooperative
/// checkpoint on this thread resolves to this run's own budget. The
/// scope pops on drop; [`ScopedBudget::budget`] exposes the underlying
/// clonable handle (e.g. to cancel the run from another thread).
#[must_use = "the budget leaves scope when this guard drops"]
pub struct ScopedBudget {
    budget: gef_trace::budget::Budget,
    _scope: gef_trace::budget::BudgetScope,
}

impl ScopedBudget {
    /// The underlying budget handle; clones share state, so a clone
    /// handed to another thread can observe or cancel this run.
    pub fn budget(&self) -> &gef_trace::budget::Budget {
        &self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // Env vars and the global budget are process-wide; serialise.
    static LOCK: Mutex<()> = Mutex::new(());

    const VARS: [&str; 5] = [
        "GEF_DEADLINE_MS",
        "GEF_SOFT_DEADLINE_MS",
        "GEF_MAX_BOOST_ROUNDS",
        "GEF_MAX_PIRLS_ITERS",
        "GEF_MAX_DSTAR_ROWS",
    ];

    fn with_env<T>(pairs: &[(&str, &str)], f: impl FnOnce() -> T) -> T {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for v in VARS {
            std::env::remove_var(v);
        }
        for (k, v) in pairs {
            std::env::set_var(k, v);
        }
        let out = f();
        for v in VARS {
            std::env::remove_var(v);
        }
        gef_trace::budget::reset();
        out
    }

    #[test]
    fn empty_env_is_unlimited() {
        with_env(&[], || {
            let b = RunBudget::from_env();
            assert!(b.is_unlimited());
            let _guard = b.arm();
            assert!(!gef_trace::budget::hard_exceeded());
            assert!(!gef_trace::budget::soft_exceeded());
        });
    }

    #[test]
    fn soft_deadline_defaults_to_fraction_of_hard() {
        with_env(&[("GEF_DEADLINE_MS", "1000")], || {
            let b = RunBudget::from_env();
            assert_eq!(b.hard_deadline, Some(Duration::from_millis(1000)));
            assert_eq!(b.soft_deadline, Some(Duration::from_millis(800)));
        });
    }

    #[test]
    fn explicit_soft_deadline_wins() {
        with_env(
            &[("GEF_DEADLINE_MS", "1000"), ("GEF_SOFT_DEADLINE_MS", "100")],
            || {
                let b = RunBudget::from_env();
                assert_eq!(b.soft_deadline, Some(Duration::from_millis(100)));
            },
        );
    }

    #[test]
    fn invalid_values_are_ignored_not_fatal() {
        with_env(
            &[
                ("GEF_DEADLINE_MS", "soon"),
                ("GEF_MAX_BOOST_ROUNDS", "-3"),
                ("GEF_MAX_PIRLS_ITERS", "7"),
            ],
            || {
                let b = RunBudget::from_env();
                assert_eq!(b.hard_deadline, None);
                assert_eq!(b.max_boost_rounds, 0);
                assert_eq!(b.max_pirls_iters, 7);
                // The rejection leaves a flight-recorder note naming
                // the raw value, so incident dumps show what the
                // operator actually typed.
                let notes: Vec<String> = gef_trace::recorder::snapshot_last(usize::MAX)
                    .into_iter()
                    .filter(|r| r.name == "env.invalid")
                    .filter_map(|r| r.detail)
                    .collect();
                assert!(
                    notes
                        .iter()
                        .any(|d| d.contains("GEF_DEADLINE_MS") && d.contains("soon")),
                    "no recorder note names the rejected value: {notes:?}"
                );
            },
        );
    }

    #[test]
    fn arm_installs_caps_and_deadlines() {
        with_env(&[], || {
            // A generous deadline: sibling lib tests share the process
            // global, so never arm a tripping deadline here (trip
            // semantics are covered by gef-trace's own tests and the
            // deadline integration tests).
            let b = RunBudget {
                hard_deadline: Some(Duration::from_secs(3600)),
                soft_deadline: None,
                max_boost_rounds: 5,
                max_pirls_iters: 2,
                max_dstar_rows: 100,
            };
            {
                let _guard = b.arm();
                assert!(gef_trace::budget::active());
                assert!(!gef_trace::budget::hard_exceeded());
                assert_eq!(gef_trace::budget::boost_round_cap(), 5);
                assert_eq!(gef_trace::budget::pirls_iter_cap(), 2);
            }
            assert!(!gef_trace::budget::active(), "guard drop disarms");
            // Caps outlive the guard by design (they are process config,
            // not per-run state) — clear them for the other tests.
            gef_trace::budget::set_boost_round_cap(0);
            gef_trace::budget::set_pirls_iter_cap(0);
        });
    }

    #[test]
    fn enter_scopes_budget_to_this_thread_only() {
        with_env(&[], || {
            let b = RunBudget {
                hard_deadline: Some(Duration::ZERO),
                soft_deadline: None,
                max_boost_rounds: 4,
                max_pirls_iters: 0,
                max_dstar_rows: 0,
            };
            {
                let scope = b.enter();
                assert!(gef_trace::budget::hard_exceeded(), "own deadline trips");
                assert_eq!(gef_trace::budget::boost_round_cap(), 4);
                assert!(scope.budget().hard_tripped());
                // The process-global budget saw none of it.
                let global_clean = std::thread::spawn(|| {
                    !gef_trace::budget::active() && !gef_trace::budget::hard_exceeded()
                })
                .join()
                .unwrap();
                assert!(global_clean, "global budget stays unarmed");
            }
            assert!(!gef_trace::budget::active(), "scope drop restores global");
        });
    }
}
