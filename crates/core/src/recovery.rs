//! Graceful-degradation ladder around the GAM-fit stage.
//!
//! A production explainer must degrade predictably instead of failing
//! outright when one term of the surrogate is numerically hostile (a
//! near-singular tensor on a skewed domain, PIRLS divergence on
//! near-separable labels, an all-non-finite GCV grid). When the fit of
//! the full specification fails with a *retryable* error (see
//! [`gef_gam::GamError::is_retryable`]) — or succeeds but produces
//! non-finite held-out fidelity — `fit_with_recovery` (crate-internal)
//! retries with
//! progressively simpler specifications:
//!
//! 1. **full** — the requested specification, unmodified;
//! 2. **drop worst tensor** — remove the tensor term with the least
//!    anchor slack (fewest distinct anchor points relative to its basis
//!    size), the usual conditioning culprit;
//! 3. **shrink bases** — halve every spline basis (floor 4, tensor
//!    margins included), trading resolution for conditioning;
//! 4. **widen λ grid** — rescan GCV over `[1e-8, 1e8]` so much heavier
//!    smoothing becomes reachable;
//! 5. **univariate only** — drop all remaining tensor terms;
//! 6. **linear surrogate** — last resort: degree-1, two-basis splines
//!    (straight lines) per continuous feature, factors kept.
//!
//! Every step taken is recorded as a [`Degradation`] — **never
//! silently** — on the returned explanation, emitted as a `gef_trace`
//! event, and counted under `pipeline.degradations`. The ladder also
//! publishes its attempt index via [`gef_trace::fault::set_stage`], so
//! fault-injection tests can make exactly the first *r* rungs fail with
//! `Trigger::StageBelow(r)`.

use crate::{GefError, Result};
use gef_data::metrics;
use gef_gam::{fit, Gam, GamSpec, LambdaSelection, TermSpec};
use serde::{Deserialize, Serialize};

/// A **preemptive** lower bound on the surrogate's complexity: where
/// the fit *starts*, not where it may end up. The recovery ladder
/// reaches the same rungs reactively (after failed attempts); a fit
/// floor jumps there up front, skipping the cost of the richer spec
/// entirely. This is the load-shedding hook `gef-serve` arms as queue
/// depth rises (serve a cheaper explanation instead of a 503) and its
/// circuit breaker trips to after repeated fit failures.
///
/// Any floor below [`FitFloor::Full`] is recorded as a [`Degradation`]
/// on the returned explanation — preemptive degradation is still
/// degradation, never silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FitFloor {
    /// No floor: the full requested specification (tensors included).
    #[default]
    Full,
    /// Skip interaction ranking and tensor terms; univariate smooths
    /// only (the ladder's rung 5 entered preemptively).
    UnivariateOnly,
    /// Straight lines per continuous feature, factors kept — the
    /// ladder's last rung, and the cheapest explanation that is still
    /// an explanation.
    LinearSurrogate,
}

impl FitFloor {
    /// Short machine-readable label (telemetry, server stats).
    pub fn label(&self) -> &'static str {
        match self {
            FitFloor::Full => "full",
            FitFloor::UnivariateOnly => "univariate_only",
            FitFloor::LinearSurrogate => "linear_surrogate",
        }
    }
}

/// What one recovery (or input-hardening) step did to the pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DegradationAction {
    /// Removed the worst-conditioned tensor term.
    DroppedTensor {
        /// The feature pair of the removed term.
        features: (usize, usize),
    },
    /// Halved every spline basis (floor 4).
    ShrunkBases {
        /// Largest univariate basis size after shrinking.
        spline_basis: usize,
        /// Largest tensor margin basis size after shrinking.
        tensor_basis: usize,
    },
    /// Replaced the λ grid with a much wider one.
    WidenedLambdaGrid {
        /// Low end of the new grid.
        lo: f64,
        /// High end of the new grid.
        hi: f64,
    },
    /// Dropped every remaining tensor term.
    UnivariateOnly,
    /// Replaced all smooths with straight lines (factors kept).
    LinearSurrogate,
    /// Removed `D*` rows whose forest label was NaN or infinite.
    ScrubbedNonFiniteLabels {
        /// Rows removed.
        removed: usize,
        /// Rows before scrubbing.
        total: usize,
    },
    /// A selected feature's sampling domain collapsed (< 2 points);
    /// fell back to its All-Thresholds domain.
    DomainFallback {
        /// The affected feature.
        feature: usize,
    },
    /// The `GEF_MAX_DSTAR_ROWS` budget capped `D*` below the requested
    /// size.
    CappedDstarRows {
        /// Rows the configuration asked for.
        requested: usize,
        /// Rows actually generated.
        capped: usize,
    },
}

impl DegradationAction {
    /// Short machine-readable label (used in reports and telemetry).
    pub fn label(&self) -> &'static str {
        match self {
            DegradationAction::DroppedTensor { .. } => "dropped_tensor",
            DegradationAction::ShrunkBases { .. } => "shrunk_bases",
            DegradationAction::WidenedLambdaGrid { .. } => "widened_lambda_grid",
            DegradationAction::UnivariateOnly => "univariate_only",
            DegradationAction::LinearSurrogate => "linear_surrogate",
            DegradationAction::ScrubbedNonFiniteLabels { .. } => "scrubbed_non_finite_labels",
            DegradationAction::DomainFallback { .. } => "domain_fallback",
            DegradationAction::CappedDstarRows { .. } => "capped_dstar_rows",
        }
    }
}

/// One recorded degradation: which stage gave up what, and why.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Degradation {
    /// Pipeline stage that degraded (`sampling`, `labeling`, `gam_fit`).
    pub stage: String,
    /// What was changed.
    pub action: DegradationAction,
    /// Human-readable cause (the error or anomaly that triggered it).
    pub cause: String,
}

impl Degradation {
    /// Record a degradation: push it and emit the matching telemetry.
    pub(crate) fn record(
        list: &mut Vec<Degradation>,
        stage: &str,
        action: DegradationAction,
        cause: String,
    ) {
        if gef_trace::enabled() {
            gef_trace::counter!("pipeline.degradations").incr();
            gef_trace::global().event(
                "pipeline.degradation",
                &[("count", (list.len() + 1) as f64)],
            );
        }
        // Always leave a breadcrumb in the flight recorder (independent
        // of GEF_TRACE) so incident dumps carry the ladder history.
        gef_trace::recorder::note(
            gef_trace::recorder::Kind::Degradation,
            action.label(),
            &format!("{stage}: {cause}"),
        );
        list.push(Degradation {
            stage: stage.to_string(),
            action,
            cause,
        });
    }
}

/// Anchor slack of a tensor term: how many more distinct anchor points
/// than basis functions its tightest margin has. Small (or negative)
/// slack means the penalized system is at risk of near-singularity —
/// that tensor is dropped first.
fn tensor_slack(term: &TermSpec) -> i64 {
    match term {
        TermSpec::TensorAnchored {
            num_basis, anchors, ..
        } => {
            let a = anchors.0.len() as i64 - num_basis.0 as i64;
            let b = anchors.1.len() as i64 - num_basis.1 as i64;
            a.min(b)
        }
        // Range-based tensors carry no anchor information; treat them
        // as moderately conditioned.
        TermSpec::Tensor { .. } => i64::MAX / 2,
        _ => i64::MAX,
    }
}

fn is_tensor(term: &TermSpec) -> bool {
    matches!(
        term,
        TermSpec::Tensor { .. } | TermSpec::TensorAnchored { .. }
    )
}

fn tensor_features(term: &TermSpec) -> (usize, usize) {
    match term {
        TermSpec::Tensor { features, .. } | TermSpec::TensorAnchored { features, .. } => *features,
        _ => (0, 0),
    }
}

/// Drop the tensor term with the smallest anchor slack. Returns the
/// simplified spec and the dropped pair, or `None` if no tensor exists.
fn drop_worst_tensor(spec: &GamSpec) -> Option<(GamSpec, (usize, usize))> {
    let worst = spec
        .terms
        .iter()
        .enumerate()
        .filter(|(_, t)| is_tensor(t))
        .min_by_key(|(_, t)| tensor_slack(t))?;
    let (idx, features) = (worst.0, tensor_features(worst.1));
    let mut out = spec.clone();
    out.terms.remove(idx);
    Some((out, features))
}

/// Halve every spline basis (floor 4, the cubic B-spline order).
/// Returns the simplified spec and the resulting largest basis sizes,
/// or `None` if nothing shrank.
fn shrink_bases(spec: &GamSpec) -> Option<(GamSpec, usize, usize)> {
    let mut out = spec.clone();
    let mut changed = false;
    let (mut max_spline, mut max_tensor) = (0usize, 0usize);
    let halve = |k: usize, changed: &mut bool| {
        let h = (k / 2).max(4);
        if h < k {
            *changed = true;
        }
        h
    };
    for term in &mut out.terms {
        match term {
            TermSpec::Spline { num_basis, .. } | TermSpec::SplineAnchored { num_basis, .. } => {
                *num_basis = halve(*num_basis, &mut changed);
                max_spline = max_spline.max(*num_basis);
            }
            TermSpec::Tensor { num_basis, .. } | TermSpec::TensorAnchored { num_basis, .. } => {
                num_basis.0 = halve(num_basis.0, &mut changed);
                num_basis.1 = halve(num_basis.1, &mut changed);
                max_tensor = max_tensor.max(num_basis.0).max(num_basis.1);
            }
            TermSpec::Factor { .. } => {}
        }
    }
    changed.then_some((out, max_spline, max_tensor))
}

/// Bounds of the widened λ grid (vs the default `[1e-4, 1e4]`).
const WIDE_LAMBDA: (f64, f64, usize) = (1e-8, 1e8, 17);

/// Rescan GCV over a much wider λ grid.
fn widen_lambda(spec: &GamSpec) -> GamSpec {
    let (lo, hi, n) = WIDE_LAMBDA;
    let mut out = spec.clone();
    out.lambda = LambdaSelection::GcvGrid(gef_linalg::stats::logspace(lo, hi, n));
    out
}

/// Drop every tensor term. Returns `None` if there is none left.
fn univariate_only(spec: &GamSpec) -> Option<GamSpec> {
    if !spec.terms.iter().any(is_tensor) {
        return None;
    }
    let mut out = spec.clone();
    out.terms.retain(|t| !is_tensor(t));
    Some(out)
}

/// Last resort: straight lines (degree-1, two-basis splines) for every
/// continuous feature; factor terms kept; tensors dropped. Also the
/// [`FitFloor::LinearSurrogate`] entry point, so the pipeline can jump
/// here preemptively.
pub(crate) fn linear_surrogate(spec: &GamSpec) -> GamSpec {
    let mut out = spec.clone();
    let mut terms = Vec::with_capacity(out.terms.len());
    for term in &out.terms {
        match term {
            TermSpec::Factor { .. } => terms.push(term.clone()),
            TermSpec::Spline { feature, range, .. } => terms.push(TermSpec::Spline {
                feature: *feature,
                num_basis: 2,
                degree: 1,
                range: *range,
            }),
            TermSpec::SplineAnchored {
                feature, anchors, ..
            } => {
                let (lo, hi) = (
                    anchors.first().copied().unwrap_or(0.0),
                    anchors.last().copied().unwrap_or(1.0),
                );
                if hi > lo {
                    terms.push(TermSpec::Spline {
                        feature: *feature,
                        num_basis: 2,
                        degree: 1,
                        range: (lo, hi),
                    });
                } else {
                    // Degenerate single-point domain: a one-level factor
                    // (a constant offset) is the only sane term left.
                    terms.push(TermSpec::Factor {
                        feature: *feature,
                        levels: vec![lo],
                    });
                }
            }
            TermSpec::Tensor { .. } | TermSpec::TensorAnchored { .. } => {}
        }
    }
    out.terms = terms;
    out
}

/// Why one fit attempt failed: descend the ladder, or abort typed.
enum AttemptFailure {
    /// Abort now with this error — budget trips and worker panics keep
    /// their typed identity; non-retryable data/spec errors stop the
    /// ladder immediately.
    Fatal(GefError),
    /// Numerically hostile but worth retrying on a simpler spec.
    Retryable(String),
}

/// One fit attempt: fit on the train split, score fidelity on the test
/// split with the checked metrics, and fail retryably when the score is
/// not a real number.
fn attempt(
    spec: &GamSpec,
    train: (&[Vec<f64>], &[f64]),
    test: (&[Vec<f64>], &[f64]),
) -> std::result::Result<(Gam, f64, f64), AttemptFailure> {
    use gef_gam::GamError;
    let gam = match fit(spec, train.0, train.1) {
        Ok(g) => g,
        Err(e @ (GamError::DeadlineExceeded { .. } | GamError::WorkerPanicked(_))) => {
            return Err(AttemptFailure::Fatal(e.into()))
        }
        Err(e) if e.is_retryable() => return Err(AttemptFailure::Retryable(e.to_string())),
        Err(e) => {
            return Err(AttemptFailure::Fatal(GefError::Gam(GamError::InvalidData(
                e.to_string(),
            ))))
        }
    };
    let preds = gam.predict_batch(test.0);
    let rmse = metrics::try_rmse(&preds, test.1)
        .map_err(|e| AttemptFailure::Retryable(format!("non-finite fidelity: {e}")))?;
    let r2 = metrics::try_r2(&preds, test.1)
        .map_err(|e| AttemptFailure::Retryable(format!("non-finite fidelity: {e}")))?;
    Ok((gam, rmse, r2))
}

/// Advance `rung` to the next *applicable* simplification of `current`
/// and return the simplified spec with its degradation action. Rungs
/// that would not change the spec (no tensor to drop, nothing left to
/// shrink) are skipped; `None` means the ladder is exhausted.
fn next_rung(current: &GamSpec, rung: &mut usize) -> Option<(GamSpec, DegradationAction)> {
    loop {
        *rung += 1;
        match *rung {
            1 => {
                if let Some((next, features)) = drop_worst_tensor(current) {
                    return Some((next, DegradationAction::DroppedTensor { features }));
                }
            }
            2 => {
                if let Some((next, sb, tb)) = shrink_bases(current) {
                    return Some((
                        next,
                        DegradationAction::ShrunkBases {
                            spline_basis: sb,
                            tensor_basis: tb,
                        },
                    ));
                }
            }
            3 => {
                return Some((
                    widen_lambda(current),
                    DegradationAction::WidenedLambdaGrid {
                        lo: WIDE_LAMBDA.0,
                        hi: WIDE_LAMBDA.1,
                    },
                ));
            }
            4 => {
                if let Some(next) = univariate_only(current) {
                    return Some((next, DegradationAction::UnivariateOnly));
                }
            }
            5 => {
                return Some((
                    linear_surrogate(current),
                    DegradationAction::LinearSurrogate,
                ));
            }
            _ => return None,
        }
    }
}

/// Fit `spec`, descending the degradation ladder on retryable failure.
///
/// On success returns the fitted GAM with its held-out fidelity
/// `(rmse, r2)`; every rung descended is appended to `degradations`.
/// Non-retryable errors (bad data, bad spec) abort immediately; an
/// exhausted ladder returns [`GefError::RecoveryExhausted`].
pub(crate) fn fit_with_recovery(
    spec: &GamSpec,
    train: (&[Vec<f64>], &[f64]),
    test: (&[Vec<f64>], &[f64]),
    degradations: &mut Vec<Degradation>,
) -> Result<(Gam, f64, f64)> {
    let mut current = spec.clone();
    // Ladder rung currently being *prepared* (0 = full spec). Rungs
    // that would not change the spec (no tensor to drop, nothing to
    // shrink) are skipped without counting as attempts.
    let mut rung = 0usize;
    let mut attempts = 0usize;
    // Soft-deadline pressure descends the ladder preemptively, at most
    // once per run: trade resolution for time *before* the hard
    // deadline forces an abort.
    let mut soft_stepped = false;
    loop {
        // Attempt-boundary checkpoints: the hard deadline aborts typed,
        // the soft one steers the next attempt to a cheaper spec.
        if gef_trace::budget::hard_exceeded() {
            gef_trace::fault::set_stage(0);
            return Err(GefError::DeadlineExceeded { at: "gam_fit" });
        }
        if !soft_stepped && gef_trace::budget::soft_exceeded() {
            soft_stepped = true;
            if let Some((next, action)) = next_rung(&current, &mut rung) {
                if gef_trace::enabled() {
                    gef_trace::global().event("pipeline.soft_deadline", &[("rung", rung as f64)]);
                }
                Degradation::record(
                    degradations,
                    "gam_fit",
                    action,
                    "soft deadline exceeded; descending to a cheaper spec preemptively".into(),
                );
                current = next;
            }
        }
        gef_trace::fault::set_stage(attempts as u32);
        let _span = gef_trace::Span::enter("pipeline.fit_attempt");
        match attempt(&current, train, test) {
            Ok(out) => {
                gef_trace::fault::set_stage(0);
                return Ok(out);
            }
            Err(AttemptFailure::Fatal(e)) => {
                gef_trace::fault::set_stage(0);
                return Err(e);
            }
            Err(AttemptFailure::Retryable(cause)) => {
                attempts += 1;
                let Some((next, action)) = next_rung(&current, &mut rung) else {
                    gef_trace::fault::set_stage(0);
                    return Err(GefError::RecoveryExhausted {
                        attempts,
                        last: cause,
                    });
                };
                Degradation::record(degradations, "gam_fit", action, cause);
                current = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gef_gam::Link;

    fn base_spec() -> GamSpec {
        let anchors: Vec<f64> = (0..30).map(|i| i as f64 / 29.0).collect();
        GamSpec {
            terms: vec![
                TermSpec::SplineAnchored {
                    feature: 0,
                    num_basis: 12,
                    degree: 3,
                    anchors: anchors.clone(),
                },
                TermSpec::SplineAnchored {
                    feature: 1,
                    num_basis: 12,
                    degree: 3,
                    anchors: anchors.clone(),
                },
                TermSpec::TensorAnchored {
                    features: (0, 1),
                    num_basis: (6, 6),
                    anchors: (anchors.clone(), anchors.clone()),
                    degree: 3,
                },
                TermSpec::TensorAnchored {
                    features: (0, 1),
                    num_basis: (8, 8),
                    anchors: (anchors[..10].to_vec(), anchors[..10].to_vec()),
                    degree: 3,
                },
            ],
            link: Link::Identity,
            lambda: LambdaSelection::default(),
            penalty_order: 2,
            max_pirls_iter: 25,
            tol: 1e-8,
        }
    }

    #[test]
    fn drops_least_slack_tensor_first() {
        let spec = base_spec();
        // Second tensor: 10 anchors vs 8 basis functions (slack 2); the
        // first has 30 vs 6 (slack 24). The tight one must go first.
        let (next, features) = drop_worst_tensor(&spec).unwrap();
        assert_eq!(features, (0, 1));
        assert_eq!(next.terms.len(), 3);
        assert!(next.terms.iter().any(|t| matches!(
            t,
            TermSpec::TensorAnchored {
                num_basis: (6, 6),
                ..
            }
        )));
        assert!(!next.terms.iter().any(|t| matches!(
            t,
            TermSpec::TensorAnchored {
                num_basis: (8, 8),
                ..
            }
        )));
    }

    #[test]
    fn shrinking_halves_with_floor_four() {
        let (next, sb, tb) = shrink_bases(&base_spec()).unwrap();
        assert_eq!(sb, 6); // 12 → 6
        assert_eq!(tb, 4); // 8 → 4, 6 → 4 (floored)
                           // A fully shrunk spec (everything at the floor) has nothing
                           // left to shrink.
        let again = shrink_bases(&next).and_then(|(s, _, _)| shrink_bases(&s));
        assert!(again.is_none());
    }

    #[test]
    fn univariate_only_strips_tensors() {
        let next = univariate_only(&base_spec()).unwrap();
        assert_eq!(next.terms.len(), 2);
        assert!(univariate_only(&next).is_none());
    }

    #[test]
    fn linear_surrogate_uses_straight_lines() {
        let lin = linear_surrogate(&base_spec());
        assert_eq!(lin.terms.len(), 2);
        for t in &lin.terms {
            assert!(matches!(
                t,
                TermSpec::Spline {
                    num_basis: 2,
                    degree: 1,
                    ..
                }
            ));
        }
    }

    #[test]
    fn widened_grid_covers_heavier_smoothing() {
        let wide = widen_lambda(&base_spec());
        let LambdaSelection::GcvGrid(g) = &wide.lambda else {
            panic!("expected a grid");
        };
        assert_eq!(g.len(), WIDE_LAMBDA.2);
        assert!(g[0] <= 1e-8 * 1.01);
        assert!(g[g.len() - 1] >= 1e8 * 0.99);
    }

    #[test]
    fn clean_fit_records_no_degradations() {
        let xs: Vec<Vec<f64>> = (0..400)
            .map(|i| vec![(i % 31) as f64 / 31.0, (i % 17) as f64 / 17.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0 - x[1]).collect();
        let spec = GamSpec::regression(vec![
            TermSpec::spline(0, (0.0, 1.0)),
            TermSpec::spline(1, (0.0, 1.0)),
        ]);
        let mut degradations = Vec::new();
        let (gam, rmse, r2) = fit_with_recovery(
            &spec,
            (&xs[..300], &ys[..300]),
            (&xs[300..], &ys[300..]),
            &mut degradations,
        )
        .unwrap();
        assert!(degradations.is_empty());
        assert!(rmse.is_finite() && r2.is_finite());
        assert!(gam.num_terms() == 2);
    }
}
