//! The end-to-end GEF pipeline and its explanation artifacts.
//!
//! [`GefExplainer::explain`] runs the paper's full procedure on a
//! forest (feature selection → sampling → `D*` generation → interaction
//! selection → GAM fit) and returns a [`GefExplanation`], which serves
//! both as a **global** explanation (component curves with Bayesian
//! credible bands, term importances) and a **local** one
//! ([`GefExplanation::local`]: per-feature additive contributions for a
//! specific instance, with the spline context that shows how the
//! prediction would move under small changes of each feature — the
//! capability the paper contrasts against SHAP and LIME).

use crate::budget::RunBudget;
use crate::generate::{generate, SyntheticDataset};
use crate::incident::{self, IncidentContext};
use crate::interactions::{rank_interactions, top_pairs, InteractionStrategy};
use crate::recovery::{self, fit_with_recovery, Degradation, DegradationAction, FitFloor};
use crate::sampling::SamplingStrategy;
use crate::selection::{ForestProfile, DEFAULT_CATEGORICAL_L};
use crate::{GefError, Result};
use gef_forest::{Forest, Objective};
use gef_gam::{Gam, GamSpec, LambdaSelection, Link, TermSpec};
use serde::{Deserialize, Serialize};

/// Configuration of the GEF pipeline.
#[derive(Debug, Clone)]
pub struct GefConfig {
    /// Number of univariate components `|F'|`.
    pub num_univariate: usize,
    /// Number of bivariate components `|F''|`.
    pub num_interactions: usize,
    /// Sampling-domain strategy for the selected features.
    pub sampling: SamplingStrategy,
    /// Interaction-ranking heuristic.
    pub interaction_strategy: InteractionStrategy,
    /// Number of synthetic instances `N` in `D*`.
    pub n_samples: usize,
    /// Fraction of `D*` used for fitting (the rest measures fidelity).
    pub train_fraction: f64,
    /// Categorical-detection threshold `L` (paper: 10).
    pub categorical_l: usize,
    /// B-spline basis size per univariate term.
    pub spline_basis: usize,
    /// B-spline basis size per tensor margin.
    pub tensor_basis: usize,
    /// Smoothing-parameter selection for the GAM.
    pub lambda: LambdaSelection,
    /// Preemptive lower bound on surrogate complexity (load shedding):
    /// any floor below [`FitFloor::Full`] skips the richer spec up
    /// front and is recorded as a degradation. See [`FitFloor`].
    pub fit_floor: FitFloor,
    /// RNG seed for `D*` sampling.
    pub seed: u64,
}

impl Default for GefConfig {
    fn default() -> Self {
        GefConfig {
            num_univariate: 5,
            num_interactions: 0,
            sampling: SamplingStrategy::AllThresholds,
            interaction_strategy: InteractionStrategy::GainPath,
            n_samples: 20_000,
            train_fraction: 0.8,
            categorical_l: DEFAULT_CATEGORICAL_L,
            spline_basis: 20,
            tensor_basis: 8,
            lambda: LambdaSelection::default(),
            fit_floor: FitFloor::Full,
            seed: 0,
        }
    }
}

impl GefConfig {
    fn validate(&self) -> Result<()> {
        if self.num_univariate == 0 {
            return Err(GefError::InvalidConfig(
                "num_univariate must be >= 1".into(),
            ));
        }
        if self.n_samples < 16 {
            return Err(GefError::InvalidConfig("n_samples must be >= 16".into()));
        }
        if !(self.train_fraction > 0.0 && self.train_fraction < 1.0) {
            return Err(GefError::InvalidConfig(
                "train_fraction must be in (0,1)".into(),
            ));
        }
        // Cubic B-splines (degree 3) need at least order = degree + 1
        // basis functions; anything smaller cannot even represent a
        // single polynomial piece.
        if self.spline_basis < 4 {
            return Err(GefError::InvalidConfig(format!(
                "spline_basis ({}) is below the cubic B-spline order minimum of 4",
                self.spline_basis
            )));
        }
        if self.tensor_basis < 4 {
            return Err(GefError::InvalidConfig(format!(
                "tensor_basis ({}) is below the cubic B-spline order minimum of 4",
                self.tensor_basis
            )));
        }
        // There are only C(|F'|, 2) distinct unordered feature pairs.
        let max_pairs = self.num_univariate * self.num_univariate.saturating_sub(1) / 2;
        if self.num_interactions > max_pairs {
            return Err(GefError::InvalidConfig(format!(
                "num_interactions ({}) exceeds the {} distinct pairs available among {} univariate features",
                self.num_interactions, max_pairs, self.num_univariate
            )));
        }
        Ok(())
    }

    /// Stable 64-bit content digest of this configuration
    /// (domain-tagged `gef-core/config/v1`): every field, including the
    /// seed. Equal configurations — and only those — digest equal;
    /// incident dumps and explanation provenance use it to tie an
    /// artifact to the exact parameters that produced it.
    pub fn content_digest(&self) -> u64 {
        let mut d = gef_trace::hash::Digest::new("gef-core/config/v1");
        d.write_u64(self.num_univariate as u64);
        d.write_u64(self.num_interactions as u64);
        // Strategy/selection enums are digested via their canonical
        // Debug rendering (stable: plain data enums, no addresses).
        d.write_str(&format!("{:?}", self.sampling));
        d.write_str(&format!("{:?}", self.interaction_strategy));
        d.write_u64(self.n_samples as u64);
        d.write_f64(self.train_fraction);
        d.write_u64(self.categorical_l as u64);
        d.write_u64(self.spline_basis as u64);
        d.write_u64(self.tensor_basis as u64);
        d.write_str(&format!("{:?}", self.lambda));
        d.write_str(&format!("{:?}", self.fit_floor));
        d.write_u64(self.seed);
        d.finish()
    }
}

/// Structured provenance of one explanation: which inputs, under which
/// runtime conditions, produced it. Carried inside [`GefExplanation`]
/// and copied into [`crate::ExplanationReport`], so an archived
/// artifact can always be tied back to the exact config, model, budget
/// outcome, and degradation history of its run.
///
/// Digests are the canonical 16-hex-digit renderings of
/// [`GefConfig::content_digest`], `Forest::content_digest`, and
/// `Gam::content_digest`. Defaults (all-empty, version 0) mark archives
/// written before provenance existed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Provenance {
    /// Provenance schema version (current: 1; 0 = pre-provenance
    /// archive).
    pub schema_version: u32,
    /// Hex digest of the [`GefConfig`] used.
    pub config_digest: String,
    /// Hex digest of the explained forest's structure.
    pub forest_digest: String,
    /// Hex digest of the fitted surrogate GAM.
    pub gam_digest: String,
    /// RNG seed of the `D*` sampling.
    pub seed: u64,
    /// gef-par thread count the run used (`GEF_THREADS` resolved).
    pub threads: u64,
    /// Whether a run budget (deadline or cancellation scope) was armed.
    pub budget_armed: bool,
    /// Budget outcome: `unarmed`, `clean`, `soft_tripped`, or
    /// `hard_tripped` (a hard trip can only appear on artifacts dumped
    /// mid-incident; successful explanations never carry it).
    pub budget_outcome: String,
    /// Degradation-action labels applied during the run, in order (see
    /// [`crate::DegradationAction::label`]); the full records live in
    /// [`GefExplanation::degradations`].
    pub degradations: Vec<String>,
    /// Per-stage wall-clock of the producing run.
    pub stage_timings: StageTimings,
    /// 16-hex trace id of the request context the run executed under
    /// (`gef_trace::ctx`); empty when the run had no request scope
    /// (library callers, benchmarks) or on pre-trace archives.
    #[serde(default)]
    pub trace_id: String,
}

/// Wall-clock nanoseconds spent in each pipeline stage of one
/// [`GefExplainer::explain`] run.
///
/// Always populated (independently of whether `gef-trace` collection is
/// enabled — five clock reads are free at pipeline granularity) and
/// carried inside [`GefExplanation`] so archived explanations keep their
/// provenance. Mirrors the `pipeline.*` spans that `gef-trace` records.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Forest profiling + univariate feature selection.
    pub selection_ns: u64,
    /// Sampling-domain construction.
    pub sampling_ns: u64,
    /// `D*` generation and labeling.
    pub generate_ns: u64,
    /// Interaction ranking and selection.
    pub interactions_ns: u64,
    /// GAM term construction, fitting, and fidelity evaluation.
    pub gam_fit_ns: u64,
}

impl StageTimings {
    /// Total across all five stages.
    pub fn total_ns(&self) -> u64 {
        self.selection_ns
            + self.sampling_ns
            + self.generate_ns
            + self.interactions_ns
            + self.gam_fit_ns
    }
}

/// Run `f` under the `gef-trace` span `name`, measuring its wall time
/// into `slot` unconditionally.
fn stage<T>(name: &str, slot: &mut u64, f: impl FnOnce() -> T) -> T {
    let t = std::time::Instant::now();
    let out = gef_trace::time(name, f);
    *slot = t.elapsed().as_nanos() as u64;
    out
}

/// Cooperative checkpoint at a pipeline stage boundary: abort pending
/// work (typed, never a panic or hang) once the hard deadline passed.
fn checkpoint(at: &'static str) -> Result<()> {
    if gef_trace::budget::hard_exceeded() {
        return Err(GefError::DeadlineExceeded { at });
    }
    Ok(())
}

/// The GEF explainer: runs the pipeline on a forest.
#[derive(Debug, Clone, Default)]
pub struct GefExplainer {
    config: GefConfig,
}

impl GefExplainer {
    /// Create an explainer with the given configuration.
    pub fn new(config: GefConfig) -> Self {
        GefExplainer { config }
    }

    /// Borrow the configuration.
    pub fn config(&self) -> &GefConfig {
        &self.config
    }

    /// Run the full pipeline on a forest, using only its structure.
    pub fn explain(&self, forest: &Forest) -> Result<GefExplanation> {
        let (explanation, _) = self.explain_with_data(forest)?;
        Ok(explanation)
    }

    /// Like [`GefExplainer::explain`] but also returns the generated
    /// synthetic dataset `D*` (train split first) for inspection.
    ///
    /// On any typed failure, an incident dump is written (best-effort;
    /// see [`crate::incident`]) *before* the run budget disarms, so the
    /// dump captures the trip state, the armed fault schedule, and the
    /// flight recorder's last window of activity.
    pub fn explain_with_data(&self, forest: &Forest) -> Result<(GefExplanation, SyntheticDataset)> {
        let ctx = IncidentContext {
            config_digest: Some(self.config.content_digest()),
            forest_digest: Some(forest.content_digest()),
            seed: Some(self.config.seed),
        };
        // Arm the env-configured run budget (`GEF_DEADLINE_MS` & co.)
        // as a thread-scoped budget unless the caller already armed one
        // (a scoped `RunBudget::enter`, as gef-serve does per request,
        // or the process-global compat path the xp_* bins drive) — the
        // guard leaves scope when this run returns, on every path.
        let budget = RunBudget::from_env();
        let _budget_guard = if gef_trace::budget::active() {
            None
        } else {
            Some(budget.enter())
        };
        let result = self.run_pipeline(forest, &budget);
        if let Err(err) = &result {
            incident::dump_error(err, &ctx);
        }
        result
    }

    /// The pipeline proper, separated from [`Self::explain_with_data`]
    /// so its `Err` path can be incident-dumped while the budget guard
    /// is still armed.
    fn run_pipeline(
        &self,
        forest: &Forest,
        budget: &RunBudget,
    ) -> Result<(GefExplanation, SyntheticDataset)> {
        let cfg = &self.config;
        cfg.validate()?;
        let _span = gef_trace::Span::enter("pipeline.explain");
        let mut timings = StageTimings::default();
        checkpoint("selection")?;
        let (profile, selected) = stage("pipeline.selection", &mut timings.selection_ns, || {
            let profile = ForestProfile::analyze(forest);
            let selected = profile.select_univariate(cfg.num_univariate);
            (profile, selected)
        });
        if selected.is_empty() {
            return Err(GefError::DegenerateForest(
                "the forest contains no split nodes".into(),
            ));
        }
        // Sampling domains and D*. Labels are on the response scale:
        // identical to raw for regression; probabilities for
        // classification, which the logit-link GAM fits directly.
        // Categorical features (|V| < L) keep their All-Thresholds
        // domain regardless of strategy: interpolating quantiles or
        // means between a handful of discrete split points would
        // fabricate hundreds of spurious factor levels.
        let mut degradations: Vec<Degradation> = Vec::new();
        // Per-feature domain construction runs on the gef-par pool; the
        // per-feature closure is pure (it returns the fallback *cause*
        // instead of recording it), and the coordinator then records
        // degradations serially in feature order, so the ladder is
        // identical at every thread count.
        checkpoint("sampling")?;
        let per_feature = stage("pipeline.sampling", &mut timings.sampling_ns, || {
            gef_par::map(
                profile.num_features,
                gef_par::Options::coarse().with_label("pipeline.sampling_domains"),
                |f| {
                    if selected.contains(&f) && !profile.is_categorical(f, cfg.categorical_l) {
                        // Multiset thresholds: multiplicity = split density.
                        let mut dom = cfg.sampling.domain(profile.threshold_multiset(f));
                        if gef_trace::fault::fires("sampling.domain_collapse") {
                            dom.truncate(1);
                        }
                        if dom.len() < 2 {
                            // A budgeted strategy collapsed this feature's
                            // domain (e.g. K-Means centroids merging on a
                            // pathological threshold multiset). Fall back
                            // to the raw All-Thresholds domain — a
                            // non-categorical feature always has one.
                            let fallback =
                                SamplingStrategy::AllThresholds.domain(profile.thresholds(f));
                            if fallback.len() > dom.len() {
                                let cause = format!(
                                    "strategy domain for feature {f} collapsed to {} point(s)",
                                    dom.len()
                                );
                                return (fallback, Some(cause));
                            }
                        }
                        (dom, None)
                    } else {
                        (
                            SamplingStrategy::AllThresholds.domain(profile.thresholds(f)),
                            None,
                        )
                    }
                },
            )
        })?;
        let domains: Vec<Vec<f64>> = per_feature
            .into_iter()
            .enumerate()
            .map(|(f, (dom, fallback_cause))| {
                if let Some(cause) = fallback_cause {
                    Degradation::record(
                        &mut degradations,
                        "sampling",
                        DegradationAction::DomainFallback { feature: f },
                        cause,
                    );
                }
                dom
            })
            .collect();
        // The D*-row cap bounds the most memory- and labeling-hungry
        // stage. A cap tighter than requested degrades (recorded, never
        // silent); a cap below the fitting minimum cannot produce any
        // valid explanation and fails typed.
        let mut n_samples = cfg.n_samples;
        if budget.max_dstar_rows > 0 && budget.max_dstar_rows < n_samples {
            if budget.max_dstar_rows < 16 {
                return Err(GefError::BudgetExceeded(format!(
                    "GEF_MAX_DSTAR_ROWS ({}) is below the 16-row fitting minimum",
                    budget.max_dstar_rows
                )));
            }
            Degradation::record(
                &mut degradations,
                "generate",
                DegradationAction::CappedDstarRows {
                    requested: n_samples,
                    capped: budget.max_dstar_rows,
                },
                format!(
                    "GEF_MAX_DSTAR_ROWS caps D* at {} of {} requested rows",
                    budget.max_dstar_rows, n_samples
                ),
            );
            n_samples = budget.max_dstar_rows;
        }
        checkpoint("generate")?;
        let mut dataset = stage("pipeline.generate", &mut timings.generate_ns, || {
            generate(forest, &domains, n_samples, false, cfg.seed)
        })?;
        // Scrub rows the forest labelled with NaN/Inf (a hostile model
        // file can hold non-finite leaf values) — never fit on them.
        let removed = dataset.scrub_non_finite_labels();
        if removed > 0 {
            let total = removed + dataset.len();
            if dataset.len() < 16 {
                return Err(GefError::NonFiniteLabels { removed, total });
            }
            Degradation::record(
                &mut degradations,
                "labeling",
                DegradationAction::ScrubbedNonFiniteLabels { removed, total },
                format!("{removed} of {total} forest labels were non-finite"),
            );
        }

        // Interaction selection (independent of the sampled data except
        // for H-Stat, per the paper). A fit floor below Full sheds this
        // stage entirely — the floored spec carries no tensor terms, so
        // ranking candidates for them would be pure waste under load.
        checkpoint("interactions")?;
        let floored = cfg.fit_floor != FitFloor::Full;
        let interaction_ranking = stage(
            "pipeline.interactions",
            &mut timings.interactions_ns,
            || {
                if !floored && (cfg.num_interactions > 0 || selected.len() >= 2) {
                    rank_interactions(
                        forest,
                        &profile,
                        &selected,
                        cfg.interaction_strategy,
                        Some(&dataset),
                    )
                } else {
                    Ok(Vec::new())
                }
            },
        )?;
        let interactions = top_pairs(&interaction_ranking, cfg.num_interactions);
        if floored && cfg.num_interactions > 0 {
            // Preemptive degradation is still degradation: the caller
            // asked for tensors and the floor withheld them.
            Degradation::record(
                &mut degradations,
                "interactions",
                DegradationAction::UnivariateOnly,
                format!(
                    "fit floor '{}' sheds the {} requested tensor term(s) preemptively",
                    cfg.fit_floor.label(),
                    cfg.num_interactions
                ),
            );
        }

        // Build GAM terms and fit (one stage: the fit dominates).
        checkpoint("gam_fit")?;
        let fit_result = stage(
            "pipeline.gam_fit",
            &mut timings.gam_fit_ns,
            || -> Result<_> {
                let mut terms = Vec::with_capacity(selected.len() + interactions.len());
                let mut categorical = Vec::with_capacity(selected.len());
                for &f in &selected {
                    let dom = &domains[f];
                    let is_cat = profile.is_categorical(f, cfg.categorical_l);
                    categorical.push(is_cat);
                    if is_cat || dom.len() < cfg.spline_basis.max(4) {
                        terms.push(TermSpec::factor(f, dom.clone()));
                    } else {
                        // Knots anchored on the sampling domain: every knot
                        // span receives an equal share of D*'s support, which
                        // keeps the spline well-conditioned on skewed domains.
                        terms.push(TermSpec::SplineAnchored {
                            feature: f,
                            num_basis: cfg.spline_basis,
                            degree: 3,
                            anchors: dom.clone(),
                        });
                    }
                }
                for &(i, j) in &interactions {
                    let (di, dj) = (&domains[i], &domains[j]);
                    terms.push(TermSpec::TensorAnchored {
                        features: (i, j),
                        num_basis: (
                            cfg.tensor_basis.min(di.len().max(4)),
                            cfg.tensor_basis.min(dj.len().max(4)),
                        ),
                        anchors: (di.clone(), dj.clone()),
                        degree: 3,
                    });
                }

                let link = match forest.objective {
                    Objective::RegressionL2 => Link::Identity,
                    Objective::BinaryLogistic => Link::Logit,
                };
                let mut spec = GamSpec {
                    terms,
                    link,
                    lambda: cfg.lambda.clone(),
                    ..GamSpec::regression(Vec::new())
                };
                if cfg.fit_floor == FitFloor::LinearSurrogate {
                    // Jump straight to the ladder's last rung: the
                    // cheapest spec that is still an explanation.
                    spec = recovery::linear_surrogate(&spec);
                    Degradation::record(
                        &mut degradations,
                        "gam_fit",
                        DegradationAction::LinearSurrogate,
                        format!(
                            "fit floor '{}' starts at the linear-surrogate rung preemptively",
                            cfg.fit_floor.label()
                        ),
                    );
                }
                let (train, test) = dataset.split(cfg.train_fraction);
                // Fit with the degradation ladder: numerical failures
                // walk the spec down (drop worst tensor → shrink bases →
                // widen λ grid → univariate-only → linear surrogate)
                // instead of failing the whole pipeline. Fidelity of Γ
                // vs the forest on held-out D* comes back with the fit.
                let (gam, fidelity_rmse, fidelity_r2) = fit_with_recovery(
                    &spec,
                    (&train.xs, &train.ys),
                    (&test.xs, &test.ys),
                    &mut degradations,
                )?;
                Ok((gam, categorical, fidelity_rmse, fidelity_r2))
            },
        )?;
        let (gam, categorical, fidelity_rmse, fidelity_r2) = fit_result;
        if gef_trace::enabled() {
            let t = gef_trace::global();
            t.gauge("pipeline.fidelity_rmse", fidelity_rmse);
            t.gauge("pipeline.fidelity_r2", fidelity_r2);
            t.gauge("pipeline.degradation_count", degradations.len() as f64);
        }
        let budget_armed = gef_trace::budget::active();
        let budget_outcome = if gef_trace::budget::hard_tripped() {
            "hard_tripped"
        } else if gef_trace::budget::soft_tripped() {
            "soft_tripped"
        } else if budget_armed {
            "clean"
        } else {
            "unarmed"
        };
        let provenance = Provenance {
            schema_version: 1,
            config_digest: gef_trace::hash::to_hex(cfg.content_digest()),
            forest_digest: gef_trace::hash::to_hex(forest.content_digest()),
            gam_digest: gef_trace::hash::to_hex(gam.content_digest()),
            seed: cfg.seed,
            threads: gef_par::threads() as u64,
            budget_armed,
            budget_outcome: budget_outcome.to_string(),
            degradations: degradations
                .iter()
                .map(|d| d.action.label().to_string())
                .collect(),
            stage_timings: timings,
            trace_id: gef_trace::ctx::current_hex().unwrap_or_default(),
        };

        Ok((
            GefExplanation {
                gam,
                selected_features: selected,
                categorical,
                interactions,
                interaction_ranking,
                domains,
                profile,
                fidelity_rmse,
                fidelity_r2,
                objective: forest.objective,
                telemetry: timings,
                degradations,
                provenance,
            },
            dataset,
        ))
    }
}

/// The GAM explanation `Γ` of a forest, with everything needed for
/// global and local analysis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GefExplanation {
    /// The fitted surrogate GAM.
    pub gam: Gam,
    /// Selected univariate features `F'`, most important first.
    pub selected_features: Vec<usize>,
    /// Per-selected-feature categorical flags.
    pub categorical: Vec<bool>,
    /// Selected interactions `F''`.
    pub interactions: Vec<(usize, usize)>,
    /// Full interaction ranking (pair, score), descending.
    pub interaction_ranking: Vec<((usize, usize), f64)>,
    /// Per-feature sampling domains.
    pub domains: Vec<Vec<f64>>,
    /// The forest profile (gains, thresholds).
    pub profile: ForestProfile,
    /// RMSE of Γ vs the forest on the held-out part of `D*`.
    pub fidelity_rmse: f64,
    /// R² of Γ vs the forest on the held-out part of `D*`.
    pub fidelity_r2: f64,
    /// Objective of the explained forest.
    pub objective: Objective,
    /// Per-stage wall-clock timings of the pipeline run that produced
    /// this explanation. Defaults to zeros when deserializing archives
    /// written before telemetry existed.
    #[serde(default)]
    pub telemetry: StageTimings,
    /// Graceful degradations applied while producing this explanation
    /// (domain fallbacks, label scrubbing, GAM ladder rungs). Empty on
    /// a clean run; defaults to empty for archives written before the
    /// recovery ladder existed.
    #[serde(default)]
    pub degradations: Vec<Degradation>,
    /// Structured provenance of the producing run (digests, seed,
    /// threads, budget outcome). Defaults to the all-empty version-0
    /// block for archives written before provenance existed.
    #[serde(default)]
    pub provenance: Provenance,
}

impl GefExplanation {
    /// Surrogate prediction on the response scale.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.gam.predict(x)
    }

    /// Index of the GAM term modelling a selected feature.
    pub fn term_of_feature(&self, feature: usize) -> Option<usize> {
        self.selected_features.iter().position(|&f| f == feature)
    }

    /// The global component curve of a selected feature: `(value,
    /// estimate, lower, upper)` over its sampling domain (95% band).
    pub fn component_curve(
        &self,
        feature: usize,
        grid: usize,
    ) -> Result<Vec<(f64, f64, f64, f64)>> {
        let term = self
            .term_of_feature(feature)
            .ok_or_else(|| GefError::InvalidConfig(format!("feature {feature} is not in F'")))?;
        let dom = &self.domains[feature];
        let values: Vec<f64> = if self.categorical[term] || dom.len() <= grid {
            dom.clone()
        } else {
            gef_linalg::stats::linspace(dom[0], dom[dom.len() - 1], grid)
        };
        let curve = self.gam.univariate_curve(term, &values, 1.96)?;
        Ok(values
            .into_iter()
            .zip(curve)
            .map(|(v, (e, lo, hi))| (v, e, lo, hi))
            .collect())
    }

    /// Local explanation of one instance: per-term centered additive
    /// contributions with standard errors, sorted by |contribution|.
    pub fn local(&self, x: &[f64]) -> LocalExplanation {
        let mut contributions = Vec::with_capacity(self.gam.num_terms());
        for t in 0..self.gam.num_terms() {
            let (est, se) = self.gam.component_with_se(t, x);
            let features = self.gam.term_specs()[t].features();
            contributions.push(TermContribution {
                term: t,
                label: self.gam.term_label(t),
                features: features.clone(),
                values: features.iter().map(|&f| x[f]).collect(),
                contribution: est,
                std_error: se,
            });
        }
        contributions.sort_by(|a, b| b.contribution.abs().total_cmp(&a.contribution.abs()));
        LocalExplanation {
            prediction: self.gam.predict(x),
            linear_predictor: self.gam.predict_raw(x),
            baseline: self.gam.effective_intercept(),
            contributions,
        }
    }

    /// Render the local explanation as text (the console analogue of
    /// the paper's Fig. 11), resolving feature names when provided.
    pub fn format_local(&self, local: &LocalExplanation, names: Option<&[String]>) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // Writing to a String cannot fail; the Result is only fmt API shape.
        let _ = writeln!(
            out,
            "prediction = {:.4}  (baseline {:.4}, linear predictor {:.4})",
            local.prediction, local.baseline, local.linear_predictor
        );
        for c in &local.contributions {
            let desc: Vec<String> = c
                .features
                .iter()
                .zip(&c.values)
                .map(|(&f, &v)| {
                    let name = names
                        .and_then(|n| n.get(f).cloned())
                        .unwrap_or_else(|| format!("x{f}"));
                    format!("{name}={v:.4}")
                })
                .collect();
            let sign = if c.contribution >= 0.0 { '+' } else { '-' };
            let _ = writeln!(
                out,
                "  {sign} {:>9.4}  ± {:>7.4}  {:10}  [{}]",
                c.contribution.abs(),
                1.96 * c.std_error,
                c.label,
                desc.join(", ")
            );
        }
        out
    }

    /// Term indices of the fitted GAM sorted by importance (descending
    /// standard deviation of the component over `D*`).
    pub fn terms_by_importance(&self) -> Vec<usize> {
        self.gam.terms_by_importance()
    }

    /// Serialize the whole explanation (fitted GAM, selections,
    /// domains, profile) to JSON so it can be archived and reloaded
    /// without re-running the pipeline.
    // Serialization of a plain-data struct cannot fail.
    #[allow(clippy::expect_used)]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("explanation serialization is infallible")
    }

    /// Reload an explanation from [`GefExplanation::to_json`] output.
    pub fn from_json(s: &str) -> Result<GefExplanation> {
        serde_json::from_str(s)
            .map_err(|e| GefError::InvalidConfig(format!("explanation json: {e}")))
    }
}

/// One term's contribution to a local explanation.
#[derive(Debug, Clone)]
pub struct TermContribution {
    /// GAM term index.
    pub term: usize,
    /// Term label, e.g. `s(3)` / `te(1,4)`.
    pub label: String,
    /// Features the term reads.
    pub features: Vec<usize>,
    /// The instance's values of those features.
    pub values: Vec<f64>,
    /// Centered additive contribution on the linear-predictor scale.
    pub contribution: f64,
    /// Bayesian standard error of the contribution.
    pub std_error: f64,
}

/// A local explanation: additive decomposition of one prediction.
#[derive(Debug, Clone)]
pub struct LocalExplanation {
    /// Response-scale prediction of the surrogate.
    pub prediction: f64,
    /// Linear predictor (log-odds for classification).
    pub linear_predictor: f64,
    /// Effective intercept (baseline): linear predictor of an "average"
    /// instance; contributions are deviations from it.
    pub baseline: f64,
    /// Per-term contributions, sorted by absolute magnitude.
    pub contributions: Vec<TermContribution>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gef_forest::{GbdtParams, GbdtTrainer};

    fn make_forest(f: impl Fn(&[f64]) -> f64, d: usize, objective: Objective) -> Forest {
        let mut state = 77u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let xs: Vec<Vec<f64>> = (0..2000)
            .map(|_| (0..d).map(|_| next()).collect())
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| f(x)).collect();
        GbdtTrainer::new(GbdtParams {
            num_trees: 80,
            num_leaves: 16,
            learning_rate: 0.15,
            min_data_in_leaf: 10,
            objective,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap()
    }

    #[test]
    fn regression_pipeline_high_fidelity() {
        let forest = make_forest(
            |x| x[0] * 2.0 + (x[1] * 6.0).sin() - x[2],
            3,
            Objective::RegressionL2,
        );
        let cfg = GefConfig {
            num_univariate: 3,
            n_samples: 8000,
            sampling: SamplingStrategy::EquiSize(60),
            ..Default::default()
        };
        let exp = GefExplainer::new(cfg).explain(&forest).unwrap();
        assert_eq!(exp.selected_features.len(), 3);
        assert!(exp.fidelity_r2 > 0.9, "r2={}", exp.fidelity_r2);
        // Surrogate tracks the forest on a fresh point.
        let x = [0.3, 0.6, 0.2];
        assert!((exp.predict(&x) - forest.predict(&x)).abs() < 0.3);
    }

    #[test]
    fn interactions_included_when_requested() {
        let forest = make_forest(|x| 4.0 * x[0] * x[1] + x[2], 3, Objective::RegressionL2);
        let cfg = GefConfig {
            num_univariate: 3,
            num_interactions: 1,
            n_samples: 6000,
            interaction_strategy: InteractionStrategy::GainPath,
            ..Default::default()
        };
        let exp = GefExplainer::new(cfg).explain(&forest).unwrap();
        assert_eq!(exp.interactions, vec![(0, 1)]);
        // GAM has 3 univariate + 1 tensor term.
        assert_eq!(exp.gam.num_terms(), 4);
    }

    #[test]
    fn univariate_fit_floor_sheds_tensors_and_records_it() {
        let forest = make_forest(|x| 4.0 * x[0] * x[1] + x[2], 3, Objective::RegressionL2);
        let cfg = GefConfig {
            num_univariate: 3,
            num_interactions: 1,
            n_samples: 6000,
            fit_floor: FitFloor::UnivariateOnly,
            ..Default::default()
        };
        let exp = GefExplainer::new(cfg).explain(&forest).unwrap();
        assert!(exp.interactions.is_empty(), "floor sheds the tensor");
        assert!(exp.interaction_ranking.is_empty(), "ranking is skipped");
        assert_eq!(exp.gam.num_terms(), 3, "univariate smooths only");
        assert!(
            exp.degradations
                .iter()
                .any(|d| d.action == DegradationAction::UnivariateOnly),
            "preemptive shedding is recorded: {:?}",
            exp.degradations
        );
    }

    #[test]
    fn linear_surrogate_fit_floor_starts_at_last_rung() {
        let forest = make_forest(|x| 2.0 * x[0] - x[1], 2, Objective::RegressionL2);
        let cfg = GefConfig {
            num_univariate: 2,
            n_samples: 2000,
            fit_floor: FitFloor::LinearSurrogate,
            ..Default::default()
        };
        let exp = GefExplainer::new(cfg).explain(&forest).unwrap();
        assert!(
            exp.degradations
                .iter()
                .any(|d| d.action == DegradationAction::LinearSurrogate),
            "preemptive floor is recorded: {:?}",
            exp.degradations
        );
        // A linear surrogate of a linear forest is still faithful.
        assert!(exp.fidelity_r2 > 0.8, "r2={}", exp.fidelity_r2);
    }

    #[test]
    fn classification_pipeline_outputs_probabilities() {
        let forest = make_forest(
            |x| f64::from(x[0] + x[1] > 1.0),
            2,
            Objective::BinaryLogistic,
        );
        let cfg = GefConfig {
            num_univariate: 2,
            n_samples: 4000,
            ..Default::default()
        };
        let exp = GefExplainer::new(cfg).explain(&forest).unwrap();
        let p = exp.predict(&[0.9, 0.9]);
        assert!((0.0..=1.0).contains(&p));
        assert!(p > 0.6, "p={p}");
        assert!(exp.predict(&[0.05, 0.05]) < 0.4);
    }

    #[test]
    fn component_curve_covers_domain() {
        let forest = make_forest(|x| (x[0] * 6.0).sin(), 1, Objective::RegressionL2);
        let exp = GefExplainer::new(GefConfig {
            num_univariate: 1,
            n_samples: 4000,
            ..Default::default()
        })
        .explain(&forest)
        .unwrap();
        let curve = exp.component_curve(0, 50).unwrap();
        assert!(curve.len() >= 2);
        for (_, e, lo, hi) in &curve {
            assert!(lo <= e && e <= hi);
        }
        // Curve spans the sine's range approximately.
        let max = curve.iter().map(|c| c.1).fold(f64::MIN, f64::max);
        let min = curve.iter().map(|c| c.1).fold(f64::MAX, f64::min);
        assert!(max - min > 1.2, "range {min}..{max}");
        // Unknown feature errors.
        assert!(exp.component_curve(99, 10).is_err());
    }

    #[test]
    fn local_explanation_decomposes_prediction() {
        let forest = make_forest(|x| 3.0 * x[0] - 2.0 * x[1], 2, Objective::RegressionL2);
        let exp = GefExplainer::new(GefConfig {
            num_univariate: 2,
            n_samples: 4000,
            ..Default::default()
        })
        .explain(&forest)
        .unwrap();
        let x = [0.9, 0.1];
        let local = exp.local(&x);
        let sum: f64 = local.contributions.iter().map(|c| c.contribution).sum();
        assert!(
            (local.baseline + sum - local.linear_predictor).abs() < 1e-9,
            "decomposition must be exact"
        );
        // Both features push the prediction up at this point.
        assert!(local.contributions[0].contribution > 0.0);
        // Text rendering mentions the features.
        let txt = exp.format_local(&local, Some(&["alpha".into(), "beta".into()]));
        assert!(txt.contains("alpha"));
        assert!(txt.contains("prediction"));
    }

    #[test]
    fn explanation_json_round_trip() {
        let forest = make_forest(|x| 2.0 * x[0] - x[1], 2, Objective::RegressionL2);
        let exp = GefExplainer::new(GefConfig {
            num_univariate: 2,
            n_samples: 3000,
            ..Default::default()
        })
        .explain(&forest)
        .unwrap();
        let json = exp.to_json();
        let reloaded = GefExplanation::from_json(&json).unwrap();
        assert_eq!(reloaded.selected_features, exp.selected_features);
        let x = [0.3, 0.7];
        assert_eq!(reloaded.predict(&x), exp.predict(&x));
        let (a, b) = (exp.local(&x), reloaded.local(&x));
        assert_eq!(a.prediction, b.prediction);
        assert_eq!(
            a.contributions[0].contribution,
            b.contributions[0].contribution
        );
        assert!(GefExplanation::from_json("nope").is_err());
    }

    #[test]
    fn rejects_degenerate_forest() {
        let forest = Forest::new(vec![], 1.0, 1.0, Objective::RegressionL2, 2);
        let r = GefExplainer::new(GefConfig {
            n_samples: 100,
            ..Default::default()
        })
        .explain(&forest);
        assert!(matches!(r, Err(GefError::DegenerateForest(_))));
    }

    #[test]
    fn rejects_bad_config() {
        let forest = make_forest(|x| x[0], 1, Objective::RegressionL2);
        for cfg in [
            GefConfig {
                num_univariate: 0,
                ..Default::default()
            },
            GefConfig {
                n_samples: 2,
                ..Default::default()
            },
            GefConfig {
                train_fraction: 1.5,
                ..Default::default()
            },
            GefConfig {
                spline_basis: 2,
                ..Default::default()
            },
        ] {
            assert!(GefExplainer::new(cfg).explain(&forest).is_err());
        }
    }

    #[test]
    fn validate_rejects_degenerate_spline_basis() {
        let cfg = GefConfig {
            spline_basis: 3,
            ..Default::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("spline_basis"), "{err}");
    }

    #[test]
    fn validate_rejects_degenerate_tensor_basis() {
        let cfg = GefConfig {
            tensor_basis: 2,
            ..Default::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("tensor_basis"), "{err}");
    }

    #[test]
    fn validate_rejects_impossible_interaction_count() {
        // 3 univariate features admit only C(3,2) = 3 pairs.
        let cfg = GefConfig {
            num_univariate: 3,
            num_interactions: 4,
            ..Default::default()
        };
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("num_interactions"), "{err}");
        // The boundary (exactly all pairs) is allowed…
        assert!(GefConfig {
            num_univariate: 3,
            num_interactions: 3,
            ..Default::default()
        }
        .validate()
        .is_ok());
        // …and a single feature admits no interactions at all.
        assert!(GefConfig {
            num_univariate: 1,
            num_interactions: 1,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn stage_timings_total_sums_stages() {
        let t = StageTimings {
            selection_ns: 1,
            sampling_ns: 2,
            generate_ns: 3,
            interactions_ns: 4,
            gam_fit_ns: 5,
        };
        assert_eq!(t.total_ns(), 15);
        assert_eq!(StageTimings::default().total_ns(), 0);
    }

    #[test]
    fn explanation_records_stage_timings() {
        let forest = make_forest(|x| 2.0 * x[0], 1, Objective::RegressionL2);
        let exp = GefExplainer::new(GefConfig {
            num_univariate: 1,
            n_samples: 1000,
            ..Default::default()
        })
        .explain(&forest)
        .unwrap();
        // Generation and fitting always take measurable time.
        assert!(exp.telemetry.generate_ns > 0);
        assert!(exp.telemetry.gam_fit_ns > 0);
        assert!(exp.telemetry.total_ns() > 0);
    }

    #[test]
    fn config_digest_is_stable_and_field_sensitive() {
        let a = GefConfig::default();
        assert_eq!(a.content_digest(), GefConfig::default().content_digest());
        let b = GefConfig {
            seed: 1,
            ..Default::default()
        };
        assert_ne!(a.content_digest(), b.content_digest());
        let c = GefConfig {
            sampling: SamplingStrategy::EquiSize(60),
            ..Default::default()
        };
        assert_ne!(a.content_digest(), c.content_digest());
    }

    #[test]
    fn explanation_carries_provenance() {
        let forest = make_forest(|x| 2.0 * x[0], 1, Objective::RegressionL2);
        let cfg = GefConfig {
            num_univariate: 1,
            n_samples: 1000,
            seed: 9,
            ..Default::default()
        };
        let exp = GefExplainer::new(cfg.clone()).explain(&forest).unwrap();
        let p = &exp.provenance;
        assert_eq!(p.schema_version, 1);
        assert_eq!(
            p.config_digest,
            gef_trace::hash::to_hex(cfg.content_digest())
        );
        assert_eq!(
            p.forest_digest,
            gef_trace::hash::to_hex(forest.content_digest())
        );
        assert_eq!(
            p.gam_digest,
            gef_trace::hash::to_hex(exp.gam.content_digest())
        );
        assert_eq!(p.seed, 9);
        assert!(p.threads >= 1);
        assert_eq!(p.stage_timings, exp.telemetry);
        assert_eq!(p.degradations.len(), exp.degradations.len());
        // JSON round-trip preserves provenance; legacy archives (no
        // provenance key) default to the version-0 block.
        let reloaded = GefExplanation::from_json(&exp.to_json()).unwrap();
        assert_eq!(reloaded.provenance, exp.provenance);
    }

    #[test]
    fn categorical_feature_gets_factor_term() {
        // Feature 1 takes only 3 distinct values in the training data,
        // so the forest can use at most 2 distinct thresholds for it.
        let xs: Vec<Vec<f64>> = (0..1500)
            .map(|i| vec![(i % 97) as f64 / 97.0, (i % 3) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] + 2.0 * x[1]).collect();
        let forest = GbdtTrainer::new(GbdtParams {
            num_trees: 60,
            num_leaves: 12,
            learning_rate: 0.2,
            min_data_in_leaf: 10,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        let exp = GefExplainer::new(GefConfig {
            num_univariate: 2,
            n_samples: 4000,
            ..Default::default()
        })
        .explain(&forest)
        .unwrap();
        let term1 = exp.term_of_feature(1).unwrap();
        assert!(exp.categorical[term1]);
        assert!(exp.gam.term_label(term1).starts_with("f("));
    }
}
