//! Univariate component selection (paper Sec. 3.2) and the categorical
//! heuristic (Sec. 3.5).
//!
//! The most important features `F'` are chosen by accumulating each
//! feature's training-time loss reduction across every split node in
//! the forest. A feature with fewer than `L` distinct thresholds is
//! treated as categorical (the paper uses `L = 10`).

use gef_forest::importance::FeatureStats;
use gef_forest::Forest;
use serde::{Deserialize, Serialize};

/// Default categorical-detection threshold (the paper's `L`).
pub const DEFAULT_CATEGORICAL_L: usize = 10;

/// The feature signals GEF elicits from a forest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForestProfile {
    /// Per-feature statistics (gain, split counts, thresholds).
    pub stats: FeatureStats,
    /// Total number of features of the forest's input space.
    pub num_features: usize,
}

impl ForestProfile {
    /// Analyze a forest in a single pass.
    pub fn analyze(forest: &Forest) -> Self {
        ForestProfile {
            stats: FeatureStats::collect(forest),
            num_features: forest.num_features,
        }
    }

    /// The top-`k` features by accumulated gain (the paper's `F'`),
    /// most important first. Features never used by the forest are
    /// excluded, so the result may be shorter than `k`.
    pub fn select_univariate(&self, k: usize) -> Vec<usize> {
        self.stats.top_features(k)
    }

    /// Whether a feature should be modelled as categorical: fewer than
    /// `l` distinct thresholds appear in the forest.
    pub fn is_categorical(&self, feature: usize, l: usize) -> bool {
        self.stats.thresholds[feature].len() < l
    }

    /// Sorted, de-duplicated thresholds of a feature (used for
    /// categorical detection and factor levels).
    pub fn thresholds(&self, feature: usize) -> &[f64] {
        &self.stats.thresholds[feature]
    }

    /// Sorted thresholds of a feature **with multiplicity** — the
    /// paper's `V_i`, one entry per split node. This is what the
    /// sampling strategies consume: the multiplicity encodes where the
    /// forest concentrates its splits.
    pub fn threshold_multiset(&self, feature: usize) -> &[f64] {
        &self.stats.threshold_multiset[feature]
    }

    /// Accumulated gain importance of a feature.
    pub fn gain(&self, feature: usize) -> f64 {
        self.stats.gain[feature]
    }

    /// Features that occur at least once in the forest (the paper's
    /// full set `F`).
    pub fn used_features(&self) -> Vec<usize> {
        (0..self.num_features)
            .filter(|&f| self.stats.split_count[f] > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gef_forest::{GbdtParams, GbdtTrainer};

    fn forest_with_strong_f0() -> Forest {
        let xs: Vec<Vec<f64>> = (0..400)
            .map(|i| {
                vec![
                    (i % 97) as f64 / 97.0,
                    (i % 13) as f64 / 13.0,
                    f64::from(i % 2), // binary feature -> few thresholds
                ]
            })
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 10.0 * (x[0] * 3.0).sin() + 0.5 * x[1] + 0.3 * x[2])
            .collect();
        GbdtTrainer::new(GbdtParams {
            num_trees: 40,
            num_leaves: 12,
            learning_rate: 0.2,
            min_data_in_leaf: 5,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap()
    }

    #[test]
    fn dominant_feature_selected_first() {
        let f = forest_with_strong_f0();
        let p = ForestProfile::analyze(&f);
        assert_eq!(p.select_univariate(1), vec![0]);
        let top2 = p.select_univariate(3);
        assert_eq!(top2[0], 0);
    }

    #[test]
    fn binary_feature_detected_categorical() {
        let f = forest_with_strong_f0();
        let p = ForestProfile::analyze(&f);
        // Feature 2 takes 2 values -> at most 1 distinct threshold.
        assert!(p.is_categorical(2, DEFAULT_CATEGORICAL_L));
        // Feature 0 is continuous with many thresholds.
        assert!(!p.is_categorical(0, DEFAULT_CATEGORICAL_L));
        assert!(p.thresholds(0).len() >= DEFAULT_CATEGORICAL_L);
    }

    #[test]
    fn used_features_and_gain() {
        let f = forest_with_strong_f0();
        let p = ForestProfile::analyze(&f);
        let used = p.used_features();
        assert!(used.contains(&0));
        assert!(p.gain(0) > p.gain(1));
        assert!(p.gain(0) > 0.0);
    }

    #[test]
    fn selection_excludes_unused_features() {
        // Train on data where feature 1 is pure noise with no signal
        // and constant — never split on.
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64, 5.0]).collect();
        let ys: Vec<f64> = (0..200).map(|i| (i % 7) as f64).collect();
        let f = GbdtTrainer::new(GbdtParams {
            num_trees: 10,
            num_leaves: 4,
            min_data_in_leaf: 5,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        let p = ForestProfile::analyze(&f);
        let sel = p.select_univariate(5);
        assert_eq!(sel, vec![0]);
    }
}
