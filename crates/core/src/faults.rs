//! Deterministic fault injection for the GEF pipeline (only compiled
//! with the `fault-injection` cargo feature).
//!
//! This is the `gef-core` facade over [`gef_trace::fault`]: the named
//! injection sites threaded through the pipeline's dependencies, plus a
//! `GEF_FAULTS` environment activation syntax so experiment binaries
//! can inject faults without code changes.
//!
//! ## Injection sites
//!
//! | site | location | effect when fired |
//! |------|----------|-------------------|
//! | [`CHOL_FACTOR`] | `gef_linalg::Cholesky::factor` | returns `NotPositiveDefinite` |
//! | [`PIRLS_ITER`] | `gef_gam` PIRLS iteration | corrupts the candidate β to NaN |
//! | [`PIRLS_STEP`] | `gef_gam` PIRLS iteration | finite overshoot (recoverable by step-halving) |
//! | [`FOREST_PREDICT_NAN`] | `gef_forest::Forest::predict_raw` | returns NaN |
//! | [`SAMPLING_DOMAIN_COLLAPSE`] | pipeline sampling stage | truncates a selected feature's domain to one point |
//!
//! ## `GEF_FAULTS` syntax
//!
//! Comma-separated `site=trigger` entries:
//!
//! ```text
//! GEF_FAULTS="chol.factor=stage<2,forest.predict_nan=first:50"
//! ```
//!
//! Triggers: `always`, `first:N`, `hits:I|J|K` (0-based hit indices),
//! `stage<N`, `seeded:SEED:PROB`.

pub use gef_trace::fault::{
    any_armed, arm, disarm, fired_count, fires, hit_count, reset, set_stage, stage, Trigger,
};

/// `gef_linalg::Cholesky::factor` fails with `NotPositiveDefinite`.
pub const CHOL_FACTOR: &str = "chol.factor";
/// A PIRLS iteration's solved coefficients become NaN.
pub const PIRLS_ITER: &str = "pirls.iter";
/// A PIRLS iteration's solved coefficients overshoot (finitely).
pub const PIRLS_STEP: &str = "pirls.step";
/// `Forest::predict_raw` returns NaN.
pub const FOREST_PREDICT_NAN: &str = "forest.predict_nan";
/// A selected feature's sampling domain collapses to a single point.
pub const SAMPLING_DOMAIN_COLLAPSE: &str = "sampling.domain_collapse";

/// All known injection sites.
pub const ALL_SITES: [&str; 5] = [
    CHOL_FACTOR,
    PIRLS_ITER,
    PIRLS_STEP,
    FOREST_PREDICT_NAN,
    SAMPLING_DOMAIN_COLLAPSE,
];

/// Parse a `GEF_FAULTS`-style activation string into `(site, trigger)`
/// pairs. See the module docs for the syntax.
pub fn parse_spec(spec: &str) -> Result<Vec<(String, Trigger)>, String> {
    let mut out = Vec::new();
    for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let (site, trig) = entry
            .split_once('=')
            .ok_or_else(|| format!("bad GEF_FAULTS entry (no '='): {entry:?}"))?;
        let trigger = parse_trigger(trig.trim())?;
        out.push((site.trim().to_string(), trigger));
    }
    Ok(out)
}

fn parse_trigger(t: &str) -> Result<Trigger, String> {
    if t == "always" {
        return Ok(Trigger::Always);
    }
    if let Some(n) = t.strip_prefix("first:") {
        return n
            .parse()
            .map(Trigger::FirstN)
            .map_err(|_| format!("bad first:N trigger: {t:?}"));
    }
    if let Some(list) = t.strip_prefix("hits:") {
        let hits: Result<Vec<u64>, _> = list.split('|').map(str::parse).collect();
        return hits
            .map(Trigger::Hits)
            .map_err(|_| format!("bad hits:I|J trigger: {t:?}"));
    }
    if let Some(n) = t.strip_prefix("stage<") {
        return n
            .parse()
            .map(Trigger::StageBelow)
            .map_err(|_| format!("bad stage<N trigger: {t:?}"));
    }
    if let Some(rest) = t.strip_prefix("seeded:") {
        let (seed, prob) = rest
            .split_once(':')
            .ok_or_else(|| format!("bad seeded:SEED:PROB trigger: {t:?}"))?;
        let seed = seed
            .parse()
            .map_err(|_| format!("bad seed in trigger: {t:?}"))?;
        let prob: f64 = prob
            .parse()
            .map_err(|_| format!("bad probability in trigger: {t:?}"))?;
        if !(0.0..=1.0).contains(&prob) {
            return Err(format!("probability out of [0,1]: {t:?}"));
        }
        return Ok(Trigger::Seeded { seed, prob });
    }
    Err(format!("unknown trigger: {t:?}"))
}

/// Arm every site listed in the `GEF_FAULTS` environment variable.
/// Returns how many sites were armed; a malformed spec is an error.
pub fn arm_from_env() -> Result<usize, String> {
    let Ok(spec) = std::env::var("GEF_FAULTS") else {
        return Ok(0);
    };
    let entries = parse_spec(&spec)?;
    let n = entries.len();
    for (site, trigger) in entries {
        arm(&site, trigger);
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_trigger_form() {
        let parsed = parse_spec(
            "chol.factor=always, pirls.iter=first:3,forest.predict_nan=hits:0|4|9,\
             sampling.domain_collapse=stage<2,pirls.step=seeded:42:0.25",
        )
        .unwrap();
        assert_eq!(parsed.len(), 5);
        assert_eq!(parsed[0], (CHOL_FACTOR.to_string(), Trigger::Always));
        assert_eq!(parsed[1].1, Trigger::FirstN(3));
        assert_eq!(parsed[2].1, Trigger::Hits(vec![0, 4, 9]));
        assert_eq!(parsed[3].1, Trigger::StageBelow(2));
        assert_eq!(
            parsed[4].1,
            Trigger::Seeded {
                seed: 42,
                prob: 0.25
            }
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(parse_spec("no_equals_sign").is_err());
        assert!(parse_spec("a=never").is_err());
        assert!(parse_spec("a=first:x").is_err());
        assert!(parse_spec("a=seeded:1:1.5").is_err());
        // Empty spec is fine (nothing armed).
        assert_eq!(parse_spec("").unwrap().len(), 0);
    }
}
