//! Deterministic fault injection for the GEF pipeline (only compiled
//! with the `fault-injection` cargo feature).
//!
//! This is the `gef-core` facade over [`gef_trace::fault`]: the named
//! injection sites threaded through the pipeline's dependencies, plus a
//! `GEF_FAULTS` environment activation syntax so experiment binaries
//! can inject faults without code changes.
//!
//! ## Injection sites
//!
//! | site | location | effect when fired |
//! |------|----------|-------------------|
//! | [`CHOL_FACTOR`] | `gef_linalg::Cholesky::factor` | returns `NotPositiveDefinite` |
//! | [`PIRLS_ITER`] | `gef_gam` PIRLS iteration | corrupts the candidate β to NaN |
//! | [`PIRLS_STEP`] | `gef_gam` PIRLS iteration | finite overshoot (recoverable by step-halving) |
//! | [`PIRLS_STALL`] | `gef_gam` PIRLS iteration | sleeps 5 ms (no numeric effect) — exists to prove deadline enforcement |
//! | [`FOREST_PREDICT_NAN`] | `gef_forest::Forest::predict_raw` | returns NaN |
//! | [`SAMPLING_DOMAIN_COLLAPSE`] | pipeline sampling stage | truncates a selected feature's domain to one point |
//! | [`STORE_TORN_WRITE`] | `gef_store` publish | staged file gets half its bytes, no fsync (torn artifact) |
//! | [`STORE_BIT_FLIP`] | `gef_store` publish | one payload bit flipped (silent media corruption) |
//! | [`STORE_TRUNCATE`] | `gef_store` read | read buffer cut to half length (lost tail) |
//! | [`STORE_ENOSPC`] | `gef_store` publish | write fails with injected out-of-space |
//!
//! ## `GEF_FAULTS` syntax
//!
//! Comma-separated `site=trigger` entries:
//!
//! ```text
//! GEF_FAULTS="chol.factor=stage<2,forest.predict_nan=first:50"
//! ```
//!
//! Triggers: `always`, `first:N`, `hits:I|J|K` (0-based hit indices),
//! `stage<N`, `seeded:SEED:PROB`.

pub use gef_trace::fault::{
    any_armed, arm, armed, armed_counts, disarm, fired_count, fires, hit_count, reset, set_stage,
    stage, Trigger,
};

/// `gef_linalg::Cholesky::factor` fails with `NotPositiveDefinite`.
pub const CHOL_FACTOR: &str = "chol.factor";
/// A PIRLS iteration's solved coefficients become NaN.
pub const PIRLS_ITER: &str = "pirls.iter";
/// A PIRLS iteration's solved coefficients overshoot (finitely).
pub const PIRLS_STEP: &str = "pirls.step";
/// A PIRLS iteration stalls (sleeps 5 ms per fire, no numeric effect).
/// Exists so deadline enforcement can be proven: an `always`-stalled
/// PIRLS loop under `GEF_DEADLINE_MS` must return `DeadlineExceeded`,
/// never hang.
pub const PIRLS_STALL: &str = "pirls.stall";
/// `Forest::predict_raw` returns NaN.
pub const FOREST_PREDICT_NAN: &str = "forest.predict_nan";
/// A selected feature's sampling domain collapses to a single point.
pub const SAMPLING_DOMAIN_COLLAPSE: &str = "sampling.domain_collapse";
/// A `gef_store` publish writes only half the staged bytes (and skips
/// the fsync) before the rename — a torn artifact under its final name.
pub const STORE_TORN_WRITE: &str = "store.torn_write";
/// A `gef_store` publish flips one bit of the staged payload.
pub const STORE_BIT_FLIP: &str = "store.bit_flip";
/// A `gef_store` read returns only the first half of the artifact.
pub const STORE_TRUNCATE: &str = "store.truncate";
/// A `gef_store` publish fails with an injected out-of-space error.
pub const STORE_ENOSPC: &str = "store.enospc";

/// All known injection sites.
pub const ALL_SITES: [&str; 10] = [
    CHOL_FACTOR,
    PIRLS_ITER,
    PIRLS_STEP,
    PIRLS_STALL,
    FOREST_PREDICT_NAN,
    SAMPLING_DOMAIN_COLLAPSE,
    STORE_TORN_WRITE,
    STORE_BIT_FLIP,
    STORE_TRUNCATE,
    STORE_ENOSPC,
];

/// A malformed or unknown `GEF_FAULTS` specification.
///
/// The `Display` form of [`FaultSpecError::UnknownSite`] lists every
/// registered site so a typo in a chaos schedule is self-diagnosing.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpecError {
    /// An entry had no `site=trigger` shape.
    MissingEquals {
        /// The offending entry.
        entry: String,
    },
    /// The named site is not in [`ALL_SITES`].
    UnknownSite {
        /// The unrecognized site name.
        site: String,
    },
    /// The trigger half of an entry did not parse.
    MalformedTrigger {
        /// The offending trigger text.
        trigger: String,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSpecError::MissingEquals { entry } => {
                write!(f, "bad GEF_FAULTS entry (no '='): {entry:?}")
            }
            FaultSpecError::UnknownSite { site } => {
                write!(
                    f,
                    "unknown GEF_FAULTS site {site:?}; valid sites: {}",
                    ALL_SITES.join(", ")
                )
            }
            FaultSpecError::MalformedTrigger { trigger, reason } => {
                write!(f, "bad GEF_FAULTS trigger {trigger:?}: {reason}")
            }
        }
    }
}

impl std::error::Error for FaultSpecError {}

/// Parse a `GEF_FAULTS`-style activation string into `(site, trigger)`
/// pairs, rejecting unknown sites and malformed triggers with a typed
/// [`FaultSpecError`]. See the module docs for the syntax.
pub fn parse_spec(spec: &str) -> Result<Vec<(String, Trigger)>, FaultSpecError> {
    let mut out = Vec::new();
    for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
        let (site, trig) = entry
            .split_once('=')
            .ok_or_else(|| FaultSpecError::MissingEquals {
                entry: entry.to_string(),
            })?;
        let site = site.trim();
        if !ALL_SITES.contains(&site) {
            return Err(FaultSpecError::UnknownSite {
                site: site.to_string(),
            });
        }
        let trigger = parse_trigger(trig.trim())?;
        out.push((site.to_string(), trigger));
    }
    Ok(out)
}

fn malformed(t: &str, reason: impl Into<String>) -> FaultSpecError {
    FaultSpecError::MalformedTrigger {
        trigger: t.to_string(),
        reason: reason.into(),
    }
}

fn parse_trigger(t: &str) -> Result<Trigger, FaultSpecError> {
    if t == "always" {
        return Ok(Trigger::Always);
    }
    if let Some(n) = t.strip_prefix("first:") {
        return n
            .parse()
            .map(Trigger::FirstN)
            .map_err(|_| malformed(t, "expected first:N with integer N"));
    }
    if let Some(list) = t.strip_prefix("hits:") {
        let hits: Result<Vec<u64>, _> = list.split('|').map(str::parse).collect();
        return hits
            .map(Trigger::Hits)
            .map_err(|_| malformed(t, "expected hits:I|J|K with integer hit indices"));
    }
    if let Some(n) = t.strip_prefix("stage<") {
        return n
            .parse()
            .map(Trigger::StageBelow)
            .map_err(|_| malformed(t, "expected stage<N with integer N"));
    }
    if let Some(rest) = t.strip_prefix("seeded:") {
        let (seed, prob) = rest
            .split_once(':')
            .ok_or_else(|| malformed(t, "expected seeded:SEED:PROB"))?;
        let seed = seed
            .parse()
            .map_err(|_| malformed(t, "seed is not an integer"))?;
        let prob: f64 = prob
            .parse()
            .map_err(|_| malformed(t, "probability is not a number"))?;
        if !(0.0..=1.0).contains(&prob) {
            return Err(malformed(t, "probability out of [0,1]"));
        }
        return Ok(Trigger::Seeded { seed, prob });
    }
    Err(malformed(
        t,
        "expected always, first:N, hits:I|J, stage<N, or seeded:SEED:PROB",
    ))
}

/// Render `(site, trigger)` pairs back into the `GEF_FAULTS` grammar —
/// the exact inverse of [`parse_spec`], used by incident dumps to emit
/// a replayable activation string for the armed schedule.
pub fn render_spec(entries: &[(String, Trigger)]) -> String {
    entries
        .iter()
        .map(|(site, trig)| format!("{site}={}", trig.to_spec()))
        .collect::<Vec<_>>()
        .join(",")
}

/// Arm every site listed in the `GEF_FAULTS` environment variable.
/// Returns how many sites were armed; a malformed spec is an error.
pub fn arm_from_env() -> Result<usize, FaultSpecError> {
    let Ok(spec) = std::env::var("GEF_FAULTS") else {
        return Ok(0);
    };
    let entries = parse_spec(&spec)?;
    let n = entries.len();
    for (site, trigger) in entries {
        arm(&site, trigger);
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_trigger_form() {
        let parsed = parse_spec(
            "chol.factor=always, pirls.iter=first:3,forest.predict_nan=hits:0|4|9,\
             sampling.domain_collapse=stage<2,pirls.step=seeded:42:0.25",
        )
        .unwrap();
        assert_eq!(parsed.len(), 5);
        assert_eq!(parsed[0], (CHOL_FACTOR.to_string(), Trigger::Always));
        assert_eq!(parsed[1].1, Trigger::FirstN(3));
        assert_eq!(parsed[2].1, Trigger::Hits(vec![0, 4, 9]));
        assert_eq!(parsed[3].1, Trigger::StageBelow(2));
        assert_eq!(
            parsed[4].1,
            Trigger::Seeded {
                seed: 42,
                prob: 0.25
            }
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(matches!(
            parse_spec("no_equals_sign"),
            Err(FaultSpecError::MissingEquals { .. })
        ));
        assert!(matches!(
            parse_spec("chol.factor=never"),
            Err(FaultSpecError::MalformedTrigger { .. })
        ));
        assert!(matches!(
            parse_spec("chol.factor=first:x"),
            Err(FaultSpecError::MalformedTrigger { .. })
        ));
        assert!(matches!(
            parse_spec("chol.factor=seeded:1:1.5"),
            Err(FaultSpecError::MalformedTrigger { .. })
        ));
        // Empty spec is fine (nothing armed).
        assert_eq!(parse_spec("").unwrap().len(), 0);
    }

    #[test]
    fn unknown_site_error_lists_valid_sites() {
        let err = parse_spec("chol.faktor=always").unwrap_err();
        assert_eq!(
            err,
            FaultSpecError::UnknownSite {
                site: "chol.faktor".into()
            }
        );
        let msg = err.to_string();
        for site in ALL_SITES {
            assert!(msg.contains(site), "{msg:?} should list {site}");
        }
    }

    #[test]
    fn render_spec_round_trips_through_parse() {
        let spec = "chol.factor=always,pirls.iter=first:3,forest.predict_nan=hits:0|4|9,\
                    sampling.domain_collapse=stage<2,pirls.step=seeded:42:0.25";
        let parsed = parse_spec(spec).unwrap();
        let rendered = render_spec(&parsed);
        assert_eq!(rendered, spec);
        assert_eq!(parse_spec(&rendered).unwrap(), parsed);
        assert_eq!(render_spec(&[]), "");
    }

    #[test]
    fn every_registered_site_parses() {
        for site in ALL_SITES {
            let parsed = parse_spec(&format!("{site}=first:1")).unwrap();
            assert_eq!(parsed, vec![(site.to_string(), Trigger::FirstN(1))]);
        }
    }
}
