//! Synthetic dataset generation (paper Sec. 3.3, *Random Sampling*).
//!
//! An instance of `D*` is built by drawing, independently for every
//! feature, one value uniformly at random from that feature's sampling
//! domain, then querying the forest for the label. Features outside
//! `F'` still need values for the forest query; they are sampled from
//! their own *All-Thresholds* domains so the surrogate marginalizes
//! over them instead of conditioning on an arbitrary constant (features
//! the forest never splits on are fixed at 0 — the forest is constant
//! in them by construction).

use crate::sampling::SamplingStrategy;
use crate::selection::ForestProfile;
use crate::Result;
use gef_forest::Forest;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The synthetic dataset `D*` together with the domains that produced
/// it.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// Sampled instances (full feature width of the forest).
    pub xs: Vec<Vec<f64>>,
    /// Forest labels (response scale: raw for regression, probability
    /// for classification — see [`generate`]'s `raw_labels` flag).
    pub ys: Vec<f64>,
    /// Per-feature sampling domains (empty for unused features).
    pub domains: Vec<Vec<f64>>,
}

impl SyntheticDataset {
    /// Number of instances.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Remove every row whose label is NaN or infinite (a forest fed a
    /// hostile model file, or an injected prediction fault, can produce
    /// them). Returns the number of rows removed.
    pub fn scrub_non_finite_labels(&mut self) -> usize {
        let before = self.ys.len();
        let keep: Vec<bool> = self.ys.iter().map(|y| y.is_finite()).collect();
        if keep.iter().all(|&k| k) {
            return 0;
        }
        let mut it = keep.iter();
        self.xs.retain(|_| *it.next().unwrap_or(&true));
        let mut it = keep.iter();
        self.ys.retain(|_| *it.next().unwrap_or(&true));
        before - self.ys.len()
    }

    /// Split into train/test parts (no shuffle needed: rows are i.i.d.
    /// by construction).
    pub fn split(&self, train_fraction: f64) -> (SyntheticDataset, SyntheticDataset) {
        assert!(train_fraction > 0.0 && train_fraction < 1.0);
        let cut = ((self.len() as f64 * train_fraction).round() as usize)
            .clamp(1, self.len().saturating_sub(1).max(1));
        let mk = |xs: &[Vec<f64>], ys: &[f64]| SyntheticDataset {
            xs: xs.to_vec(),
            ys: ys.to_vec(),
            domains: self.domains.clone(),
        };
        (
            mk(&self.xs[..cut], &self.ys[..cut]),
            mk(&self.xs[cut..], &self.ys[cut..]),
        )
    }
}

/// Build the per-feature sampling domains: `strategy` for the selected
/// features, All-Thresholds for the other features the forest uses.
///
/// Features are independent, so construction fans out on the gef-par
/// pool; results return in feature order regardless of thread count.
pub fn build_domains(
    profile: &ForestProfile,
    selected: &[usize],
    strategy: SamplingStrategy,
) -> Result<Vec<Vec<f64>>> {
    let domains = gef_par::map(
        profile.num_features,
        gef_par::Options::coarse().with_label("pipeline.sampling_domains"),
        |f| {
            if selected.contains(&f) {
                // The multiset carries the split-density signal the
                // budgeted strategies rely on.
                strategy.domain(profile.threshold_multiset(f))
            } else {
                SamplingStrategy::AllThresholds.domain(profile.thresholds(f))
            }
        },
    )?;
    Ok(domains)
}

/// Generate `n` labelled instances from the given domains.
///
/// `raw_labels` chooses the label scale: `true` queries the forest's
/// raw margin (log-odds for classification — what a logit-link GAM
/// should be fitted on is the *probability*, so the pipeline uses
/// `false` there), `false` the response scale.
pub fn generate(
    forest: &Forest,
    domains: &[Vec<f64>],
    n: usize,
    raw_labels: bool,
    seed: u64,
) -> Result<SyntheticDataset> {
    let _span = gef_trace::Span::enter("core.generate");
    let mut rng = StdRng::seed_from_u64(seed);
    let d = forest.num_features;
    debug_assert_eq!(domains.len(), d);
    let mut xs = Vec::with_capacity(n);
    {
        let _sample_span = gef_trace::Span::enter("core.generate.sample");
        for _ in 0..n {
            let x: Vec<f64> = (0..d)
                .map(|f| {
                    let dom = &domains[f];
                    if dom.is_empty() {
                        0.0
                    } else {
                        dom[rng.gen_range(0..dom.len())]
                    }
                })
                .collect();
            xs.push(x);
        }
    }
    let _label_span = gef_trace::Span::enter("core.generate.label");
    let traced = gef_trace::enabled();
    let ys = if raw_labels {
        // Raw labels are only requested on ancillary paths; counting is
        // reserved for the response-scale D* labeling below.
        forest.predict_raw_batch(&xs)
    } else if traced {
        let (ys, visited) = forest.predict_batch_counted(&xs)?;
        gef_trace::counter!("forest.nodes_visited").add(visited);
        ys
    } else {
        forest.predict_batch(&xs)?
    };
    if traced {
        gef_trace::counter!("core.dstar_rows").add(n as u64);
    }
    drop(_label_span);
    Ok(SyntheticDataset {
        xs,
        ys,
        domains: domains.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gef_forest::{GbdtParams, GbdtTrainer, Objective};

    fn forest() -> Forest {
        let xs: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![(i % 31) as f64 / 31.0, (i % 17) as f64 / 17.0, 7.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] + 2.0 * x[1]).collect();
        GbdtTrainer::new(GbdtParams {
            num_trees: 20,
            num_leaves: 8,
            learning_rate: 0.3,
            min_data_in_leaf: 5,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap()
    }

    #[test]
    fn instances_use_only_domain_values() {
        let f = forest();
        let profile = ForestProfile::analyze(&f);
        let selected = profile.select_univariate(2);
        let domains = build_domains(&profile, &selected, SamplingStrategy::EquiSize(5)).unwrap();
        let ds = generate(&f, &domains, 500, false, 1).unwrap();
        assert_eq!(ds.len(), 500);
        for x in &ds.xs {
            for (fi, &v) in x.iter().enumerate() {
                if domains[fi].is_empty() {
                    assert_eq!(v, 0.0);
                } else {
                    assert!(
                        domains[fi].contains(&v),
                        "value {v} not in domain of feature {fi}"
                    );
                }
            }
        }
    }

    #[test]
    fn labels_match_forest_predictions() {
        let f = forest();
        let profile = ForestProfile::analyze(&f);
        let domains = build_domains(&profile, &[0, 1], SamplingStrategy::AllThresholds).unwrap();
        let ds = generate(&f, &domains, 50, false, 3).unwrap();
        for (x, &y) in ds.xs.iter().zip(&ds.ys) {
            assert_eq!(y, f.predict(x));
        }
    }

    #[test]
    fn raw_labels_use_margin_scale() {
        // Classification forest: raw = log-odds, response = probability.
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 200.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| f64::from(x[0] > 0.5)).collect();
        let f = GbdtTrainer::new(GbdtParams {
            num_trees: 10,
            num_leaves: 4,
            min_data_in_leaf: 5,
            objective: Objective::BinaryLogistic,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        let profile = ForestProfile::analyze(&f);
        let domains = build_domains(&profile, &[0], SamplingStrategy::AllThresholds).unwrap();
        let raw = generate(&f, &domains, 40, true, 5).unwrap();
        let resp = generate(&f, &domains, 40, false, 5).unwrap();
        // Same instances (same seed), different label scales.
        assert_eq!(raw.xs, resp.xs);
        for (&r, &p) in raw.ys.iter().zip(&resp.ys) {
            assert!((gef_forest::sigmoid(r) - p).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn unused_feature_fixed_at_zero() {
        let f = forest(); // feature 2 is constant 7.0 -> never split
        let profile = ForestProfile::analyze(&f);
        let domains = build_domains(&profile, &[0, 1], SamplingStrategy::EquiWidth(4)).unwrap();
        assert!(domains[2].is_empty());
        let ds = generate(&f, &domains, 20, false, 9).unwrap();
        assert!(ds.xs.iter().all(|x| x[2] == 0.0));
    }

    #[test]
    fn split_fractions() {
        let f = forest();
        let profile = ForestProfile::analyze(&f);
        let domains = build_domains(&profile, &[0], SamplingStrategy::EquiSize(3)).unwrap();
        let ds = generate(&f, &domains, 100, false, 11).unwrap();
        let (tr, te) = ds.split(0.8);
        assert_eq!(tr.len(), 80);
        assert_eq!(te.len(), 20);
    }

    #[test]
    fn deterministic_per_seed() {
        let f = forest();
        let profile = ForestProfile::analyze(&f);
        let domains = build_domains(&profile, &[0, 1], SamplingStrategy::KQuantile(6)).unwrap();
        let a = generate(&f, &domains, 30, false, 42).unwrap();
        let b = generate(&f, &domains, 30, false, 42).unwrap();
        assert_eq!(a.xs, b.xs);
        let c = generate(&f, &domains, 30, false, 43).unwrap();
        assert_ne!(a.xs, c.xs);
    }
}
