//! The paper's complexity claim (Sec. 4.2): *Gain-Path* finds
//! interactions in `O(|T|)` — linear in forest size — while *H-Stat*
//! costs `O(N·|F'|²)` forest evaluations. These benches measure both
//! against the number of trees so the crossover is visible in the
//! criterion report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gef_core::generate::{build_domains, generate};
use gef_core::interactions::rank_interactions;
use gef_core::selection::ForestProfile;
use gef_core::{InteractionStrategy, SamplingStrategy};
use gef_data::synthetic::make_d_second;
use gef_forest::{Forest, GbdtParams, GbdtTrainer};

fn forest_with(num_trees: usize) -> Forest {
    let data = make_d_second(3_000, &[(0, 1), (2, 3)], 1);
    GbdtTrainer::new(GbdtParams {
        num_trees,
        num_leaves: 32,
        learning_rate: 0.05,
        ..Default::default()
    })
    .fit(&data.xs, &data.ys)
    .unwrap()
}

fn bench_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("interaction_ranking");
    g.sample_size(10);
    for &trees in &[50usize, 200, 400] {
        let forest = forest_with(trees);
        let profile = ForestProfile::analyze(&forest);
        let selected: Vec<usize> = (0..5).collect();
        let domains = build_domains(&profile, &selected, SamplingStrategy::AllThresholds)
            .expect("domain construction");
        let sample = generate(&forest, &domains, 300, true, 3).expect("D* generation");
        for (name, strategy) in [
            ("pair_gain", InteractionStrategy::PairGain),
            ("count_path", InteractionStrategy::CountPath),
            ("gain_path", InteractionStrategy::GainPath),
            (
                "h_stat",
                InteractionStrategy::HStat {
                    eval_points: 60,
                    background: 60,
                },
            ),
        ] {
            g.bench_with_input(BenchmarkId::new(name, trees), &trees, |b, _| {
                b.iter(|| {
                    rank_interactions(&forest, &profile, &selected, strategy, Some(&sample))
                        .unwrap()
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
