//! Micro-benchmarks for the GAM substrate: B-spline evaluation and
//! full penalized fits (Gaussian single-solve vs logit PIRLS, with and
//! without a tensor term).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gef_gam::{fit, BSplineBasis, GamSpec, LambdaSelection, TermSpec};

fn synth(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut state = 23u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let xs: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| next()).collect()).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| (x[0] * 6.0).sin() + x[1] * 2.0 + x[0] * x[1])
        .collect();
    (xs, ys)
}

fn bench_bspline_eval(c: &mut Criterion) {
    let basis = BSplineBasis::new(20, 3, 0.0, 1.0).unwrap();
    c.bench_function("bspline_eval_sparse", |b| {
        let mut x = 0.0;
        b.iter(|| {
            x = (x + 0.001) % 1.0;
            black_box(basis.eval_sparse(black_box(x)))
        });
    });
}

fn bench_gam_fit(c: &mut Criterion) {
    let mut g = c.benchmark_group("gam_fit");
    g.sample_size(10);
    let (xs, ys) = synth(10_000, 2);
    g.bench_function("gaussian_2splines_gcv_n10k", |b| {
        let spec = GamSpec::regression(vec![
            TermSpec::spline(0, (0.0, 1.0)),
            TermSpec::spline(1, (0.0, 1.0)),
        ]);
        b.iter(|| fit(&spec, &xs, &ys).unwrap());
    });
    g.bench_function("gaussian_2splines_plus_tensor_n10k", |b| {
        let spec = GamSpec::regression(vec![
            TermSpec::spline(0, (0.0, 1.0)),
            TermSpec::spline(1, (0.0, 1.0)),
            TermSpec::tensor((0, 1), ((0.0, 1.0), (0.0, 1.0))),
        ]);
        b.iter(|| fit(&spec, &xs, &ys).unwrap());
    });
    let probs: Vec<f64> = ys.iter().map(|&y| f64::from(y > 1.0)).collect();
    g.bench_function("logit_2splines_fixed_lambda_n10k", |b| {
        let spec = GamSpec {
            lambda: LambdaSelection::Fixed(1.0),
            ..GamSpec::classification(vec![
                TermSpec::spline(0, (0.0, 1.0)),
                TermSpec::spline(1, (0.0, 1.0)),
            ])
        };
        b.iter(|| fit(&spec, &xs, &probs).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_bspline_eval, bench_gam_fit);
criterion_main!(benches);
