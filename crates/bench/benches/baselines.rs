//! Baseline-explainer benches, backing the paper's Sec. 5.3 efficiency
//! argument: SHAP's cost scales with the number of instances analysed
//! (per-instance TreeSHAP), while GEF pays a one-off training cost —
//! compare `treeshap/per_instance` × dataset size with
//! `gef_explain` in `pipeline.rs`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gef_baselines::lime::{explain as lime_explain, scales_from_forest, LimeConfig};
use gef_baselines::treeshap::shap_values;
use gef_data::synthetic::make_d_prime;
use gef_forest::{Forest, GbdtParams, GbdtTrainer};

fn forest_with(num_trees: usize) -> Forest {
    let data = make_d_prime(4_000, 1);
    GbdtTrainer::new(GbdtParams {
        num_trees,
        num_leaves: 32,
        learning_rate: 0.05,
        ..Default::default()
    })
    .fit(&data.xs, &data.ys)
    .unwrap()
}

fn bench_treeshap(c: &mut Criterion) {
    let mut g = c.benchmark_group("treeshap_per_instance");
    let x = vec![0.3, 0.6, 0.5, 0.2, 0.8];
    for &trees in &[50usize, 200, 400] {
        let forest = forest_with(trees);
        g.bench_with_input(BenchmarkId::from_parameter(trees), &trees, |b, _| {
            b.iter(|| black_box(shap_values(&forest, black_box(&x))));
        });
    }
    g.finish();
}

fn bench_lime(c: &mut Criterion) {
    let forest = forest_with(200);
    let scales = scales_from_forest(&forest);
    let x = vec![0.3, 0.6, 0.5, 0.2, 0.8];
    let mut g = c.benchmark_group("lime_per_instance");
    g.sample_size(10);
    for &samples in &[1_000usize, 5_000] {
        g.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, &s| {
            let cfg = LimeConfig {
                num_samples: s,
                ..Default::default()
            };
            b.iter(|| lime_explain(&forest, &x, &scales, &cfg));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_treeshap, bench_lime);
criterion_main!(benches);
