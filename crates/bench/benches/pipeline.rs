//! End-to-end GEF pipeline benches: sampling-domain construction per
//! strategy and the full explain() cost. The paper's efficiency claim —
//! GEF's training cost depends on the number of forest thresholds, not
//! on the number of instances to explain — is visible from the flat
//! domain-construction times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gef_core::{GefConfig, GefExplainer, SamplingStrategy};
use gef_data::synthetic::make_d_prime;
use gef_forest::{Forest, GbdtParams, GbdtTrainer};

fn forest() -> Forest {
    let data = make_d_prime(4_000, 1);
    GbdtTrainer::new(GbdtParams {
        num_trees: 200,
        num_leaves: 32,
        learning_rate: 0.05,
        ..Default::default()
    })
    .fit(&data.xs, &data.ys)
    .unwrap()
}

fn bench_domains(c: &mut Criterion) {
    let forest = forest();
    let thresholds = gef_forest::importance::feature_thresholds(&forest, 2);
    let mut g = c.benchmark_group("sampling_domain");
    for strategy in [
        SamplingStrategy::AllThresholds,
        SamplingStrategy::KQuantile(500),
        SamplingStrategy::EquiWidth(500),
        SamplingStrategy::KMeans(500),
        SamplingStrategy::EquiSize(500),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(strategy.name()),
            &strategy,
            |b, s| b.iter(|| s.domain(&thresholds)),
        );
    }
    g.finish();
}

fn bench_explain(c: &mut Criterion) {
    let forest = forest();
    let mut g = c.benchmark_group("gef_explain");
    g.sample_size(10);
    for &n in &[5_000usize, 20_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let cfg = GefConfig {
                num_univariate: 5,
                n_samples: n,
                sampling: SamplingStrategy::EquiSize(500),
                ..Default::default()
            };
            b.iter(|| GefExplainer::new(cfg.clone()).explain(&forest).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_domains, bench_explain);
criterion_main!(benches);
