//! Micro-benchmarks for the forest substrate: GBDT training, Random
//! Forest training, and single/batch prediction throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gef_forest::{GbdtParams, GbdtTrainer, Objective, RandomForestParams, RandomForestTrainer};

fn synth(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut state = 17u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    let xs: Vec<Vec<f64>> = (0..n).map(|_| (0..d).map(|_| next()).collect()).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x[0] * 2.0 + (x[1] * 7.0).sin() + x[2] * x[3])
        .collect();
    (xs, ys)
}

fn bench_gbdt_train(c: &mut Criterion) {
    let mut g = c.benchmark_group("gbdt_train");
    g.sample_size(10);
    for &(n, trees) in &[(2_000usize, 50usize), (8_000, 100)] {
        let (xs, ys) = synth(n, 5);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_t{trees}")),
            &(xs, ys),
            |b, (xs, ys)| {
                let params = GbdtParams {
                    num_trees: trees,
                    num_leaves: 32,
                    learning_rate: 0.1,
                    ..Default::default()
                };
                b.iter(|| GbdtTrainer::new(params.clone()).fit(xs, ys).unwrap());
            },
        );
    }
    g.finish();
}

fn bench_rf_train(c: &mut Criterion) {
    let mut g = c.benchmark_group("rf_train");
    g.sample_size(10);
    let (xs, ys) = synth(2_000, 5);
    g.bench_function("n2000_t25", |b| {
        let params = RandomForestParams {
            num_trees: 25,
            max_depth: Some(10),
            ..Default::default()
        };
        b.iter(|| {
            RandomForestTrainer::new(params.clone())
                .fit(&xs, &ys)
                .unwrap()
        });
    });
    g.finish();
}

fn bench_predict(c: &mut Criterion) {
    let (xs, ys) = synth(4_000, 5);
    let forest = GbdtTrainer::new(GbdtParams {
        num_trees: 300,
        num_leaves: 32,
        learning_rate: 0.05,
        objective: Objective::RegressionL2,
        ..Default::default()
    })
    .fit(&xs, &ys)
    .unwrap();
    let mut g = c.benchmark_group("predict");
    g.bench_function("single_300trees", |b| {
        b.iter(|| black_box(forest.predict(black_box(&xs[7]))));
    });
    g.bench_function("batch4k_300trees", |b| {
        b.iter(|| black_box(forest.predict_batch(black_box(&xs)).expect("no deadline")));
    });
    g.finish();
}

criterion_group!(benches, bench_gbdt_train, bench_rf_train, bench_predict);
criterion_main!(benches);
