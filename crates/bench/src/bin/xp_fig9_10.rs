//! Figs. 9 & 10 — global explanations: GEF splines vs SHAP dependence.
//!
//! For Superconductivity(sim) (Equi-Size, K = 4,500, 7 splines) and
//! Census(sim) (K-Quantile, K = 800, 5 splines + 1 interaction), prints
//! each top component's GEF spline (with 95% credible band) side by
//! side with the binned mean of the SHAP dependence values for the same
//! feature — the consistency check the paper makes visually: the trend
//! of the two explanations should agree.

use gef_baselines::pdp::shap_dependence;
use gef_bench::{f3, note_degradations, print_table, train_paper_forest, RunSize};
use gef_core::{GefConfig, GefExplainer, InteractionStrategy, SamplingStrategy};
use gef_data::census::{census_processed, census_sim_sized};
use gef_data::superconductivity::superconductivity_sim_sized;
use gef_data::Dataset;
use gef_forest::{Forest, Objective};
use gef_linalg::stats::pearson;

fn main() {
    let size = RunSize::from_args();

    // ----- Fig. 9: Superconductivity (regression) -----
    let data = superconductivity_sim_sized(size.pick(3_000, 10_000, 21_263), 1);
    let (train, test) = data.train_test_split(0.8, 2);
    let forest = train_paper_forest(&train.xs, &train.ys, size, Objective::RegressionL2);
    println!("# Fig. 9 — Superconductivity(sim): GEF splines vs SHAP dependence");
    let cfg = GefConfig {
        num_univariate: 7,
        num_interactions: 0,
        sampling: SamplingStrategy::EquiSize(size.pick(300, 1_500, 4_500)),
        n_samples: size.pick(6_000, 20_000, 100_000),
        seed: 5,
        ..Default::default()
    };
    compare(&forest, &cfg, &test, size, 4);

    // ----- Fig. 10: Census (classification) -----
    let census = census_processed(&census_sim_sized(size.pick(3_000, 10_000, 48_842), 1));
    let (ctrain, ctest) = census.train_test_split(0.8, 2);
    let cforest = train_paper_forest(&ctrain.xs, &ctrain.ys, size, Objective::BinaryLogistic);
    println!("\n# Fig. 10 — Census(sim): GEF splines vs SHAP dependence");
    let ccfg = GefConfig {
        num_univariate: 5,
        num_interactions: 1,
        sampling: SamplingStrategy::KQuantile(size.pick(100, 400, 800)),
        interaction_strategy: InteractionStrategy::CountPath,
        n_samples: size.pick(6_000, 20_000, 100_000),
        seed: 5,
        ..Default::default()
    };
    compare(&cforest, &ccfg, &ctest, size, 4);
    gef_bench::emit_telemetry("xp_fig9_10");
}

/// Print the top components of the GEF explanation next to binned SHAP
/// dependence means, and their rank correlation.
fn compare(forest: &Forest, cfg: &GefConfig, test: &Dataset, size: RunSize, top: usize) {
    let exp = GefExplainer::new(cfg.clone())
        .explain(forest)
        .expect("pipeline succeeds");
    note_degradations("xp_fig9_10", &exp);
    println!(
        "fidelity on D*: RMSE = {}, R2 = {}; selected features: {:?}",
        f3(exp.fidelity_rmse),
        f3(exp.fidelity_r2),
        exp.selected_features
            .iter()
            .map(|&f| test.feature_names[f].clone())
            .collect::<Vec<_>>()
    );
    if !exp.interactions.is_empty() {
        println!(
            "selected interaction: {:?}",
            exp.interactions
                .iter()
                .map(|&(a, b)| (test.feature_names[a].clone(), test.feature_names[b].clone()))
                .collect::<Vec<_>>()
        );
    }
    let shap_sample = size.pick(60, 150, 400).min(test.len());
    for &feature in exp.selected_features.iter().take(top) {
        let name = &test.feature_names[feature];
        let curve = match exp.component_curve(feature, 9) {
            Ok(c) => c,
            Err(_) => continue,
        };
        // SHAP dependence for the same feature on original test data,
        // binned to the GEF grid.
        let dep = shap_dependence(forest, &test.xs[..shap_sample], feature);
        let rows: Vec<Vec<String>> = curve
            .iter()
            .map(|&(v, est, lo, hi)| {
                // Mean SHAP value of instances nearest this grid point.
                let (mut s, mut c) = (0.0, 0usize);
                for &(fv, phi) in &dep {
                    let nearest = curve
                        .iter()
                        .map(|&(gv, ..)| (gv - fv).abs())
                        .enumerate()
                        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                        .map(|(i, _)| curve[i].0)
                        .unwrap_or(v);
                    if nearest == v {
                        s += phi;
                        c += 1;
                    }
                }
                let shap_mean = if c > 0 { s / c as f64 } else { f64::NAN };
                vec![
                    f3(v),
                    f3(est),
                    f3(lo),
                    f3(hi),
                    if c > 0 { f3(shap_mean) } else { "-".into() },
                    c.to_string(),
                ]
            })
            .collect();
        println!("\n## {name} (GEF spline vs SHAP dependence)");
        print_table(
            &["value", "spline", "lo95", "hi95", "SHAP mean", "n"],
            &rows,
        );
        // Trend agreement: correlation between spline and per-instance
        // SHAP values evaluated through the spline's x.
        let spline_at: Vec<f64> = dep
            .iter()
            .map(|&(fv, _)| {
                // Piecewise-nearest interpolation of the curve.
                curve
                    .iter()
                    .min_by(|a, b| {
                        (a.0 - fv)
                            .abs()
                            .partial_cmp(&(b.0 - fv).abs())
                            .expect("finite")
                    })
                    .map(|&(_, e, ..)| e)
                    .unwrap_or(0.0)
            })
            .collect();
        let phis: Vec<f64> = dep.iter().map(|&(_, p)| p).collect();
        println!(
            "trend agreement (corr spline vs SHAP): {}",
            f3(pearson(&spline_at, &phis))
        );
    }
    println!(
        "Expected shape (paper): the impact trend of each feature is the same \
         in GEF and SHAP (positive correlation), with GEF adding credible bands."
    );
}
