//! Table 2 — fidelity of the explainer `Γ` on the *original* test data.
//!
//! The paper's twist: although GEF never sees the original dataset, we
//! can still measure (in this synthetic setting) how well `Γ` tracks
//! (i) the forest's predictions `T(x)` and (ii) the original labels
//! `y`, both on the held-out split of `D'` and `D''`. Fixing
//! `F'' = {(f1,f2), (f1,f5), (f2,f5)}` as the paper does.

use gef_bench::{f3, note_degradations, print_table, train_paper_forest, RunSize};
use gef_core::{GefConfig, GefExplainer, SamplingStrategy};
use gef_data::metrics::r2;
use gef_data::synthetic::{make_d_prime, make_d_second, NUM_FEATURES};
use gef_forest::Objective;

fn main() {
    let size = RunSize::from_args();
    let n = size.pick(3_000, 10_000, 10_000);
    // The paper's fixed interaction set, 0-based: (f1,f2),(f1,f5),(f2,f5).
    let pairs = [(0usize, 1usize), (0, 4), (1, 4)];
    println!("# Table 2 — R2 of the forest T and the explainer GAM");

    let mut rows = Vec::new();
    let mut headers: Vec<String> = vec!["model".into()];
    for (name, data, n_inter) in [
        ("D'", make_d_prime(n, 1), 0usize),
        ("D''", make_d_second(n, &pairs, 1), 3usize),
    ] {
        let (train, test) = data.train_test_split(0.8, 2);
        let forest = train_paper_forest(&train.xs, &train.ys, size, Objective::RegressionL2);
        let forest_preds = forest.predict_batch(&test.xs).expect("no deadline armed");
        let forest_r2_y = r2(&forest_preds, &test.ys);

        let cfg = GefConfig {
            num_univariate: NUM_FEATURES,
            num_interactions: n_inter,
            sampling: SamplingStrategy::EquiSize(size.pick(500, 4_000, 12_000)),
            n_samples: size.pick(10_000, 50_000, 100_000),
            seed: 3,
            ..Default::default()
        };
        let exp = GefExplainer::new(cfg)
            .explain(&forest)
            .expect("pipeline succeeds");
        note_degradations("xp_table2", &exp);
        let gam_preds: Vec<f64> = test.xs.iter().map(|x| exp.predict(x)).collect();
        let gam_r2_forest = r2(&gam_preds, &forest_preds);
        let gam_r2_y = r2(&gam_preds, &test.ys);

        headers.push(format!("{name}: T(x)|x"));
        headers.push(format!("{name}: y|x"));
        if rows.is_empty() {
            rows.push(vec!["Forest (T)".to_string()]);
            rows.push(vec!["Explainer (GAM)".to_string()]);
        }
        rows[0].push("-".to_string());
        rows[0].push(f3(forest_r2_y));
        rows[1].push(f3(gam_r2_forest));
        rows[1].push(f3(gam_r2_y));

        if n_inter > 0 {
            println!(
                "selected interactions on {name}: {:?} (true: {:?})",
                exp.interactions, pairs
            );
        }
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!();
    print_table(&header_refs, &rows);
    println!(
        "\nPaper reference: Forest y|x: 0.980 (D'), 0.986 (D''); \
         GAM T(x)|x: 0.986 (D'), 0.938 (D''); GAM y|x: 0.982 (D'), 0.931 (D'').\n\
         Expected shape: GAM R2 vs T(x) high on both; GAM nearly as accurate as \
         the forest on the original labels (even slightly better on D')."
    );
    gef_bench::emit_telemetry("xp_table2");
}
