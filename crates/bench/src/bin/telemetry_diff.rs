//! Diff two gef-trace JSON telemetry reports on their *deterministic*
//! fields, ignoring everything timing-dependent.
//!
//! ```text
//! telemetry_diff <report_a.json> <report_b.json>
//! ```
//!
//! `ci.sh` runs the same workload twice (`GEF_THREADS=1` and
//! `GEF_THREADS=4`), emits a report from each, and pipes both through
//! this tool: the gef-par determinism contract says the two runs must
//! agree on every value-carrying signal, so any surviving difference is
//! a real nondeterminism bug, not noise.
//!
//! Compared (exactly):
//! * span paths → occurrence counts;
//! * histogram names → observation counts;
//! * counter names → accumulated values;
//! * gauge names → final values (bit-exact f64);
//! * the event sequence → names and field maps (bit-exact f64).
//!
//! Ignored:
//! * anything `par.`-prefixed (worker/chunk bookkeeping legitimately
//!   varies with thread count — serial runs emit none of it);
//! * anything `mem.`- or `heap.`-prefixed (allocation deltas depend on
//!   chunking, allocator state, and whether the tracking allocator is
//!   installed — they are observability, not pipeline semantics);
//! * anything `ctx.`- or `window.`-prefixed (request-scoped trace-id
//!   bookkeeping and rolling SLO-window samples — per-run identifiers
//!   and wall-clock-window state, never pipeline semantics);
//! * timing statistics (`*_ns` aggregates, `wall_ns`,
//!   `created_unix_ms`) and `events_dropped` / `label`.
//!
//! Exits 0 when the reports match, 1 with a printed diff, 2 on usage
//! errors or an unreadable/malformed report (a missing file is an
//! operator mistake, not a determinism verdict).

use gef_trace::json::{parse, JsonValue};

const HELP: &str = "\
usage: telemetry_diff <report_a.json> <report_b.json>

Diffs two gef-trace JSON telemetry reports on their deterministic
fields (span/histogram counts, counters, gauges, the event sequence),
ignoring par.*/mem.*/heap.*/ctx.*/window.* signals and timing
statistics.

exit codes:
  0  reports agree on every deterministic field
  1  reports differ (the diff is printed to stderr)
  2  usage error, unreadable file, or malformed JSON";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return;
    }
    if args.len() != 3 {
        eprintln!("{HELP}");
        std::process::exit(2);
    }
    let a = load(&args[1]);
    let b = load(&args[2]);
    let diffs = diff_reports(&a, &b);
    if diffs.is_empty() {
        println!(
            "telemetry_diff: {} and {} agree on all deterministic fields",
            args[1], args[2]
        );
        return;
    }
    eprintln!(
        "telemetry_diff: {} difference(s) between {} and {}:",
        diffs.len(),
        args[1],
        args[2]
    );
    for d in &diffs {
        eprintln!("  {d}");
    }
    std::process::exit(1);
}

/// Read and parse one report, exiting 2 with a one-line diagnostic on
/// failure — an unreadable input is an operator error, never a panic
/// and never a (mis)report of nondeterminism.
fn load(path: &str) -> JsonValue {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("telemetry_diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse(&text).unwrap_or_else(|e| {
        eprintln!("telemetry_diff: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

/// Signals excluded from the determinism diff: `par.`-prefixed
/// (thread-count bookkeeping, including hierarchical span paths with a
/// `par.`-prefixed segment), `mem.` / `heap.`-prefixed (allocation
/// observability — counts vary with chunking and allocator state even
/// when the pipeline's numeric outputs are bit-identical), and
/// `ctx.` / `window.`-prefixed (request trace-id context and rolling
/// SLO-window state — per-run identifiers, not pipeline semantics).
fn is_excluded_name(name: &str) -> bool {
    name.split('/').any(|seg| {
        seg.starts_with("par.")
            || seg.starts_with("mem.")
            || seg.starts_with("heap.")
            || seg.starts_with("ctx.")
            || seg.starts_with("window.")
    })
}

fn str_field(v: &JsonValue, key: &str) -> String {
    v.get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or_default()
        .to_string()
}

fn num_field(v: &JsonValue, key: &str) -> f64 {
    v.get(key).and_then(JsonValue::as_f64).unwrap_or(f64::NAN)
}

/// Collect `name -> value-of(key)` from an array of objects, skipping
/// excluded (`par.*` / `mem.*` / `heap.*`) entries.
fn named_values(report: &JsonValue, section: &str, key: &str) -> Vec<(String, f64)> {
    report
        .get(section)
        .and_then(JsonValue::as_array)
        .unwrap_or(&[])
        .iter()
        .filter(|item| !is_excluded_name(&str_field(item, "name")))
        .map(|item| (str_field(item, "name"), num_field(item, key)))
        .collect()
}

fn diff_named(diffs: &mut Vec<String>, what: &str, a: &[(String, f64)], b: &[(String, f64)]) {
    for (name, va) in a {
        match b.iter().find(|(n, _)| n == name) {
            None => diffs.push(format!("{what} `{name}` only in first report")),
            Some((_, vb)) if va.to_bits() != vb.to_bits() => {
                diffs.push(format!("{what} `{name}`: {va} vs {vb}"))
            }
            Some(_) => {}
        }
    }
    for (name, _) in b {
        if !a.iter().any(|(n, _)| n == name) {
            diffs.push(format!("{what} `{name}` only in second report"));
        }
    }
}

fn event_key(e: &JsonValue) -> String {
    let name = str_field(e, "name");
    let mut fields: Vec<String> = Vec::new();
    if let Some(JsonValue::Object(pairs)) = e.get("fields") {
        for (k, v) in pairs {
            let bits = v.as_f64().unwrap_or(f64::NAN).to_bits();
            fields.push(format!("{k}={bits:#x}"));
        }
    }
    format!("{name}{{{}}}", fields.join(","))
}

fn diff_reports(a: &JsonValue, b: &JsonValue) -> Vec<String> {
    let mut diffs = Vec::new();

    for (section, key, what) in [
        ("spans", "count", "span count"),
        ("histograms", "count", "histogram count"),
        ("counters", "value", "counter"),
        ("gauges", "value", "gauge"),
    ] {
        diff_named(
            &mut diffs,
            what,
            &named_values(a, section, key),
            &named_values(b, section, key),
        );
    }

    let events = |r: &JsonValue| -> Vec<String> {
        r.get("events")
            .and_then(JsonValue::as_array)
            .unwrap_or(&[])
            .iter()
            .filter(|e| !is_excluded_name(&str_field(e, "name")))
            .map(event_key)
            .collect()
    };
    let (ea, eb) = (events(a), events(b));
    if ea.len() != eb.len() {
        diffs.push(format!("event count: {} vs {}", ea.len(), eb.len()));
    }
    for (i, (x, y)) in ea.iter().zip(&eb).enumerate() {
        if x != y {
            diffs.push(format!("event[{i}]: {x} vs {y}"));
            break; // one sequence divergence is enough to report
        }
    }
    diffs
}
