//! Thread-scaling sweep for the gef-par runtime (see PERFORMANCE.md).
//!
//! Measures serial-vs-parallel wall-clock for the three hottest phases
//! of the GEF pipeline — forest training, D* labeling, and the λ-grid
//! GCV search — at `GEF_THREADS` ∈ {1, 2, 4, 8} (in-process via
//! [`gef_par::set_threads`], so one run covers the whole sweep), and
//! writes the machine-readable trajectory to `BENCH_scaling.json`.
//!
//! Every configuration uses [`gef_bench::timed_run_warmed`]: the worker
//! pool is prestarted and one untimed warmup iteration runs first, so
//! thread start-up and cold caches are never charged to a measurement.
//!
//! A second mode, `--ci-label <label>`, runs one pipeline explanation at
//! the *environment-configured* `GEF_THREADS` and emits the collected
//! telemetry under `<label>` — the hook `ci.sh` uses to diff telemetry
//! reports between thread counts.

use gef_bench::{print_table, timed_run_warmed, train_paper_forest, RunSize, Timing};
use gef_core::{GefConfig, GefExplainer, SamplingStrategy};
use gef_data::synthetic::{make_d_prime, NUM_FEATURES};
use gef_forest::Objective;
use gef_gam::{fit, GamSpec, TermSpec};
use gef_trace::json::JsonWriter;

/// Thread counts swept (the PERFORMANCE.md protocol).
const SWEEP: [usize; 4] = [1, 2, 4, 8];

struct PhaseTimes {
    threads: usize,
    train: Timing,
    label: Timing,
    gcv: Timing,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--ci-label") {
        let label = args
            .get(pos + 1)
            .expect("--ci-label requires a label argument");
        ci_run(label);
        return;
    }
    sweep();
}

/// One deterministic pipeline explanation at the env-configured thread
/// count, telemetry emitted under `label`. `ci.sh` runs this twice
/// (GEF_THREADS=1 and 4) and diffs the reports' non-timing fields.
fn ci_run(label: &str) {
    let size = RunSize::from_args();
    let data = make_d_prime(size.pick(2_000, 6_000, 12_000), 1);
    let forest = train_paper_forest(&data.xs, &data.ys, size, Objective::RegressionL2);
    let exp = GefExplainer::new(GefConfig {
        num_univariate: NUM_FEATURES,
        num_interactions: 1,
        sampling: SamplingStrategy::EquiSize(size.pick(300, 1_000, 4_000)),
        n_samples: size.pick(4_000, 20_000, 50_000),
        seed: 3,
        ..Default::default()
    })
    .explain(&forest)
    .expect("pipeline succeeds");
    println!(
        "[{label}] threads={} lambda={:e} rmse={:.6} r2={:.6} degradations={}",
        gef_par::threads(),
        exp.gam.summary().lambda,
        exp.fidelity_rmse,
        exp.fidelity_r2,
        exp.degradations.len()
    );
    gef_bench::emit_telemetry(label);
}

fn sweep() {
    let size = RunSize::from_args();
    let logical_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "# gef-par scaling sweep ({} logical core(s), {:?} run)",
        logical_cores, size
    );

    // Shared inputs, built once so every thread count measures identical
    // work. D' for training; a large uniform batch for labeling.
    let data = make_d_prime(size.pick(3_000, 10_000, 20_000), 1);
    let label_n = size.pick(30_000, 120_000, 400_000);
    let gam_n = size.pick(4_000, 12_000, 30_000);

    let mut results: Vec<PhaseTimes> = Vec::new();
    for &t in &SWEEP {
        gef_par::set_threads(t);
        gef_par::prestart();

        let (forest, train) = timed_run_warmed("xp.scaling.train", || {
            train_paper_forest(&data.xs, &data.ys, size, Objective::RegressionL2)
        });

        let (label_xs, _) = gef_bench::common_fidelity_set(&forest, label_n, 7);
        let (labels, label) = timed_run_warmed("xp.scaling.label", || {
            forest.predict_batch(&label_xs).expect("no deadline armed")
        });

        // λ-grid GCV search on a surrogate-style spline GAM over the
        // labeled batch (the same shape the pipeline's gam_fit stage
        // solves).
        let gam_xs = &label_xs[..gam_n.min(label_xs.len())];
        let gam_ys = &labels[..gam_xs.len()];
        let terms: Vec<TermSpec> = (0..NUM_FEATURES)
            .map(|f| {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for x in gam_xs {
                    lo = lo.min(x[f]);
                    hi = hi.max(x[f]);
                }
                TermSpec::spline(f, (lo, hi))
            })
            .collect();
        let spec = GamSpec::regression(terms);
        let (gam, gcv) = timed_run_warmed("xp.scaling.gcv", || {
            fit(&spec, gam_xs, gam_ys).expect("GAM fit succeeds")
        });

        println!(
            "threads={t}: train {:.3}s, label {:.3}s, gcv {:.3}s \
             (median of {}; selected lambda {:e})",
            train.median_s,
            label.median_s,
            gcv.median_s,
            train.iters,
            gam.summary().lambda
        );
        results.push(PhaseTimes {
            threads: t,
            train,
            label,
            gcv,
        });
    }
    gef_par::set_threads(1);

    let base = &results[0];
    let mut rows = Vec::new();
    for r in &results {
        rows.push(vec![
            r.threads.to_string(),
            format!("{:.3}", r.train.median_s),
            format!("{:.2}x", base.train.median_s / r.train.median_s.max(1e-12)),
            format!("{:.3}", r.label.median_s),
            format!("{:.2}x", base.label.median_s / r.label.median_s.max(1e-12)),
            format!("{:.3}", r.gcv.median_s),
            format!("{:.2}x", base.gcv.median_s / r.gcv.median_s.max(1e-12)),
        ]);
    }
    println!();
    print_table(
        &[
            "threads",
            "train (s)",
            "speedup",
            "label (s)",
            "speedup",
            "gcv (s)",
            "speedup",
        ],
        &rows,
    );

    let json = render_json(size, logical_cores, &results);
    std::fs::write("BENCH_scaling.json", &json).expect("write BENCH_scaling.json");
    println!("\nwrote BENCH_scaling.json");
    gef_bench::emit_telemetry("xp_scaling");
}

fn render_json(size: RunSize, logical_cores: usize, results: &[PhaseTimes]) -> String {
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64);
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", "gef-bench/scaling/v2");
    w.field_u64("created_unix_ms", unix_ms);
    w.field_str("run_size", &format!("{size:?}"));
    w.key("machine");
    w.begin_object();
    w.field_u64("logical_cores", logical_cores as u64);
    w.field_str("os", std::env::consts::OS);
    w.field_str("arch", std::env::consts::ARCH);
    w.end_object();
    w.key("sweep");
    w.begin_array();
    let base = &results[0];
    for r in results {
        w.begin_object();
        w.field_u64("threads", r.threads as u64);
        r.train.write_json_fields(&mut w, "forest_train");
        r.label.write_json_fields(&mut w, "dstar_label");
        r.gcv.write_json_fields(&mut w, "gcv_search");
        w.field_f64(
            "forest_train_speedup",
            base.train.median_s / r.train.median_s.max(1e-12),
        );
        w.field_f64(
            "dstar_label_speedup",
            base.label.median_s / r.label.median_s.max(1e-12),
        );
        w.field_f64(
            "gcv_search_speedup",
            base.gcv.median_s / r.gcv.median_s.max(1e-12),
        );
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let mut out = w.finish();
    out.push('\n');
    out
}
