//! Future-work experiment (paper Sec. 6): GEF on Random Forests.
//!
//! The paper conjectures GEF transfers to any tree ensemble because no
//! assumption is made about how the forest was trained. This experiment
//! runs the identical pipeline on a GBDT and an RF trained on the same
//! `D'` data and compares fidelity and component reconstruction.

use gef_bench::{f3, note_degradations, print_table, RunSize};
use gef_core::{GefConfig, GefExplainer, SamplingStrategy};
use gef_data::metrics::{r2, rmse};
use gef_data::synthetic::{generator, make_d_prime, NUM_FEATURES};
use gef_forest::{Forest, GbdtParams, GbdtTrainer, RandomForestParams, RandomForestTrainer};

fn main() {
    let size = RunSize::from_args();
    let data = make_d_prime(size.pick(3_000, 10_000, 10_000), 1);
    let (train, test) = data.train_test_split(0.8, 2);

    let gbdt = GbdtTrainer::new(GbdtParams {
        num_trees: size.pick(60, 300, 1000),
        num_leaves: 32,
        learning_rate: size.pick(0.1, 0.05, 0.01),
        ..Default::default()
    })
    .fit(&train.xs, &train.ys)
    .expect("gbdt trains");
    let rf = RandomForestTrainer::new(RandomForestParams {
        num_trees: size.pick(30, 100, 300),
        min_samples_leaf: 4,
        mtry: Some(3),
        seed: 7,
        ..Default::default()
    })
    .fit(&train.xs, &train.ys)
    .expect("rf trains");

    println!("# Future work — GEF applied to Random Forests (vs GBDT)");
    let mut rows = Vec::new();
    for (name, forest) in [("GBDT", &gbdt), ("Random Forest", &rf)] {
        let forest: &Forest = forest;
        let exp = GefExplainer::new(GefConfig {
            num_univariate: NUM_FEATURES,
            sampling: SamplingStrategy::EquiSize(size.pick(300, 2_000, 12_000)),
            n_samples: size.pick(8_000, 40_000, 100_000),
            seed: 3,
            ..Default::default()
        })
        .explain(forest)
        .expect("pipeline succeeds");
        note_degradations("xp_rf", &exp);

        // Forest accuracy and surrogate fidelity on the original test set.
        let fpred = forest.predict_batch(&test.xs).expect("no deadline armed");
        let gpred: Vec<f64> = test.xs.iter().map(|x| exp.predict(x)).collect();

        // Mean component reconstruction error across the 5 generators.
        let mut comp_err = 0.0;
        let mut n_comp = 0usize;
        for &f in &exp.selected_features {
            if let Ok(curve) = exp.component_curve(f, 41) {
                let interior: Vec<_> = curve
                    .iter()
                    .filter(|&&(v, ..)| (0.1..=0.9).contains(&v))
                    .collect();
                if interior.len() < 5 {
                    continue;
                }
                let truth: Vec<f64> = interior.iter().map(|&&(v, ..)| generator(f, v)).collect();
                let t_mean = truth.iter().sum::<f64>() / truth.len() as f64;
                let est: Vec<f64> = interior.iter().map(|&&(_, e, ..)| e).collect();
                let centered: Vec<f64> = truth.iter().map(|t| t - t_mean).collect();
                comp_err += rmse(&est, &centered);
                n_comp += 1;
            }
        }
        rows.push(vec![
            name.to_string(),
            forest.trees.len().to_string(),
            f3(r2(&fpred, &test.ys)),
            f3(exp.fidelity_r2),
            f3(r2(&gpred, &fpred)),
            f3(comp_err / n_comp.max(1) as f64),
        ]);
    }
    println!();
    print_table(
        &[
            "forest",
            "trees",
            "forest R2 vs y",
            "GAM R2 on D*",
            "GAM R2 vs T(x)",
            "mean comp. RMSE",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: both ensembles are explained with high fidelity; \
         GEF makes no assumption about the training algorithm."
    );
    gef_bench::emit_telemetry("xp_rf");
}
