//! Fig. 7 — Superconductivity: univariate/bivariate component grid.
//!
//! Varies the number of splines `|F'|` and interaction terms `|F''|`
//! (All-Thresholds sampling, Count-Path interactions, as in the paper)
//! and prints the fidelity RMSE on the `D*` test split for every cell.
//! The paper's reading: accuracy improves with components, but 7
//! splines already come within ~5% of the maximum configuration, and
//! interactions add little on top of 7 splines.

use gef_bench::{f3, note_degradations, print_table, train_paper_forest, RunSize};
use gef_core::{GefConfig, GefExplainer, InteractionStrategy, SamplingStrategy};
use gef_data::superconductivity::superconductivity_sim_sized;
use gef_forest::Objective;

fn main() {
    let size = RunSize::from_args();
    let data = superconductivity_sim_sized(size.pick(3_000, 10_000, 21_263), 1);
    let (train, _) = data.train_test_split(0.8, 2);
    let forest = train_paper_forest(&train.xs, &train.ys, size, Objective::RegressionL2);
    println!(
        "# Fig. 7 — Superconductivity(sim): component grid ({} trees, {} features used)",
        forest.trees.len(),
        gef_forest::importance::FeatureStats::collect(&forest)
            .ranked_by_gain()
            .len()
    );

    let splines: Vec<usize> = size.pick(vec![1, 3, 7], vec![1, 3, 5, 7, 9], vec![1, 3, 5, 7, 9]);
    let inters: Vec<usize> = size.pick(vec![0, 2], vec![0, 2, 4, 8], vec![0, 2, 4, 8]);
    let n_samples = size.pick(6_000, 20_000, 100_000);

    let mut rows = Vec::new();
    for &s in &splines {
        let mut row = vec![format!("{s} splines")];
        for &q in &inters {
            let cfg = GefConfig {
                num_univariate: s,
                num_interactions: q,
                sampling: SamplingStrategy::AllThresholds,
                interaction_strategy: InteractionStrategy::CountPath,
                n_samples,
                seed: 5,
                ..Default::default()
            };
            let exp = GefExplainer::new(cfg)
                .explain(&forest)
                .expect("pipeline succeeds");
            note_degradations("xp_fig7", &exp);
            row.push(f3(exp.fidelity_rmse));
        }
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["".into()];
    headers.extend(inters.iter().map(|q| format!("{q} interactions")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!();
    print_table(&header_refs, &rows);
    println!(
        "\nExpected shape (paper): RMSE falls with more components; the marginal \
         value of interactions at 7+ splines is small (~2%)."
    );
    gef_bench::emit_telemetry("xp_fig7");
}
