//! Seeded chaos sweep over the `GEF_FAULTS` schedule space.
//!
//! Generates `--schedules` random fault schedules (every registered
//! injection site crossed with the `always` / `first:N` / `hits:I|J` /
//! `seeded:SEED:PROB` trigger families), runs the full GEF pipeline
//! under each with a hard deadline armed, and asserts the robustness
//! invariant:
//!
//! > Every run ends in a **valid explanation** (finite fidelity and
//! > predictions, degradations recorded when the ladder stepped) or a
//! > **typed `GefError`**, within the deadline — never a panic, never
//! > a hang.
//!
//! The sweep is fully deterministic per `--seed`: the same seed
//! regenerates the same schedules, and each schedule is printed in
//! replayable `GEF_FAULTS` syntax so a violation reproduces with
//!
//! ```text
//! GEF_FAULTS="<schedule>" GEF_DEADLINE_MS=<ms> cargo run ... --bin xp_<experiment>
//! ```
//!
//! Results land in `CHAOS_report.json` (violations first, then every
//! run's outcome). Every non-clean schedule (degraded, typed error, or
//! violation) also archives a flight-recorder incident dump under
//! `results/incidents/` as `chaos-<index>-<cause>.json`; the report's
//! `incidents` array and each run's `incident` field reference them.
//! Exits nonzero when any schedule violates the invariant. Requires
//! `--features fault-injection`.
//!
//! Flags: `--schedules N` (default 100), `--seed S` (default 7),
//! `--deadline-ms D` (default 2000).

use gef_bench::chaos::{random_schedule, SplitMix};
use gef_core::faults::{self, ALL_SITES};
use gef_core::incident;
use gef_core::{GefConfig, GefExplainer, RunBudget, SamplingStrategy};
use gef_forest::{Forest, GbdtParams, GbdtTrainer, Objective};
use gef_trace::json::JsonWriter;
use std::panic::{self, AssertUnwindSafe};
use std::time::{Duration, Instant};

struct RunRecord {
    index: usize,
    schedule: String,
    outcome: &'static str,
    detail: String,
    elapsed_ms: u64,
    degradations: usize,
    fired: u64,
    /// Path of the incident dump archived for this schedule (every
    /// non-clean outcome gets one), when incident dumping is enabled.
    incident: Option<String>,
}

struct Args {
    schedules: usize,
    seed: u64,
    deadline_ms: u64,
}

fn parse_args() -> Args {
    let mut out = Args {
        schedules: 100,
        seed: 7,
        deadline_ms: 2000,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let val = |j: usize| -> u64 {
            argv.get(j)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{} requires an integer argument", argv[j - 1]))
        };
        match argv[i].as_str() {
            "--schedules" => {
                out.schedules = val(i + 1) as usize;
                i += 2;
            }
            "--seed" => {
                out.seed = val(i + 1);
                i += 2;
            }
            "--deadline-ms" => {
                out.deadline_ms = val(i + 1);
                i += 2;
            }
            other => panic!("unknown flag {other:?} (expected --schedules/--seed/--deadline-ms)"),
        }
    }
    out
}

/// Train the two small forests (regression and classification) the
/// sweep explains; built once, before any fault is armed.
fn forests() -> (Forest, Forest) {
    let xs: Vec<Vec<f64>> = (0..900)
        .map(|i| {
            vec![
                (i % 71) as f64 / 71.0,
                (i % 53) as f64 / 53.0,
                (i % 29) as f64 / 29.0,
            ]
        })
        .collect();
    let ys_reg: Vec<f64> = xs
        .iter()
        .map(|x| x[0] * 2.0 + (x[1] * 5.0).sin() - x[2] + 3.0 * x[0] * x[1])
        .collect();
    let ys_cls: Vec<f64> = xs
        .iter()
        .map(|x| f64::from(x[0] + x[1] - x[2] > 0.8))
        .collect();
    let params = |objective| GbdtParams {
        num_trees: 30,
        num_leaves: 8,
        learning_rate: 0.2,
        min_data_in_leaf: 10,
        objective,
        ..Default::default()
    };
    let reg = GbdtTrainer::new(params(Objective::RegressionL2))
        .fit(&xs, &ys_reg)
        .expect("regression forest trains");
    let cls = GbdtTrainer::new(params(Objective::BinaryLogistic))
        .fit(&xs, &ys_cls)
        .expect("classification forest trains");
    (reg, cls)
}

fn chaos_config() -> GefConfig {
    GefConfig {
        num_univariate: 3,
        num_interactions: 1,
        sampling: SamplingStrategy::EquiSize(40),
        n_samples: 1500,
        spline_basis: 10,
        tensor_basis: 5,
        seed: 11,
        ..Default::default()
    }
}

fn main() {
    let args = parse_args();
    let (reg, cls) = forests();
    let explainer = GefExplainer::new(chaos_config());
    let probe = [0.4, 0.6, 0.2];
    // Hang detection is necessarily a wall-clock bound: cooperative
    // checkpoints abort *between* units of work, so one non-stalled
    // unit of slack past the deadline is legitimate; an order of
    // magnitude more is a missed checkpoint.
    let overrun_ms = args.deadline_ms + 3000;

    let mut rng = SplitMix(args.seed);
    let mut runs: Vec<RunRecord> = Vec::with_capacity(args.schedules);
    let mut violations: Vec<usize> = Vec::new();

    println!(
        "# chaos sweep: {} schedules, seed {}, deadline {} ms, sites: {}",
        args.schedules,
        args.seed,
        args.deadline_ms,
        ALL_SITES.join(", ")
    );

    for index in 0..args.schedules {
        let schedule = random_schedule(&mut rng);
        // Per-schedule flight-recorder hygiene: the incident label makes
        // each schedule's dump land in its own file, and resetting the
        // recorder scopes a dump's event window to this run alone.
        incident::set_label(&format!("chaos-{index:03}"));
        gef_trace::recorder::reset();
        let entries = match faults::parse_spec(&schedule) {
            Ok(e) => e,
            Err(err) => {
                // The generator only emits grammar the parser accepts;
                // a parse failure is itself an invariant violation.
                runs.push(RunRecord {
                    index,
                    schedule,
                    outcome: "violation",
                    detail: format!("generated schedule failed to parse: {err}"),
                    elapsed_ms: 0,
                    degradations: 0,
                    fired: 0,
                    incident: None,
                });
                violations.push(index);
                continue;
            }
        };
        faults::reset();
        let armed_sites: Vec<String> = entries.iter().map(|(s, _)| s.clone()).collect();
        for (site, trigger) in entries {
            faults::arm(&site, trigger);
        }
        let budget = RunBudget {
            hard_deadline: Some(Duration::from_millis(args.deadline_ms)),
            soft_deadline: Some(Duration::from_millis(args.deadline_ms * 4 / 5)),
            ..RunBudget::unlimited()
        };
        let forest = if index % 2 == 0 { &reg } else { &cls };

        let start = Instant::now();
        let result = {
            let _scope = budget.enter();
            panic::catch_unwind(AssertUnwindSafe(|| explainer.explain(forest)))
        };
        let elapsed_ms = start.elapsed().as_millis() as u64;
        let fired: u64 = armed_sites.iter().map(|s| faults::fired_count(s)).sum();

        // Classify and archive *before* disarming: the incident dump's
        // `replay_faults` field is rendered from the live fault
        // registry, so resetting first would lose the replay handle.
        let as_path = |p: std::path::PathBuf| p.display().to_string();
        let (outcome, detail, degradations, incident) = match result {
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                let dump = incident::dump_now("panic", &msg).map(as_path);
                ("violation", format!("panicked: {msg}"), 0, dump)
            }
            Ok(Ok(exp)) => {
                let p = exp.predict(&probe);
                if !(exp.fidelity_rmse.is_finite() && exp.fidelity_r2.is_finite() && p.is_finite())
                {
                    let detail = format!(
                        "explanation is not valid: rmse={} r2={} probe={p}",
                        exp.fidelity_rmse, exp.fidelity_r2
                    );
                    let dump = incident::dump_now("invalid_explanation", &detail).map(as_path);
                    ("violation", detail, exp.degradations.len(), dump)
                } else if exp.degradations.is_empty() {
                    ("ok", String::new(), 0, None)
                } else {
                    let actions = exp
                        .degradations
                        .iter()
                        .map(|d| d.action.label())
                        .collect::<Vec<_>>()
                        .join(",");
                    let dump = incident::dump_now("degraded", &actions).map(as_path);
                    ("ok_degraded", actions, exp.degradations.len(), dump)
                }
            }
            Ok(Err(e)) => {
                // `explain` dumps its own incident on every typed-error
                // path (under the label set above); reference that file
                // rather than writing a second one.
                let path = incident::dump_path(e.cause_label());
                let dump = path.exists().then(|| as_path(path));
                ("typed_error", e.to_string(), 0, dump)
            }
        };
        faults::reset();

        let outcome = if outcome != "violation" && elapsed_ms > overrun_ms {
            violations.push(index);
            runs.push(RunRecord {
                index,
                schedule,
                outcome: "violation",
                detail: format!("overran the deadline: {elapsed_ms} ms > {overrun_ms} ms budget"),
                elapsed_ms,
                degradations,
                fired,
                incident,
            });
            continue;
        } else {
            outcome
        };
        if outcome == "violation" {
            violations.push(index);
        }
        runs.push(RunRecord {
            index,
            schedule,
            outcome,
            detail,
            elapsed_ms,
            degradations,
            fired,
            incident,
        });
    }

    let count = |o: &str| runs.iter().filter(|r| r.outcome == o).count();
    let (n_ok, n_degraded, n_err) = (count("ok"), count("ok_degraded"), count("typed_error"));
    let n_incidents = runs.iter().filter(|r| r.incident.is_some()).count();
    println!(
        "# outcomes: {n_ok} clean, {n_degraded} degraded, {n_err} typed errors, {} violations; \
         {n_incidents} incident dump(s) archived",
        violations.len()
    );
    for &v in &violations {
        let r = &runs[v];
        println!("VIOLATION schedule {}: {}", r.index, r.detail);
        println!(
            "  replay: GEF_FAULTS=\"{}\" GEF_DEADLINE_MS={}",
            r.schedule, args.deadline_ms
        );
    }

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_u64("seed", args.seed);
    w.field_u64("schedules", args.schedules as u64);
    w.field_u64("deadline_ms", args.deadline_ms);
    w.field_u64("violations", violations.len() as u64);
    w.key("replay_violations");
    w.begin_array();
    for &v in &violations {
        w.value_str(&format!(
            "GEF_FAULTS=\"{}\" GEF_DEADLINE_MS={}",
            runs[v].schedule, args.deadline_ms
        ));
    }
    w.end_array();
    w.key("incidents");
    w.begin_array();
    for r in &runs {
        if let Some(p) = &r.incident {
            w.value_str(p);
        }
    }
    w.end_array();
    w.key("runs");
    w.begin_array();
    for r in &runs {
        w.begin_object();
        w.field_u64("index", r.index as u64);
        w.field_str("faults", &r.schedule);
        w.field_str("outcome", r.outcome);
        w.field_str("detail", &r.detail);
        w.field_u64("elapsed_ms", r.elapsed_ms);
        w.field_u64("degradations", r.degradations as u64);
        w.field_u64("fired", r.fired);
        w.key("incident");
        match &r.incident {
            Some(p) => w.value_str(p),
            None => w.value_raw("null"),
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let json = w.finish();
    std::fs::write("CHAOS_report.json", &json).expect("write CHAOS_report.json");
    println!("wrote CHAOS_report.json");

    if !violations.is_empty() {
        std::process::exit(1);
    }
}
