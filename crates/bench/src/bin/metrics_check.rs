//! Validate a Prometheus text exposition file — the ci.sh gate behind
//! `BENCH_metrics.prom` (scraped from gef-serve's `/metrics` by
//! `xp_serve`).
//!
//! Runs [`gef_trace::metrics::validate`] over the file: line format,
//! `# TYPE` before samples, known metric kinds, name/label charset,
//! finite values, non-negative counters, and histogram consistency
//! (monotone cumulative `le` buckets, `+Inf` bucket == `_count`,
//! `_sum` present). `--require NAME` (repeatable) additionally asserts
//! at least one sample named `NAME` exists — ci pins the families the
//! dashboards depend on.
//!
//! Usage: `metrics_check FILE [--require NAME]...`
//!
//! Exits 0 on a valid exposition with every required family present,
//! 1 otherwise (with the reason on stderr).

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut file: Option<&str> = None;
    let mut required: Vec<&str> = Vec::new();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--require" => {
                required.push(
                    argv.get(i + 1)
                        .unwrap_or_else(|| {
                            eprintln!("metrics_check: --require needs a sample name");
                            std::process::exit(1);
                        })
                        .as_str(),
                );
                i += 2;
            }
            flag if flag.starts_with("--") => {
                eprintln!("metrics_check: unknown flag {flag:?} (expected FILE [--require NAME])");
                std::process::exit(1);
            }
            path => {
                if file.replace(path).is_some() {
                    eprintln!("metrics_check: more than one FILE argument");
                    std::process::exit(1);
                }
                i += 1;
            }
        }
    }
    let Some(path) = file else {
        eprintln!("usage: metrics_check FILE [--require NAME]...");
        std::process::exit(1);
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("metrics_check: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let exp = match gef_trace::metrics::validate(&text) {
        Ok(exp) => exp,
        Err(e) => {
            eprintln!("metrics_check: {path} is not a valid exposition: {e}");
            std::process::exit(1);
        }
    };
    let mut missing = 0;
    for name in &required {
        if exp.named(name).is_empty() {
            eprintln!("metrics_check: required sample {name:?} is absent from {path}");
            missing += 1;
        }
    }
    if missing > 0 {
        std::process::exit(1);
    }
    println!(
        "metrics_check: {path} OK ({} samples, {} required families present)",
        exp.samples.len(),
        required.len()
    );
}
