//! Fig. 4 — true-function reconstruction on `D'`.
//!
//! Runs GEF (Equi-Size, the best configuration from Fig. 5) on a forest
//! trained over `D'` and compares each learned univariate component
//! against the corresponding centered generator function. Prints the
//! components sorted by importance with per-component reconstruction
//! RMSE — the numerical counterpart of the paper's spline plots.

use gef_bench::{f3, note_degradations, print_table, train_paper_forest, RunSize};
use gef_core::{GefConfig, GefExplainer, SamplingStrategy};
use gef_data::synthetic::{generator, make_d_prime, NUM_FEATURES};
use gef_forest::Objective;

fn main() {
    let size = RunSize::from_args();
    let data = make_d_prime(size.pick(3_000, 10_000, 10_000), 1);
    let (train, _test) = data.train_test_split(0.8, 2);
    let forest = train_paper_forest(&train.xs, &train.ys, size, Objective::RegressionL2);
    println!(
        "# Fig. 4 — component reconstruction on D' ({} trees)",
        forest.trees.len()
    );

    let cfg = GefConfig {
        num_univariate: NUM_FEATURES,
        num_interactions: 0,
        sampling: SamplingStrategy::EquiSize(size.pick(500, 4_000, 12_000)),
        n_samples: size.pick(10_000, 50_000, 100_000),
        seed: 3,
        ..Default::default()
    };
    let exp = GefExplainer::new(cfg)
        .explain(&forest)
        .expect("pipeline succeeds");
    note_degradations("xp_fig4", &exp);
    println!(
        "fidelity on D* test split: RMSE = {}, R2 = {}",
        f3(exp.fidelity_rmse),
        f3(exp.fidelity_r2)
    );

    // For each feature: evaluate the learned component and the true
    // centered generator on a grid, report RMSE and endpoints.
    let grid: Vec<f64> = (0..=50).map(|i| 0.04 + 0.92 * i as f64 / 50.0).collect();
    let mut rows = Vec::new();
    // Order components by GAM importance, as in the paper's figure.
    let order = exp.terms_by_importance();
    for &term in &order {
        // With no interactions configured, GAM terms map 1:1 onto the
        // selected features.
        let feature = exp.selected_features[term];
        let curve = exp
            .component_curve(feature, grid.len())
            .expect("selected features have curves");
        // True centered generator over the same evaluation points.
        let true_vals: Vec<f64> = curve.iter().map(|&(v, ..)| generator(feature, v)).collect();
        let mean_true = true_vals.iter().sum::<f64>() / true_vals.len() as f64;
        let mut se = 0.0;
        let mut inside = 0usize;
        for ((_, est, lo, hi), tv) in curve.iter().zip(&true_vals) {
            let centered = tv - mean_true;
            se += (est - centered) * (est - centered);
            if centered >= *lo && centered <= *hi {
                inside += 1;
            }
        }
        let rmse = (se / curve.len() as f64).sqrt();
        rows.push(vec![
            format!("x{}", feature + 1),
            f3(exp.gam.term_importance(term)),
            f3(rmse),
            format!("{}/{}", inside, curve.len()),
        ]);
    }
    println!("\n## Learned vs true components (sorted by importance)");
    print_table(
        &[
            "component",
            "importance",
            "reconstruction RMSE",
            "truth inside 95% CI",
        ],
        &rows,
    );

    // Print one full curve (the sigmoid generator, x3) for inspection.
    let f2 = 2; // 0-based index of the sigmoid generator
    if let Ok(curve) = exp.component_curve(f2, 21) {
        println!("\n## Component of x3 (steep sigmoid), centered");
        let truth_mean: f64 =
            curve.iter().map(|&(v, ..)| generator(f2, v)).sum::<f64>() / curve.len() as f64;
        let rows: Vec<Vec<String>> = curve
            .iter()
            .map(|&(v, est, lo, hi)| {
                vec![
                    f3(v),
                    f3(est),
                    f3(lo),
                    f3(hi),
                    f3(generator(f2, v) - truth_mean),
                ]
            })
            .collect();
        print_table(&["x", "spline", "lo95", "hi95", "true (centered)"], &rows);
    }
    println!(
        "\nExpected shape (paper): components match the generators closely except \
         near the domain margins."
    );
    gef_bench::emit_telemetry("xp_fig4");
}
