//! Figs. 11–13 — local explanations of one Superconductivity sample:
//! GEF vs SHAP vs LIME.
//!
//! Picks the same kind of instance the paper highlights (one whose
//! WEAM-analog value sits just below the discontinuity at 1.1), then
//! prints three explanations side by side:
//!
//! * **GEF** (Fig. 11): centered spline contributions ± 95% CI, plus
//!   the "what if" the paper emphasizes — how the WEAM contribution
//!   flips from strongly negative to strongly positive under a small
//!   increase of the feature;
//! * **SHAP** (Fig. 12): per-feature Shapley values from the expected
//!   prediction;
//! * **LIME** (Fig. 13): standardized ridge coefficients in the
//!   neighborhood of the sample.

use gef_baselines::lime::{explain as lime_explain, scales_from_forest, LimeConfig};
use gef_baselines::treeshap::{expected_raw, shap_values};
use gef_bench::{note_degradations, train_paper_forest, RunSize};
use gef_core::{GefConfig, GefExplainer, SamplingStrategy};
use gef_data::superconductivity::{superconductivity_sim_sized, weam_index};
use gef_forest::Objective;

fn main() {
    let size = RunSize::from_args();
    let data = superconductivity_sim_sized(size.pick(3_000, 10_000, 21_263), 1);
    let (train, test) = data.train_test_split(0.8, 2);
    let forest = train_paper_forest(&train.xs, &train.ys, size, Objective::RegressionL2);
    let weam = weam_index();

    // Sample selection: a test instance just below the WEAM jump, where
    // a small increment would flip the contribution (the paper's story).
    let sample = test
        .xs
        .iter()
        .filter(|x| x[weam] > 0.95 && x[weam] <= 1.1)
        .max_by(|a, b| a[weam].partial_cmp(&b[weam]).expect("finite"))
        .cloned()
        .unwrap_or_else(|| test.xs[0].clone());
    println!(
        "# Figs. 11-13 — local explanations of one sample (WEAM = {:.4})",
        sample[weam]
    );
    println!("forest prediction f(x) = {:.3}", forest.predict(&sample));

    // ---------- Fig. 11: GEF ----------
    let cfg = GefConfig {
        num_univariate: 7,
        num_interactions: 0,
        sampling: SamplingStrategy::EquiSize(size.pick(300, 1_500, 4_500)),
        n_samples: size.pick(6_000, 20_000, 100_000),
        seed: 5,
        ..Default::default()
    };
    let exp = GefExplainer::new(cfg)
        .explain(&forest)
        .expect("pipeline succeeds");
    note_degradations("xp_fig11_13", &exp);
    let local = exp.local(&sample);
    println!("\n## Fig. 11 — GEF local explanation");
    print!("{}", exp.format_local(&local, Some(&test.feature_names)));

    // The paper's "small increment reverses the contribution" zoom-in.
    if exp.term_of_feature(weam).is_some() {
        println!(
            "\n   What-if on {} (spline neighborhood):",
            test.feature_names[weam]
        );
        let mut probe = sample.clone();
        for delta in [-0.1, -0.05, 0.0, 0.05, 0.1, 0.2] {
            probe[weam] = sample[weam] + delta;
            let term = exp.term_of_feature(weam).expect("WEAM selected");
            let c = exp.gam.component(term, &probe);
            println!(
                "   {}{:5.2} -> value {:.4}, contribution {:>8.3}, surrogate pred {:>8.3}",
                if delta >= 0.0 { "+" } else { "" },
                delta,
                probe[weam],
                c,
                exp.predict(&probe)
            );
        }
    }

    // ---------- Fig. 12: SHAP ----------
    println!("\n## Fig. 12 — SHAP local explanation");
    let (phi, base) = shap_values(&forest, &sample);
    println!(
        "E[f(X)] = {:.3} (path-dependent expectation {:.3})",
        base,
        expected_raw(&forest)
    );
    let mut ranked: Vec<(usize, f64)> = phi.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite"));
    for &(f, v) in ranked.iter().take(8) {
        println!(
            "  {} {:>9.3}  {:24} = {:.4}",
            if v >= 0.0 { "+" } else { "-" },
            v.abs(),
            test.feature_names[f],
            sample[f]
        );
    }
    let check: f64 = base + phi.iter().sum::<f64>();
    println!("  (local accuracy: base + sum(phi) = {:.3} = f(x))", check);

    // ---------- Fig. 13: LIME ----------
    println!("\n## Fig. 13 — LIME local explanation");
    let scales = scales_from_forest(&forest);
    let lime = lime_explain(
        &forest,
        &sample,
        &scales,
        &LimeConfig {
            num_samples: size.pick(1_000, 3_000, 5_000),
            ..Default::default()
        },
    );
    println!("intercept (local pred) = {:.3}", lime.intercept);
    for (f, c) in lime.ranked_features().into_iter().take(8) {
        println!(
            "  {} {:>9.3}  {:24} = {:.4}",
            if c >= 0.0 { "+" } else { "-" },
            c.abs(),
            test.feature_names[f],
            sample[f]
        );
    }

    println!(
        "\nExpected shape (paper): all three agree that WEAM dominates with a \
         negative contribution just below the jump; only GEF shows that a small \
         increment of WEAM reverses it to strongly positive."
    );
    println!(
        "GEF top features: {:?}",
        local
            .contributions
            .iter()
            .take(3)
            .map(|c| c
                .features
                .iter()
                .map(|&f| test.feature_names[f].clone())
                .collect::<Vec<_>>())
            .collect::<Vec<_>>()
    );
    gef_bench::emit_telemetry("xp_fig11_13");
}
