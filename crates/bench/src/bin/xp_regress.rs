//! Bench-regression gate: a quick fixed-seed suite timed against a
//! committed baseline (see DESIGN.md, "Profiling and the regression
//! gate").
//!
//! ```text
//! xp_regress [--ci] [--write-baseline] [--baseline <path>] [--trajectory <path>]
//! ```
//!
//! Four phases — forest training, D* labeling, the λ-grid GCV search
//! (logit, so it sweeps PIRLS), and an end-to-end pipeline explanation —
//! each measured with [`gef_bench::timed_run_warmed`] (warmup + median
//! of [`gef_bench::bench_iters`] iterations) at `GEF_THREADS` 1 and 4
//! in-process. Measurement keys are `<phase>@t<threads>`.
//!
//! * Default / `--ci`: compare against `BENCH_baseline.json`. A phase
//!   regresses when its median slows down relative to baseline by more
//!   than a noise-aware threshold (see [`rel_limit`]). Exits 1 naming
//!   every regressed phase, 0 otherwise. `--ci` uses the reduced
//!   (`--quick`) sizes.
//! * `--write-baseline`: (re)write the baseline from this run instead
//!   of gating. Do this on the reference machine after an intentional
//!   performance change.
//!
//! The gate only fires when the stored machine profile (logical cores,
//! OS, arch) matches this host — on any other machine it warns, skips
//! the comparison, and exits 0, so the committed baseline never fails
//! someone else's laptop.
//!
//! Every run (gating or not) appends an entry to
//! `BENCH_trajectory.json`, building a commit-over-commit timing series.
//! With `GEF_PROF=1` the run also exports a Chrome-trace timeline under
//! `results/profiles/`.
//!
//! Fault injection: when built with `--features fault-injection`, the
//! `GEF_FAULTS` variable is armed before measuring (e.g.
//! `GEF_FAULTS=pirls.stall=always` slows the GCV search enough to trip
//! the gate — the self-test `ci.sh` could run to prove the gate fires).

use gef_bench::{bench_iters, timed_run_warmed, train_paper_forest, RunSize, Timing};
use gef_core::{GefConfig, GefExplainer, SamplingStrategy};
use gef_data::synthetic::{make_d_prime, NUM_FEATURES};
use gef_forest::Objective;
use gef_gam::{fit, GamSpec, TermSpec};
use gef_trace::json::{parse, JsonValue, JsonWriter};

// With `--features alloc-track`, every run is also allocation-profiled:
// spans attribute alloc/byte deltas, and GEF_PROF traces gain a
// heap-in-use counter track. Timings under the tracking allocator are
// *not* comparable to a baseline recorded without it — keep the feature
// off for gating runs.
#[cfg(feature = "alloc-track")]
#[global_allocator]
static ALLOC: gef_prof::TrackingAlloc = gef_prof::TrackingAlloc;

const BASELINE_SCHEMA: &str = "gef-bench/regress-baseline/v1";
const TRAJECTORY_SCHEMA: &str = "gef-bench/regress-trajectory/v1";

/// Thread counts every phase is measured at (in-process via
/// [`gef_par::set_threads`], matching the `ci.sh` test matrix).
const THREADS: [usize; 2] = [1, 4];

struct Measurement {
    key: String,
    timing: Timing,
}

struct Machine {
    logical_cores: u64,
    os: String,
    arch: String,
}

impl Machine {
    fn current() -> Machine {
        Machine {
            logical_cores: std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let opt = |name: &str| {
        args.iter().position(|a| a == name).map(|p| {
            args[p + 1..]
                .first()
                .expect("flag requires a value")
                .clone()
        })
    };
    let write_baseline = flag("--write-baseline");
    let size = if flag("--ci") {
        RunSize::Quick
    } else {
        RunSize::from_args()
    };
    let baseline_path = opt("--baseline").unwrap_or_else(|| "BENCH_baseline.json".to_string());
    let trajectory_path =
        opt("--trajectory").unwrap_or_else(|| "BENCH_trajectory.json".to_string());

    #[cfg(feature = "fault-injection")]
    match gef_core::faults::arm_from_env() {
        Ok(0) => {}
        Ok(n) => eprintln!("xp_regress: armed {n} fault site(s) from GEF_FAULTS"),
        Err(e) => {
            eprintln!("xp_regress: {e}");
            std::process::exit(2);
        }
    }
    #[cfg(not(feature = "fault-injection"))]
    if std::env::var("GEF_FAULTS").is_ok() {
        eprintln!("xp_regress: GEF_FAULTS set but the fault-injection feature is off (ignored)");
    }

    let machine = Machine::current();
    println!(
        "# xp_regress ({:?} run, {} iteration(s) per phase, {} logical core(s))",
        size,
        bench_iters(),
        machine.logical_cores
    );

    let measurements = run_suite(size);
    for m in &measurements {
        println!(
            "{:<20} median {:.4}s  min {:.4}s  stddev {:.4}s  (n={})",
            m.key, m.timing.median_s, m.timing.min_s, m.timing.stddev_s, m.timing.iters
        );
    }

    if let Some(path) = gef_trace::timeline::emit("xp_regress") {
        println!("wrote chrome trace: {}", path.display());
    }

    let mut gate = "pass";
    let mut regressions: Vec<String> = Vec::new();
    if write_baseline {
        std::fs::write(
            &baseline_path,
            render_baseline(size, &machine, &measurements),
        )
        .unwrap_or_else(|e| panic!("write {baseline_path}: {e}"));
        println!("wrote {baseline_path}");
        gate = "baseline";
    } else {
        match check_against_baseline(&baseline_path, size, &machine, &measurements) {
            GateOutcome::Pass => println!("regression gate: PASS"),
            GateOutcome::Skipped(reason) => {
                gate = "skipped";
                eprintln!("regression gate skipped: {reason}");
            }
            GateOutcome::Regressed(names) => {
                gate = "fail";
                regressions = names;
            }
        }
    }

    append_trajectory(
        &trajectory_path,
        size,
        &machine,
        &measurements,
        gate,
        &regressions,
    );
    println!("appended to {trajectory_path}");
    gef_bench::emit_telemetry("xp_regress");

    if gate == "fail" {
        for r in &regressions {
            eprintln!("REGRESSION: {r}");
        }
        std::process::exit(1);
    }
}

/// Time the four-phase suite at each sweep thread count.
fn run_suite(size: RunSize) -> Vec<Measurement> {
    // Shared inputs, built once so every thread count measures identical
    // work (same protocol as xp_scaling).
    let data = make_d_prime(size.pick(2_000, 8_000, 20_000), 1);
    let label_n = size.pick(20_000, 80_000, 300_000);
    let gam_n = size.pick(2_000, 8_000, 20_000);

    let mut out = Vec::new();
    for &t in &THREADS {
        gef_par::set_threads(t);
        gef_par::prestart();

        let (forest, train) = timed_run_warmed("xp.regress.forest_train", || {
            train_paper_forest(&data.xs, &data.ys, size, Objective::RegressionL2)
        });
        out.push(Measurement {
            key: format!("forest_train@t{t}"),
            timing: train,
        });

        let (label_xs, labels) = gef_bench::common_fidelity_set(&forest, label_n, 7);
        let (_, label) = timed_run_warmed("xp.regress.dstar_label", || {
            forest.predict_batch(&label_xs).expect("no deadline armed")
        });
        // Kernel-phase expectation: a batch this size must have ridden
        // the flattened kernel (the whole point of the dstar_label
        // phase). A silent fallback to the recursive walker would keep
        // timings honest but measure the wrong code path — fail loudly.
        // (Armed fault schedules intentionally force the walker, so the
        // expectation only applies to clean runs.)
        if !gef_trace::fault::any_armed() && !forest.layout_cached() {
            eprintln!(
                "EXPECTATION FAILED: dstar_label@t{t} did not use the flattened kernel \
                 (no layout cached after {} rows)",
                label_xs.len()
            );
            std::process::exit(1);
        }
        out.push(Measurement {
            key: format!("dstar_label@t{t}"),
            timing: label,
        });

        // Logit GCV search: binary labels from the forest's median
        // prediction, λ-grid over spline terms. Runs the full PIRLS
        // solver per candidate, so a `pirls.stall` fault (or a real
        // PIRLS slowdown) lands here.
        let gam_xs = &label_xs[..gam_n.min(label_xs.len())];
        let cut = {
            let mut sorted = labels[..gam_xs.len()].to_vec();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("forest outputs are finite"));
            sorted[sorted.len() / 2]
        };
        let gam_ys: Vec<f64> = labels[..gam_xs.len()]
            .iter()
            .map(|&y| if y > cut { 1.0 } else { 0.0 })
            .collect();
        let terms: Vec<TermSpec> = (0..NUM_FEATURES)
            .map(|f| {
                let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
                for x in gam_xs {
                    lo = lo.min(x[f]);
                    hi = hi.max(x[f]);
                }
                TermSpec::spline(f, (lo, hi))
            })
            .collect();
        let spec = GamSpec::classification(terms);
        let (_, gcv) = timed_run_warmed("xp.regress.gcv_search", || {
            fit(&spec, gam_xs, &gam_ys).expect("logit GAM fit succeeds")
        });
        out.push(Measurement {
            key: format!("gcv_search@t{t}"),
            timing: gcv,
        });

        let (_, e2e) = timed_run_warmed("xp.regress.explain_e2e", || {
            GefExplainer::new(GefConfig {
                num_univariate: NUM_FEATURES,
                num_interactions: 1,
                sampling: SamplingStrategy::EquiSize(size.pick(200, 800, 3_000)),
                n_samples: size.pick(3_000, 12_000, 40_000),
                seed: 3,
                ..Default::default()
            })
            .explain(&forest)
            .expect("pipeline succeeds")
        });
        out.push(Measurement {
            key: format!("explain_e2e@t{t}"),
            timing: e2e,
        });
    }
    gef_par::set_threads(1);
    out
}

/// Relative-slowdown limit for one phase: generous enough that scheduler
/// noise never trips it (50% floor), scaled up when either run was
/// measurably noisy (4 standard deviations relative to the baseline
/// median).
fn rel_limit(base_median: f64, base_stddev: f64, cur_stddev: f64) -> f64 {
    let noise = 4.0 * base_stddev.max(cur_stddev) / base_median.max(1e-9);
    noise.max(0.5)
}

enum GateOutcome {
    Pass,
    Skipped(String),
    Regressed(Vec<String>),
}

fn check_against_baseline(
    path: &str,
    size: RunSize,
    machine: &Machine,
    measurements: &[Measurement],
) -> GateOutcome {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(_) => {
            return GateOutcome::Skipped(format!(
                "no baseline at {path} (run `xp_regress --write-baseline` to create one)"
            ))
        }
    };
    let base = match parse(&text) {
        Ok(v) => v,
        Err(e) => return GateOutcome::Skipped(format!("unparseable baseline {path}: {e}")),
    };

    let base_size = base
        .get("run_size")
        .and_then(|v| v.as_str().map(str::to_string))
        .unwrap_or_default();
    if base_size != format!("{size:?}") {
        return GateOutcome::Skipped(format!(
            "run-size mismatch (baseline {base_size:?}, this run {size:?})"
        ));
    }

    let bm = |key: &str| base.get("machine").and_then(|m| m.get(key).cloned());
    let base_cores = bm("logical_cores").and_then(|v| v.as_f64()).unwrap_or(-1.0) as i64;
    let base_os = bm("os")
        .and_then(|v| v.as_str().map(str::to_string))
        .unwrap_or_default();
    let base_arch = bm("arch")
        .and_then(|v| v.as_str().map(str::to_string))
        .unwrap_or_default();
    if base_cores != machine.logical_cores as i64
        || base_os != machine.os
        || base_arch != machine.arch
    {
        return GateOutcome::Skipped(format!(
            "machine profile mismatch (baseline {base_cores} cores/{base_os}/{base_arch}, \
             host {} cores/{}/{})",
            machine.logical_cores, machine.os, machine.arch
        ));
    }

    let empty: Vec<JsonValue> = Vec::new();
    let base_measurements = base
        .get("measurements")
        .and_then(JsonValue::as_array)
        .map(<[JsonValue]>::to_vec)
        .unwrap_or(empty);
    let mut regressions = Vec::new();
    for m in measurements {
        let Some(entry) = base_measurements
            .iter()
            .find(|e| e.get("key").and_then(JsonValue::as_str) == Some(m.key.as_str()))
        else {
            eprintln!("xp_regress: no baseline entry for {} (not gated)", m.key);
            continue;
        };
        let num = |k: &str| entry.get(k).and_then(JsonValue::as_f64).unwrap_or(f64::NAN);
        let base_median = num("median_s");
        let base_stddev = num("stddev_s");
        // NaN-safe: a missing or non-positive baseline median is not
        // gateable.
        if !(base_median.is_finite() && base_median > 0.0) {
            continue;
        }
        let rel = m.timing.median_s / base_median - 1.0;
        let limit = rel_limit(base_median, base_stddev, m.timing.stddev_s);
        if rel > limit {
            regressions.push(format!(
                "{}: {:.4}s vs baseline {:.4}s (+{:.0}%, limit +{:.0}%)",
                m.key,
                m.timing.median_s,
                base_median,
                rel * 100.0,
                limit * 100.0
            ));
        }
    }
    if regressions.is_empty() {
        GateOutcome::Pass
    } else {
        GateOutcome::Regressed(regressions)
    }
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

fn write_machine(w: &mut JsonWriter, machine: &Machine) {
    w.key("machine");
    w.begin_object();
    w.field_u64("logical_cores", machine.logical_cores);
    w.field_str("os", &machine.os);
    w.field_str("arch", &machine.arch);
    w.end_object();
}

fn write_measurements(w: &mut JsonWriter, measurements: &[Measurement]) {
    w.key("measurements");
    w.begin_array();
    for m in measurements {
        w.begin_object();
        w.field_str("key", &m.key);
        w.field_f64("median_s", m.timing.median_s);
        w.field_f64("min_s", m.timing.min_s);
        w.field_f64("stddev_s", m.timing.stddev_s);
        w.field_u64("iters", m.timing.iters as u64);
        w.end_object();
    }
    w.end_array();
}

fn render_baseline(size: RunSize, machine: &Machine, measurements: &[Measurement]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", BASELINE_SCHEMA);
    w.field_u64("created_unix_ms", unix_ms());
    w.field_str("run_size", &format!("{size:?}"));
    write_machine(&mut w, machine);
    write_measurements(&mut w, measurements);
    w.end_object();
    let mut out = w.finish();
    out.push('\n');
    out
}

/// Most recent entries kept per machine profile in the trajectory file.
/// The file is a commit-over-commit series that every CI run appends
/// to; without a cap it grows without bound and drowns the recent
/// history the series exists to show.
const TRAJECTORY_KEEP: usize = 100;

/// Machine-profile key of one trajectory entry (cores/os/arch, the same
/// triple the gate matches baselines on). Entries written before the
/// machine block existed collapse onto one shared key.
fn profile_key(entry: &JsonValue) -> String {
    let m = |k: &str| -> String {
        entry
            .get("machine")
            .and_then(|m| m.get(k).cloned())
            .map(|v| match v {
                JsonValue::String(s) => s,
                JsonValue::Number(n) => format!("{n}"),
                _ => String::new(),
            })
            .unwrap_or_default()
    };
    format!("{}/{}/{}", m("logical_cores"), m("os"), m("arch"))
}

/// Drop all but the most recent [`TRAJECTORY_KEEP`] entries *per machine
/// profile*, preserving order. Appended entries are already in time
/// order, so "most recent" is "last in the array"; scanning from the
/// end keeps exactly the newest N of each profile.
fn prune_trajectory(entries: &mut Vec<JsonValue>) {
    let mut kept_per_profile: Vec<(String, usize)> = Vec::new();
    let mut keep = vec![false; entries.len()];
    for (i, e) in entries.iter().enumerate().rev() {
        let key = profile_key(e);
        let count = match kept_per_profile.iter_mut().find(|(k, _)| *k == key) {
            Some((_, n)) => n,
            None => {
                kept_per_profile.push((key, 0));
                &mut kept_per_profile.last_mut().expect("just pushed").1
            }
        };
        if *count < TRAJECTORY_KEEP {
            *count += 1;
            keep[i] = true;
        }
    }
    let dropped = keep.iter().filter(|k| !**k).count();
    if dropped > 0 {
        let mut i = 0;
        entries.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
        eprintln!(
            "xp_regress: pruned {dropped} trajectory entr{} (keeping the newest \
             {TRAJECTORY_KEEP} per machine profile)",
            if dropped == 1 { "y" } else { "ies" }
        );
    }
}

/// Append one entry to the trajectory file (read-modify-write through
/// [`gef_trace::json`]; a missing or corrupt file starts a fresh one),
/// then prune to the newest [`TRAJECTORY_KEEP`] entries per machine
/// profile.
fn append_trajectory(
    path: &str,
    size: RunSize,
    machine: &Machine,
    measurements: &[Measurement],
    gate: &str,
    regressions: &[String],
) {
    // Render the new entry with JsonWriter, then splice it into the
    // parsed document as a JsonValue.
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_u64("created_unix_ms", unix_ms());
    w.field_str("run_size", &format!("{size:?}"));
    w.field_str("gate", gate);
    write_machine(&mut w, machine);
    w.key("regressions");
    w.begin_array();
    for r in regressions {
        w.value_str(r);
    }
    w.end_array();
    write_measurements(&mut w, measurements);
    w.end_object();
    let entry = parse(&w.finish()).expect("JsonWriter output parses");

    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|t| parse(&t).ok())
        .filter(|v| matches!(v, JsonValue::Object(_)))
        .unwrap_or_else(|| {
            JsonValue::Object(vec![
                (
                    "schema".to_string(),
                    JsonValue::String(TRAJECTORY_SCHEMA.to_string()),
                ),
                ("entries".to_string(), JsonValue::Array(Vec::new())),
            ])
        });
    if let JsonValue::Object(pairs) = &mut doc {
        match pairs.iter_mut().find(|(k, _)| k == "entries") {
            Some((_, JsonValue::Array(entries))) => {
                entries.push(entry);
                prune_trajectory(entries);
            }
            Some((_, other)) => *other = JsonValue::Array(vec![entry]),
            None => pairs.push(("entries".to_string(), JsonValue::Array(vec![entry]))),
        }
    }
    let mut out = doc.to_json();
    out.push('\n');
    std::fs::write(path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
}
