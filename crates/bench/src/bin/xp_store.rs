//! Seeded crash/corruption sweep over the `gef-store` disk-fault sites.
//!
//! Generates `--schedules` random fault schedules restricted to the
//! four store sites (`store.torn_write`, `store.bit_flip`,
//! `store.truncate`, `store.enospc` — torn renames, flipped bits,
//! truncated reads, full disks), and drives each against a **fresh**
//! store through three phases:
//!
//! 1. **write** — publish two forests (binary + text), tag them, and
//!    cache an explanation payload, all with publish faults armed;
//! 2. **read** — load every artifact back by digest, by ref, and by
//!    explanation key, with read faults armed;
//! 3. **evict** — re-load in a loop under a cache sized for one forest,
//!    so MRU evictions interleave with faulty re-reads.
//!
//! The durability invariant checked on **every** access:
//!
//! > A load either returns a **digest-verified artifact** (the decoded
//! > forest's content digest equals the requested address; cached
//! > explanation bytes equal the published payload) or a **typed
//! > [`gef_store::StoreError`]** — and every `Corrupt` verdict leaves
//! > the offending artifact in `quarantine/` with a side-car. Never a
//! > panic, never silently-served bad bytes.
//!
//! The sweep is fully deterministic per `--seed`; every schedule is
//! printed in replayable `GEF_FAULTS` syntax. Results land in
//! `BENCH_store.json` (violations first with replay strings, then
//! per-schedule outcomes), together with the cold-load benchmark:
//! median decode time of the binary `GFB1` form vs. parsing the text
//! form of the same forest. Exits nonzero on any violation. Requires
//! `--features fault-injection`.
//!
//! Flags: `--ci` (24 schedules — the ci.sh gate), `--schedules N`
//! (default 120), `--seed S` (default 7).

use gef_bench::chaos::{random_schedule_from, SplitMix};
use gef_core::faults;
use gef_forest::{codec, io as forest_io, Forest, GbdtParams, GbdtTrainer, Objective};
use gef_store::{Store, StoreError};
use gef_trace::json::JsonWriter;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

/// The four disk-fault sites this sweep is restricted to.
const STORE_SITES: [&str; 4] = [
    gef_store::TORN_WRITE,
    gef_store::BIT_FLIP,
    gef_store::TRUNCATE,
    gef_store::ENOSPC,
];

struct Args {
    schedules: usize,
    seed: u64,
    ci: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        schedules: 120,
        seed: 7,
        ci: false,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let val = |j: usize| -> u64 {
            argv.get(j)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{} requires an integer argument", argv[j - 1]))
        };
        match argv[i].as_str() {
            "--ci" => {
                out.ci = true;
                out.schedules = 24;
                i += 1;
            }
            "--schedules" => {
                out.schedules = val(i + 1) as usize;
                i += 2;
            }
            "--seed" => {
                out.seed = val(i + 1);
                i += 2;
            }
            other => panic!("unknown flag {other:?} (expected --ci/--schedules/--seed)"),
        }
    }
    out
}

/// Two small distinct forests, trained once before any fault is armed.
fn forests() -> (Forest, Forest) {
    let train = |seed: u64, trees: usize| {
        let mut rng = SplitMix(seed);
        let xs: Vec<Vec<f64>> = (0..300)
            .map(|_| (0..3).map(|_| rng.unit()).collect())
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 2.0 * x[0] - x[1] + (x[2] * 4.0).sin())
            .collect();
        GbdtTrainer::new(GbdtParams {
            num_trees: trees,
            num_leaves: 6,
            learning_rate: 0.2,
            min_data_in_leaf: 10,
            objective: Objective::RegressionL2,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .expect("sweep forest trains")
    };
    (train(3, 8), train(17, 10))
}

/// What one schedule did, for the report.
struct RunRecord {
    index: usize,
    schedule: String,
    outcome: &'static str,
    detail: String,
    typed_errors: usize,
    quarantined: usize,
    text_fallbacks: usize,
    evictions: u64,
    fired: u64,
}

/// Everything one schedule observed; violations are invariant breaches.
#[derive(Default)]
struct Observed {
    violations: Vec<String>,
    typed_errors: usize,
    text_fallbacks: usize,
}

impl Observed {
    /// Classify a forest load: `Ok` must be digest-verified (the store
    /// re-checks, we re-check independently); `Corrupt` must have
    /// quarantined at least one copy.
    fn check_load(
        &mut self,
        what: &str,
        want: u64,
        result: Result<gef_store::Loaded, StoreError>,
        store: &Store,
    ) {
        match result {
            Ok(loaded) => {
                if loaded.forest.content_digest() != want {
                    self.violations.push(format!(
                        "[{what}] load returned digest {:016x}, wanted {want:016x} (source {})",
                        loaded.forest.content_digest(),
                        loaded.source.label()
                    ));
                }
                if loaded.source == gef_store::LoadSource::TextFallback {
                    self.text_fallbacks += 1;
                }
            }
            Err(StoreError::Corrupt { artifact, detail }) => {
                self.typed_errors += 1;
                if store.quarantined().is_empty() {
                    self.violations.push(format!(
                        "[{what}] Corrupt({artifact}: {detail}) but quarantine/ is empty"
                    ));
                }
            }
            Err(_) => self.typed_errors += 1,
        }
    }
}

fn main() {
    let args = parse_args();
    let (f1, f2) = forests();
    let (d1, d2) = (f1.content_digest(), f2.content_digest());
    let explanation_payload = br#"{"schema":"xp_store/probe/v1","terms":[1.5,-0.25]}"#.to_vec();
    let config_digest = 0x5eed_f00d_u64;
    // A cache big enough for exactly one forest, so the evict phase
    // actually evicts (sizes are of the binary artifacts it caches).
    let cache_bytes = codec::to_binary(&f1).len().max(codec::to_binary(&f2).len()) as u64 + 64;
    let base = std::env::temp_dir().join(format!("gef-xp-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    println!(
        "# store sweep: {} schedules, seed {}, sites: {}",
        args.schedules,
        args.seed,
        STORE_SITES.join(", ")
    );

    let mut rng = SplitMix(args.seed);
    let mut runs: Vec<RunRecord> = Vec::with_capacity(args.schedules);
    let mut violations: Vec<usize> = Vec::new();

    for index in 0..args.schedules {
        let schedule = random_schedule_from(&mut rng, &STORE_SITES);
        let dir: PathBuf = base.join(format!("sched-{index:03}"));
        let _ = std::fs::remove_dir_all(&dir);

        let entries = match faults::parse_spec(&schedule) {
            Ok(e) => e,
            Err(err) => {
                runs.push(RunRecord {
                    index,
                    schedule,
                    outcome: "violation",
                    detail: format!("generated schedule failed to parse: {err}"),
                    typed_errors: 0,
                    quarantined: 0,
                    text_fallbacks: 0,
                    evictions: 0,
                    fired: 0,
                });
                violations.push(index);
                continue;
            }
        };
        // The store is opened (directories created) before faults arm:
        // the sweep injects disk faults on artifacts, not on mkdir.
        let store = Store::open_with_cache(&dir, cache_bytes).expect("fresh store opens");
        faults::reset();
        let armed: Vec<String> = entries.iter().map(|(s, _)| s.clone()).collect();
        for (site, trigger) in entries {
            faults::arm(&site, trigger);
        }

        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            let mut obs = Observed::default();

            // -------- write phase: publish under fire ----------------
            let p1 = store.publish_forest(&f1);
            let p2 = store.publish_forest(&f2);
            for (name, p, d) in [("alpha", &p1, d1), ("beta", &p2, d2)] {
                match p {
                    Ok(got) => {
                        if *got != d {
                            obs.violations.push(format!(
                                "[publish {name}] returned digest {got:016x}, wanted {d:016x}"
                            ));
                        }
                        if store.tag(name, d).is_err() {
                            obs.typed_errors += 1;
                        }
                    }
                    Err(_) => obs.typed_errors += 1,
                }
            }
            if store
                .put_explanation(d1, config_digest, &explanation_payload)
                .is_err()
            {
                obs.typed_errors += 1;
            }

            // -------- read phase: every access verified --------------
            obs.check_load("read d1", d1, store.load_forest(d1), &store);
            obs.check_load("read d2", d2, store.load_forest(d2), &store);
            if store.resolve("alpha").is_ok() {
                obs.check_load("read alpha", d1, store.load_named("alpha"), &store);
            }
            match store.get_explanation(d1, config_digest) {
                Ok(Some(bytes)) => {
                    if bytes != explanation_payload {
                        obs.violations.push(format!(
                            "[explanation] verified load returned {} bytes that differ \
                             from the published payload",
                            bytes.len()
                        ));
                    }
                }
                Ok(None) => {}
                Err(_) => obs.typed_errors += 1,
            }

            // -------- evict phase: cycle a one-forest cache ----------
            for _ in 0..4 {
                obs.check_load("evict d1", d1, store.load_forest(d1), &store);
                obs.check_load("evict d2", d2, store.load_forest(d2), &store);
            }
            obs
        }));

        let fired: u64 = armed.iter().map(|s| faults::fired_count(s)).sum();
        faults::reset();
        let quarantined = store.quarantined().len();
        let evictions = store.cache_stats().evictions;

        let (outcome, detail, typed_errors, text_fallbacks) = match result {
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                ("violation", format!("panicked: {msg}"), 0, 0)
            }
            Ok(obs) if !obs.violations.is_empty() => (
                "violation",
                obs.violations.join("; "),
                obs.typed_errors,
                obs.text_fallbacks,
            ),
            Ok(obs) if obs.typed_errors > 0 || quarantined > 0 || obs.text_fallbacks > 0 => (
                "ok_recovered",
                String::new(),
                obs.typed_errors,
                obs.text_fallbacks,
            ),
            Ok(obs) => ("ok", String::new(), obs.typed_errors, obs.text_fallbacks),
        };
        if outcome == "violation" {
            violations.push(index);
        }
        runs.push(RunRecord {
            index,
            schedule,
            outcome,
            detail,
            typed_errors,
            quarantined,
            text_fallbacks,
            evictions,
            fired,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&base);

    // ---- cold-load benchmark: binary decode vs. text parse ----------
    // Same forest, both serialized forms, median of repeated decodes;
    // the binary GFB1 path is the reason the store publishes it first.
    let (bin_us, txt_us, bin_bytes, txt_bytes) = {
        let bytes = codec::to_binary(&f2);
        let text = forest_io::to_text(&f2);
        let reps = 40;
        let median = |mut v: Vec<u64>| -> u64 {
            v.sort_unstable();
            v[v.len() / 2]
        };
        let mut bin = Vec::with_capacity(reps);
        let mut txt = Vec::with_capacity(reps);
        for _ in 0..reps {
            let t0 = Instant::now();
            let f = codec::from_binary(&bytes).expect("benchmark bytes decode");
            bin.push(t0.elapsed().as_nanos() as u64);
            assert_eq!(f.content_digest(), d2);
            let t0 = Instant::now();
            let f = forest_io::from_text(&text).expect("benchmark text parses");
            txt.push(t0.elapsed().as_nanos() as u64);
            assert_eq!(f.content_digest(), d2);
        }
        (
            median(bin) as f64 / 1000.0,
            median(txt) as f64 / 1000.0,
            bytes.len(),
            text.len(),
        )
    };
    let speedup = if bin_us > 0.0 { txt_us / bin_us } else { 0.0 };

    let count = |o: &str| runs.iter().filter(|r| r.outcome == o).count();
    let (n_ok, n_rec) = (count("ok"), count("ok_recovered"));
    let quarantined_total: usize = runs.iter().map(|r| r.quarantined).sum();
    println!(
        "# outcomes: {n_ok} clean, {n_rec} recovered ({quarantined_total} artifacts \
         quarantined), {} violations",
        violations.len()
    );
    println!(
        "# cold load: binary {bin_us:.1} us vs text {txt_us:.1} us ({speedup:.1}x, \
         {bin_bytes} vs {txt_bytes} bytes)"
    );
    for &v in &violations {
        let r = &runs[v];
        println!("VIOLATION schedule {}: {}", r.index, r.detail);
        println!(
            "  replay: GEF_FAULTS=\"{}\" xp_store --seed {}",
            r.schedule, args.seed
        );
    }

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_u64("seed", args.seed);
    w.field_u64("schedules", args.schedules as u64);
    w.field_u64("violations", violations.len() as u64);
    w.key("replay_violations");
    w.begin_array();
    for &v in &violations {
        w.value_str(&format!(
            "GEF_FAULTS=\"{}\" xp_store --seed {}",
            runs[v].schedule, args.seed
        ));
    }
    w.end_array();
    w.field_u64("ok", n_ok as u64);
    w.field_u64("ok_recovered", n_rec as u64);
    w.field_u64("quarantined_total", quarantined_total as u64);
    w.key("cold_load");
    w.begin_object();
    w.field_f64("binary_decode_us", bin_us);
    w.field_f64("text_parse_us", txt_us);
    w.field_f64("speedup", speedup);
    w.field_u64("binary_bytes", bin_bytes as u64);
    w.field_u64("text_bytes", txt_bytes as u64);
    w.end_object();
    w.key("runs");
    w.begin_array();
    for r in &runs {
        w.begin_object();
        w.field_u64("index", r.index as u64);
        w.field_str("faults", &r.schedule);
        w.field_str("outcome", r.outcome);
        w.field_str("detail", &r.detail);
        w.field_u64("typed_errors", r.typed_errors as u64);
        w.field_u64("quarantined", r.quarantined as u64);
        w.field_u64("text_fallbacks", r.text_fallbacks as u64);
        w.field_u64("evictions", r.evictions);
        w.field_u64("fired", r.fired);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    std::fs::write("BENCH_store.json", w.finish()).expect("write BENCH_store.json");
    println!("wrote BENCH_store.json");

    gef_bench::emit_telemetry("xp_store");
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
