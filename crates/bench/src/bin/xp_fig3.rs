//! Fig. 3 — sampling strategies on the sigmoid example.
//!
//! Trains a forest on `y = σ(50(x − 0.5))`, extracts its split
//! thresholds (which concentrate in the high-variability region around
//! 0.5), and prints the sampling domains produced by all five
//! strategies, plus a density histogram of the original thresholds —
//! the textual analogue of the paper's rug plots.

use gef_bench::{train_paper_forest, RunSize};
use gef_core::SamplingStrategy;
use gef_data::synthetic::make_sigmoid_dataset;
use gef_forest::importance::FeatureStats;
use gef_forest::Objective;

fn main() {
    let size = RunSize::from_args();
    let n = size.pick(2_000, 8_000, 10_000);
    let data = make_sigmoid_dataset(n, 42);
    let forest = train_paper_forest(&data.xs, &data.ys, size, Objective::RegressionL2);
    // The paper's V_i is the multiset of thresholds over split nodes;
    // its density (what the KDE in Fig. 3 shows) encodes where the
    // forest concentrates its splits.
    let thresholds = FeatureStats::collect(&forest).threshold_multiset[0].clone();
    println!(
        "# Fig. 3 — sampling strategies (sigmoid forest, {} trees, {} thresholds incl. repeats)",
        forest.trees.len(),
        thresholds.len()
    );

    // Density histogram of the raw thresholds (10 bins over [0,1]).
    println!("\n## Threshold density over [0, 1] (10 bins)");
    let mut bins = [0usize; 10];
    for &t in &thresholds {
        let b = ((t * 10.0).floor() as usize).min(9);
        bins[b] += 1;
    }
    let max = *bins.iter().max().unwrap_or(&1);
    for (i, &c) in bins.iter().enumerate() {
        let bar = "#".repeat((c * 50 / max.max(1)).max(usize::from(c > 0)));
        println!(
            "[{:.1},{:.1}) {:>5} {}",
            i as f64 / 10.0,
            (i + 1) as f64 / 10.0,
            c,
            bar
        );
    }

    let k = size.pick(15, 30, 30);
    println!("\n## Sampling domains (K = {k})");
    for strategy in [
        SamplingStrategy::AllThresholds,
        SamplingStrategy::KQuantile(k),
        SamplingStrategy::EquiWidth(k),
        SamplingStrategy::KMeans(k),
        SamplingStrategy::EquiSize(k),
    ] {
        let d = strategy.domain(&thresholds);
        // Print the sampled points (the rug) and their center-density.
        let in_center = d.iter().filter(|&&x| (0.4..=0.6).contains(&x)).count();
        let pts: Vec<String> = d.iter().map(|v| format!("{v:.3}")).collect();
        println!(
            "\n{:14} |D| = {:>4}, {:>3} points in [0.4, 0.6] ({:.0}%)",
            strategy.name(),
            d.len(),
            in_center,
            100.0 * in_center as f64 / d.len().max(1) as f64
        );
        let shown = if pts.len() > 40 {
            format!(
                "{} ... {}",
                pts[..20].join(" "),
                pts[pts.len() - 5..].join(" ")
            )
        } else {
            pts.join(" ")
        };
        println!("  {shown}");
    }
    println!(
        "\nExpected shape (paper): K-Quantile / K-Means / Equi-Size follow the \
         threshold density and emphasize the steep region near 0.5; \
         Equi-Width ignores it."
    );
    gef_bench::emit_telemetry("xp_fig3");
}
