//! Ablation (paper Sec. 4.1): sensitivity to the synthetic dataset
//! size `N`.
//!
//! The paper reports that "the number of instances N of `D*` does not
//! affect significantly the results" and fixes `N = 100,000`. This
//! sweep verifies the claim: fidelity RMSE as a function of `N`, with
//! wall-clock time per run.

use gef_bench::{
    emit_telemetry, f3, fmt_secs, note_degradations, print_table, timed_run, train_paper_forest,
    RunSize,
};
use gef_core::{GefConfig, GefExplainer, SamplingStrategy};
use gef_data::synthetic::{make_d_prime, NUM_FEATURES};
use gef_forest::Objective;

fn main() {
    let size = RunSize::from_args();
    let data = make_d_prime(size.pick(3_000, 10_000, 10_000), 1);
    let (train, _) = data.train_test_split(0.8, 2);
    let forest = train_paper_forest(&train.xs, &train.ys, size, Objective::RegressionL2);
    println!(
        "# Ablation — sensitivity to |D*| = N ({} trees)",
        forest.trees.len()
    );

    let ns: Vec<usize> = size.pick(
        vec![1_000, 4_000, 16_000],
        vec![1_000, 4_000, 16_000, 64_000],
        vec![1_000, 4_000, 16_000, 64_000, 100_000, 200_000],
    );
    let mut rows = Vec::new();
    for &n in &ns {
        let (exp, timing) = timed_run("xp.ablation_n.explain", || {
            GefExplainer::new(GefConfig {
                num_univariate: NUM_FEATURES,
                sampling: SamplingStrategy::EquiSize(size.pick(300, 2_000, 12_000)),
                n_samples: n,
                seed: 3,
                ..Default::default()
            })
            .explain(&forest)
            .expect("pipeline succeeds")
        });
        let degraded = note_degradations("xp_ablation_n", &exp);
        rows.push(vec![
            n.to_string(),
            f3(exp.fidelity_rmse),
            f3(exp.fidelity_r2),
            fmt_secs(timing.median_s),
            degraded.to_string(),
        ]);
    }
    println!();
    print_table(
        &["N", "D* RMSE", "D* R2", "wall time", "degradations"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): fidelity is flat in N beyond a few thousand \
         samples — the information in D* is bounded by the forest's threshold \
         structure, not by sample count."
    );
    emit_telemetry("xp_ablation_n");
}
