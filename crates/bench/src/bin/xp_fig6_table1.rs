//! Fig. 6 + Table 1 — interaction-detection comparison.
//!
//! For every one of the 120 possible triples Π of injected interaction
//! pairs, trains a forest on `D''_Π` and ranks the 10 candidate pairs
//! with each of the four heuristics (Pair-Gain, Count-Path, Gain-Path,
//! H-Stat), scoring each ranking with Average Precision against the 3
//! true pairs. Prints Table 1 (Mean/SD/Min/Max AP per strategy) plus
//! Welch t-tests against Gain-Path, and the per-strategy sorted AP
//! series behind Fig. 6.

use gef_bench::{f3, print_table, train_paper_forest, RunSize};
use gef_core::generate::{build_domains, generate};
use gef_core::interactions::rank_interactions;
use gef_core::selection::ForestProfile;
use gef_core::{InteractionStrategy, SamplingStrategy};
use gef_data::metrics::average_precision;
use gef_data::synthetic::{all_interaction_triples, make_d_second, NUM_FEATURES};
use gef_forest::Objective;
use gef_linalg::stats::{mean, std_dev, welch_t_test};

fn main() {
    let size = RunSize::from_args();
    let triples = all_interaction_triples();
    let triples: Vec<_> = match size {
        RunSize::Quick => triples.into_iter().step_by(10).collect(),
        _ => triples,
    };
    let n_rows = size.pick(2_000, 6_000, 10_000);
    println!(
        "# Fig. 6 / Table 1 — interaction detection over {} interaction sets",
        triples.len()
    );

    let strategies = [
        InteractionStrategy::PairGain,
        InteractionStrategy::CountPath,
        InteractionStrategy::GainPath,
        InteractionStrategy::HStat {
            eval_points: size.pick(40, 80, 120),
            background: size.pick(40, 80, 120),
        },
    ];
    let mut aps: Vec<Vec<f64>> = vec![Vec::with_capacity(triples.len()); strategies.len()];

    for (ti, &pairs) in triples.iter().enumerate() {
        let data = make_d_second(n_rows, &pairs, 100 + ti as u64);
        let (train, _) = data.train_test_split(0.8, 5);
        let forest = train_paper_forest(&train.xs, &train.ys, size, Objective::RegressionL2);
        let profile = ForestProfile::analyze(&forest);
        let selected: Vec<usize> = (0..NUM_FEATURES).collect();
        // H-Stat needs a D* sample; generate a small one once per forest.
        let domains = build_domains(&profile, &selected, SamplingStrategy::AllThresholds)
            .expect("domain construction");
        let sample = generate(&forest, &domains, 400, true, 11).expect("D* generation");
        for (si, &strategy) in strategies.iter().enumerate() {
            let ranked = rank_interactions(&forest, &profile, &selected, strategy, Some(&sample))
                .expect("ranking succeeds");
            let relevance: Vec<bool> = ranked.iter().map(|&(p, _)| pairs.contains(&p)).collect();
            aps[si].push(average_precision(&relevance));
        }
        if (ti + 1) % 20 == 0 {
            eprintln!("  ... {}/{} triples done", ti + 1, triples.len());
        }
    }

    // Table 1.
    println!("\n## Table 1 — Average Precision per strategy");
    let rows: Vec<Vec<String>> = [("Mean", 0), ("SD", 1), ("Min", 2), ("Max", 3)]
        .iter()
        .map(|&(label, which)| {
            let mut row = vec![label.to_string()];
            for ap in &aps {
                let v = match which {
                    0 => mean(ap),
                    1 => std_dev(ap),
                    2 => ap.iter().cloned().fold(f64::INFINITY, f64::min),
                    _ => ap.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                };
                row.push(f3(v));
            }
            row
        })
        .collect();
    print_table(
        &["", "Pair-Gain", "Count-Path", "Gain-Path", "H-Stat"],
        &rows,
    );

    // Welch t-tests vs Gain-Path (index 2), as in the paper's analysis.
    println!("\n## Two-tailed Welch t-tests vs Gain-Path (alpha = 0.05)");
    for (si, strategy) in strategies.iter().enumerate() {
        if si == 2 {
            continue;
        }
        let r = welch_t_test(&aps[si], &aps[2]);
        println!(
            "{:11} t = {:>7.3}, df = {:>7.2}, p = {:.4}  ({})",
            strategy.name(),
            r.t,
            r.df,
            r.p_value,
            if r.p_value < 0.05 {
                "significant"
            } else {
                "not significant"
            }
        );
    }

    // Fig. 6: sorted AP series (descending), every 10th point.
    println!("\n## Fig. 6 — sorted AP per strategy (descending, sampled)");
    let mut sorted = aps.clone();
    for s in &mut sorted {
        s.sort_by(|a, b| b.partial_cmp(a).expect("finite AP"));
    }
    let idx: Vec<usize> = (0..triples.len())
        .step_by((triples.len() / 12).max(1))
        .collect();
    let rows: Vec<Vec<String>> = idx
        .iter()
        .map(|&i| {
            let mut row = vec![format!("{}", i + 1)];
            for s in &sorted {
                row.push(f3(s[i]));
            }
            row
        })
        .collect();
    print_table(
        &["rank", "Pair-Gain", "Count-Path", "Gain-Path", "H-Stat"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): best Mean for Gain-Path and H-Stat; all \
         strategies share Min ~= 0.216 (the adversarial triples) and Max = 1.0; \
         no strategy significantly different from Gain-Path at alpha = 0.05."
    );
    gef_bench::emit_telemetry("xp_fig6_table1");
}
