//! Ablation (paper Sec. 3.1 discussion): GAM vs simpler surrogates.
//!
//! The paper argues that a linear model is more interpretable but far
//! less flexible than a GAM. This experiment quantifies that trade-off
//! on the paper's own generator `g'`: fit (i) a linear surrogate,
//! (ii) a univariate-GAM surrogate, and (iii) a GAM with interactions
//! on the same `D*`, and report fidelity to the forest on held-out `D*`
//! and accuracy on the original test labels.

use gef_baselines::linear::LinearSurrogate;
use gef_bench::{f3, note_degradations, print_table, train_paper_forest, RunSize};
use gef_core::{GefConfig, GefExplainer, SamplingStrategy};
use gef_data::metrics::{r2, rmse};
use gef_data::synthetic::{make_d_second, NUM_FEATURES};
use gef_forest::Objective;

fn main() {
    let size = RunSize::from_args();
    // D'' with interactions so the ladder has three distinct rungs.
    let pairs = [(0usize, 1usize), (0, 4), (1, 4)];
    let data = make_d_second(size.pick(3_000, 10_000, 10_000), &pairs, 1);
    let (train, test) = data.train_test_split(0.8, 2);
    let forest = train_paper_forest(&train.xs, &train.ys, size, Objective::RegressionL2);
    let forest_preds = forest.predict_batch(&test.xs).expect("no deadline armed");
    println!(
        "# Ablation — surrogate model class ladder on D'' ({} trees)",
        forest.trees.len()
    );

    let base_cfg = GefConfig {
        num_univariate: NUM_FEATURES,
        sampling: SamplingStrategy::EquiSize(size.pick(300, 2_000, 12_000)),
        n_samples: size.pick(8_000, 40_000, 100_000),
        seed: 3,
        ..Default::default()
    };

    // (iii) GAM with 3 tensor terms, (ii) univariate GAM.
    let gam_inter = GefExplainer::new(GefConfig {
        num_interactions: 3,
        ..base_cfg.clone()
    })
    .explain(&forest)
    .expect("pipeline succeeds");
    note_degradations("xp_ablation_surrogates/gam_inter", &gam_inter);
    let (gam_uni, dstar) = GefExplainer::new(base_cfg)
        .explain_with_data(&forest)
        .expect("pipeline succeeds");
    note_degradations("xp_ablation_surrogates/gam_uni", &gam_uni);

    // (i) Linear surrogate on the same D*.
    let (dtrain, dtest) = dstar.split(0.8);
    let linear = LinearSurrogate::fit(&dtrain.xs, &dtrain.ys, 1e-6).expect("ols fits");
    let lin_dstar = rmse(&linear.predict_batch(&dtest.xs), &dtest.ys);

    let rows = vec![
        vec![
            "Linear regression".to_string(),
            f3(lin_dstar),
            f3(r2(&linear.predict_batch(&test.xs), &forest_preds)),
            f3(r2(&linear.predict_batch(&test.xs), &test.ys)),
        ],
        vec![
            "GAM (univariate)".to_string(),
            f3(gam_uni.fidelity_rmse),
            f3(r2(
                &test
                    .xs
                    .iter()
                    .map(|x| gam_uni.predict(x))
                    .collect::<Vec<_>>(),
                &forest_preds,
            )),
            f3(r2(
                &test
                    .xs
                    .iter()
                    .map(|x| gam_uni.predict(x))
                    .collect::<Vec<_>>(),
                &test.ys,
            )),
        ],
        vec![
            "GAM (+3 interactions)".to_string(),
            f3(gam_inter.fidelity_rmse),
            f3(r2(
                &test
                    .xs
                    .iter()
                    .map(|x| gam_inter.predict(x))
                    .collect::<Vec<_>>(),
                &forest_preds,
            )),
            f3(r2(
                &test
                    .xs
                    .iter()
                    .map(|x| gam_inter.predict(x))
                    .collect::<Vec<_>>(),
                &test.ys,
            )),
        ],
    ];
    println!();
    print_table(&["surrogate", "D* RMSE", "R2 vs T(x)", "R2 vs y"], &rows);
    println!(
        "\nExpected shape: linear << univariate GAM < GAM with interactions — \
         the flexibility/interpretability trade-off the paper describes."
    );
    gef_bench::emit_telemetry("xp_ablation_surrogates");
}
