//! Seeded closed-loop load generator for the gef-serve explanation
//! service, with an overload phase and a fault-schedule sweep.
//!
//! Boots an in-process [`gef_serve::Server`] on an ephemeral port with a
//! deliberately small queue, then hammers it with concurrent closed-loop
//! clients (each sends the next request only after reading the previous
//! response). Three phases:
//!
//! 1. **warmup** — a few sequential requests so allocator arenas and the
//!    worker pool are warm before anything is measured;
//! 2. **load** — `--clients` threads × `--requests` requests each, a
//!    seeded mix of generous-deadline explains, tight-deadline explains,
//!    predicts, and malformed requests — run **twice**: once with a
//!    fresh `Connection: close` socket per request, once with
//!    keep-alive clients that hold one connection each (responses
//!    framed by `content-length`, reconnecting whenever the server
//!    closes), so per-request connection cost is measured separately
//!    from service time;
//! 3. **faults** — `--schedules` random `GEF_FAULTS` schedules (same
//!    generator as `xp_chaos`; requires `--features fault-injection`,
//!    otherwise the phase is skipped with a note), each armed
//!    process-wide while a small client fleet keeps load on the server.
//!
//! The robustness invariant checked on **every** response:
//!
//! > The status is one of the service's typed answers (200 / 400 / 404 /
//! > 405 / 413 / 429 / 500 / 501 / 504), a 429 carries `Retry-After`,
//! > the body is JSON with `"ok"` or `"error"`, and the socket never
//! > hangs — and after `shutdown()` the drained server answers nothing.
//!
//! The server's `/metrics` exposition is scraped mid-run and again
//! after the fault sweep: both scrapes must validate as Prometheus
//! text, counters must only move forwards between them, and on a
//! clean (zero-violation) run the `gef_serve_responses_total` sum must
//! reconcile exactly with the client-side request count. The final
//! scrape is written to `BENCH_metrics.prom` (the `metrics_check` ci
//! gate re-validates it).
//!
//! Results land in `BENCH_serve.json` (latency p50/p95/p99 in µs —
//! overall and per connection mode — requests-per-second,
//! shed/degraded/error counts, violations first). Exits nonzero when
//! any response violates the invariant.
//!
//! Flags: `--ci` (fixed small load: 4 clients × 40 requests, 1 fault
//! schedule — the ci.sh gate), `--clients N` (default 8),
//! `--requests N` per client (default 50), `--schedules N` (default
//! 100), `--seed S` (default 7).

use gef_bench::chaos::SplitMix;
use gef_core::GefConfig;
use gef_forest::{GbdtParams, GbdtTrainer, Objective};
use gef_serve::{ModelEntry, ServeConfig, Server};
use gef_trace::hist::Histogram;
use gef_trace::json::JsonWriter;
use gef_trace::metrics::Exposition;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct Args {
    clients: usize,
    requests: usize,
    schedules: usize,
    seed: u64,
    ci: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        clients: 8,
        requests: 50,
        schedules: 100,
        seed: 7,
        ci: false,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let val = |j: usize| -> u64 {
            argv.get(j)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("{} requires an integer argument", argv[j - 1]))
        };
        match argv[i].as_str() {
            "--ci" => {
                out.ci = true;
                out.clients = 4;
                out.requests = 40;
                out.schedules = 1;
                i += 1;
            }
            "--clients" => {
                out.clients = val(i + 1) as usize;
                i += 2;
            }
            "--requests" => {
                out.requests = val(i + 1) as usize;
                i += 2;
            }
            "--schedules" => {
                out.schedules = val(i + 1) as usize;
                i += 2;
            }
            "--seed" => {
                out.seed = val(i + 1);
                i += 2;
            }
            other => panic!(
                "unknown flag {other:?} (expected --ci/--clients/--requests/--schedules/--seed)"
            ),
        }
    }
    out
}

/// Everything the sweep counts, merged from every client thread under
/// one lock (clients tally locally and merge once per phase).
#[derive(Default)]
struct Tally {
    requests: u64,
    ok: u64,
    degraded: u64,
    shed: u64,
    deadline_trips: u64,
    client_errors: u64,
    server_errors: u64,
    violations: Vec<String>,
}

impl Tally {
    fn merge(&mut self, other: Tally) {
        self.requests += other.requests;
        self.ok += other.ok;
        self.degraded += other.degraded;
        self.shed += other.shed;
        self.deadline_trips += other.deadline_trips;
        self.client_errors += other.client_errors;
        self.server_errors += other.server_errors;
        self.violations.extend(other.violations);
    }
}

fn train_model() -> ModelEntry {
    let mut rng = SplitMix(13);
    let xs: Vec<Vec<f64>> = (0..600)
        .map(|_| (0..3).map(|_| rng.unit()).collect())
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 2.0 * x[0] - x[1] + (x[2] * 4.0).sin())
        .collect();
    let forest = GbdtTrainer::new(GbdtParams {
        num_trees: 40,
        num_leaves: 8,
        learning_rate: 0.15,
        min_data_in_leaf: 10,
        objective: Objective::RegressionL2,
        ..Default::default()
    })
    .fit(&xs, &ys)
    .expect("load-test forest trains");
    ModelEntry {
        name: "bench".into(),
        forest,
        config: GefConfig {
            num_univariate: 3,
            n_samples: 600,
            seed: 11,
            ..Default::default()
        },
    }
}

/// Connection discipline for the load generator.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// A fresh socket + `Connection: close` per request (connection
    /// setup cost on every request — the worst case).
    Close,
    /// One held connection per client, responses framed by
    /// `content-length`, re-dialing whenever the server closes.
    KeepAlive,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Close => "close",
            Mode::KeepAlive => "keepalive",
        }
    }

    /// The `Connection` header line requests under this mode carry
    /// (HTTP/1.1 defaults to keep-alive when absent).
    fn conn_header(self) -> &'static str {
        match self {
            Mode::Close => "connection: close\r\n",
            Mode::KeepAlive => "",
        }
    }
}

/// A framing failure while reading a keep-alive response.
enum FrameError {
    /// The held socket died before any response byte arrived — the
    /// server closed it between requests (drain, shed, prior
    /// `Connection: close`). Protocol, not a violation: re-dial once.
    Stale(String),
    /// The connection failed *mid-response* — an invariant violation
    /// for an admitted request.
    Violation(String),
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// One client's transport: owns the (optional) persistent stream.
struct Conn {
    port: u16,
    mode: Mode,
    stream: Option<TcpStream>,
}

impl Conn {
    fn new(port: u16, mode: Mode) -> Conn {
        Conn {
            port,
            mode,
            stream: None,
        }
    }

    fn dial(port: u16) -> Result<TcpStream, String> {
        let s = TcpStream::connect(("127.0.0.1", port))
            .map_err(|e| format!("connect failed mid-run: {e}"))?;
        s.set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| format!("set_read_timeout: {e}"))?;
        Ok(s)
    }

    fn status_of(raw: &str) -> Result<u16, String> {
        raw.split(' ')
            .nth(1)
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("unparseable status line: {:?}", raw.lines().next()))
    }

    /// Read one `content-length`-framed response off a held stream.
    fn read_framed(s: &mut TcpStream) -> Result<String, FrameError> {
        let mut buf: Vec<u8> = Vec::new();
        let mut tmp = [0u8; 4096];
        let header_end = loop {
            if let Some(pos) = find_subslice(&buf, b"\r\n\r\n") {
                break pos + 4;
            }
            match s.read(&mut tmp) {
                Ok(0) if buf.is_empty() => {
                    return Err(FrameError::Stale("clean EOF before the response".into()))
                }
                Ok(0) => {
                    return Err(FrameError::Violation(
                        "connection closed mid-headers".into(),
                    ))
                }
                Ok(n) => buf.extend_from_slice(&tmp[..n]),
                Err(e) if buf.is_empty() => return Err(FrameError::Stale(format!("read: {e}"))),
                Err(e) => {
                    return Err(FrameError::Violation(format!(
                        "response read failed (hang?): {e}"
                    )))
                }
            }
        };
        let head = String::from_utf8_lossy(&buf[..header_end]).to_ascii_lowercase();
        let need = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length:"))
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0);
        while buf.len() < header_end + need {
            match s.read(&mut tmp) {
                Ok(0) => return Err(FrameError::Violation("connection closed mid-body".into())),
                Ok(n) => buf.extend_from_slice(&tmp[..n]),
                Err(e) => return Err(FrameError::Violation(format!("body read failed: {e}"))),
            }
        }
        Ok(String::from_utf8_lossy(&buf[..header_end + need]).into_owned())
    }

    /// One raw HTTP/1.1 exchange. Returns `(status, raw_response,
    /// latency)` or a violation string (I/O failure or a hang are
    /// invariant violations for an admitted connection — the *server*
    /// may refuse or shed, but never strand a client).
    fn exchange(&mut self, request: &[u8]) -> Result<(u16, String, Duration), String> {
        let t0 = Instant::now();
        if self.mode == Mode::Close {
            let mut s = Self::dial(self.port)?;
            s.write_all(request)
                .map_err(|e| format!("request write failed: {e}"))?;
            let mut raw = String::new();
            s.read_to_string(&mut raw)
                .map_err(|e| format!("response read failed (hang?): {e}"))?;
            return Ok((Self::status_of(&raw)?, raw, t0.elapsed()));
        }
        let mut retried = false;
        loop {
            if self.stream.is_none() {
                self.stream = Some(Self::dial(self.port)?);
            }
            let s = self.stream.as_mut().ok_or("stream just dialed")?;
            let raw = match s.write_all(request) {
                Ok(()) => Self::read_framed(s),
                // A write onto a socket the server already closed: a
                // stale-stream race, same as EOF-before-response.
                Err(e) => Err(FrameError::Stale(format!("write: {e}"))),
            };
            match raw {
                Ok(raw) => {
                    // Honor the server's close decision before reuse.
                    let head = raw
                        .split("\r\n\r\n")
                        .next()
                        .unwrap_or("")
                        .to_ascii_lowercase();
                    if head.contains("connection: close") {
                        self.stream = None;
                    }
                    return Ok((Self::status_of(&raw)?, raw, t0.elapsed()));
                }
                Err(FrameError::Stale(e)) => {
                    self.stream = None;
                    if retried {
                        return Err(format!("keep-alive socket failed twice: {e}"));
                    }
                    retried = true;
                }
                Err(FrameError::Violation(v)) => {
                    self.stream = None;
                    return Err(v);
                }
            }
        }
    }
}

fn post(path: &str, body: &str, extra: &str, conn_header: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\n{conn_header}{extra}content-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

const ALLOWED: [u16; 9] = [200, 400, 404, 405, 413, 429, 500, 501, 504];

/// `GET /metrics` over a fresh connection; returns the exposition body.
fn scrape_metrics(port: u16) -> Result<String, String> {
    let mut s = TcpStream::connect(("127.0.0.1", port)).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    s.write_all(b"GET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n")
        .map_err(|e| format!("scrape write: {e}"))?;
    let mut raw = String::new();
    s.read_to_string(&mut raw)
        .map_err(|e| format!("scrape read: {e}"))?;
    if !raw.starts_with("HTTP/1.1 200 ") {
        return Err(format!(
            "scrape answered {:?}",
            raw.lines().next().unwrap_or("")
        ));
    }
    raw.split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .ok_or_else(|| "scrape response has no body".to_string())
}

/// Scrape + validate; a failure of either is an invariant violation.
fn scrape_validated(port: u16, tally: &Mutex<Tally>) -> Option<(String, Exposition)> {
    let text = match scrape_metrics(port) {
        Ok(t) => t,
        Err(e) => {
            tally
                .lock()
                .expect("tally lock")
                .violations
                .push(format!("[metrics] {e}"));
            return None;
        }
    };
    match gef_trace::metrics::validate(&text) {
        Ok(exp) => Some((text, exp)),
        Err(e) => {
            tally
                .lock()
                .expect("tally lock")
                .violations
                .push(format!("[metrics] exposition failed validation: {e}"));
            None
        }
    }
}

/// Every `*_total` counter of `prev` must still exist and be >= in
/// `next` — Prometheus counters never move backwards across scrapes.
fn check_monotonic(prev: &Exposition, next: &Exposition, tally: &Mutex<Tally>) {
    let mut t = tally.lock().expect("tally lock");
    for s1 in prev.samples.iter().filter(|s| s.name.ends_with("_total")) {
        match next
            .samples
            .iter()
            .find(|s2| s2.name == s1.name && s2.labels == s1.labels)
        {
            Some(s2) if s2.value >= s1.value => {}
            Some(s2) => t.violations.push(format!(
                "[metrics] counter {}{:?} went backwards: {} -> {}",
                s1.name, s1.labels, s1.value, s2.value
            )),
            None => t.violations.push(format!(
                "[metrics] counter {}{:?} vanished between scrapes",
                s1.name, s1.labels
            )),
        }
    }
}

/// Send one seeded request from the closed-loop mix and classify the
/// answer into the tally. Any invariant breach lands in
/// `tally.violations` with a replayable description.
fn one_request(conn: &mut Conn, rng: &mut SplitMix, tally: &mut Tally, latency: &mut Histogram) {
    let ch = conn.mode.conn_header();
    let (request, kind) = match rng.below(10) {
        // A malformed frame: the parser must answer 400, not the
        // pipeline (always `Connection: close` — the body is unframed,
        // so the server cannot keep the stream).
        0 => (
            b"POST /explain HTTP/1.1\r\nconnection: close\r\ncontent-length: nope\r\n\r\n".to_vec(),
            "malformed",
        ),
        // A deadline that (almost) nothing survives: 504 or a fast 200,
        // never anything untyped.
        1 => (
            post(
                "/explain",
                r#"{"instance":[0.5,0.5,0.5],"deadline_ms":1}"#,
                "",
                ch,
            ),
            "tight",
        ),
        2 => (
            post("/predict", r#"{"instance":[0.3,0.7,0.2]}"#, "", ch),
            "predict",
        ),
        _ => {
            let x: Vec<String> = (0..3).map(|_| format!("{:.3}", rng.unit())).collect();
            (
                post(
                    "/explain",
                    &format!(r#"{{"instance":[{}],"deadline_ms":8000}}"#, x.join(",")),
                    "",
                    ch,
                ),
                "explain",
            )
        }
    };
    tally.requests += 1;
    let mode = conn.mode.label();
    let (status, raw, took) = match conn.exchange(&request) {
        Ok(ok) => ok,
        Err(v) => {
            tally.violations.push(format!("[{kind}/{mode}] {v}"));
            return;
        }
    };
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    latency.record(took.as_micros() as u64);
    if status == 429 && !raw.to_ascii_lowercase().contains("retry-after:") {
        tally
            .violations
            .push(format!("[{kind}/{mode}] 429 without a Retry-After header"));
        return;
    }
    if !ALLOWED.contains(&status) {
        tally.violations.push(format!(
            "[{kind}/{mode}] unexpected status {status}: {body}"
        ));
        return;
    }
    if !(body.contains("\"ok\"") || body.contains("\"error\"")) {
        tally.violations.push(format!(
            "[{kind}/{mode}] body is not a typed envelope: {body:?}"
        ));
        return;
    }
    match status {
        200 => {
            tally.ok += 1;
            // Only /explain answers carry a floor; degraded means the
            // floor was raised or the recovery ladder stepped mid-fit.
            let explain_degraded = body.contains("\"floor\"")
                && (!body.contains("\"floor\":\"full\"") || !body.contains("\"degradations\":[]"));
            if explain_degraded {
                tally.degraded += 1;
            }
        }
        429 => tally.shed += 1,
        504 => tally.deadline_trips += 1,
        400 | 404 | 405 | 413 | 501 => tally.client_errors += 1,
        _ => tally.server_errors += 1,
    }
}

/// Run `clients` closed-loop threads of `requests` requests each under
/// the given connection mode and merge their tallies and latency
/// histograms into the shared state.
fn run_fleet(
    port: u16,
    mode: Mode,
    clients: usize,
    requests: usize,
    seed: u64,
    tally: &Mutex<Tally>,
    latency: &Mutex<Histogram>,
) {
    std::thread::scope(|scope| {
        for c in 0..clients {
            scope.spawn(move || {
                let mut rng = SplitMix(seed ^ (0x5eed ^ c as u64).wrapping_mul(0x9e37));
                let mut conn = Conn::new(port, mode);
                let mut local = Tally::default();
                let mut hist = Histogram::new();
                for _ in 0..requests {
                    one_request(&mut conn, &mut rng, &mut local, &mut hist);
                }
                tally.lock().expect("tally lock").merge(local);
                latency.lock().expect("latency lock").merge(&hist);
            });
        }
    });
}

#[cfg(feature = "fault-injection")]
fn fault_sweep(
    port: u16,
    args: &Args,
    tally: &Mutex<Tally>,
    latency: &Mutex<Histogram>,
) -> Vec<String> {
    use gef_core::faults;
    let mut rng = SplitMix(args.seed);
    let mut schedules = Vec::with_capacity(args.schedules);
    let clients = args.clients.clamp(1, 3);
    let requests = if args.ci { 4 } else { 3 };
    for index in 0..args.schedules {
        let schedule = gef_bench::chaos::random_schedule(&mut rng);
        let entries = match faults::parse_spec(&schedule) {
            Ok(e) => e,
            Err(err) => {
                tally
                    .lock()
                    .expect("tally lock")
                    .violations
                    .push(format!("schedule {index} failed to parse: {err}"));
                continue;
            }
        };
        faults::reset();
        for (site, trigger) in entries {
            faults::arm(&site, trigger);
        }
        run_fleet(
            port,
            Mode::Close,
            clients,
            requests,
            args.seed ^ index as u64,
            tally,
            latency,
        );
        faults::reset();
        schedules.push(schedule);
    }
    schedules
}

#[cfg(not(feature = "fault-injection"))]
fn fault_sweep(
    _port: u16,
    _args: &Args,
    _tally: &Mutex<Tally>,
    _latency: &Mutex<Histogram>,
) -> Vec<String> {
    eprintln!(
        "xp_serve: built without --features fault-injection; skipping the fault-schedule sweep"
    );
    Vec::new()
}

fn main() {
    let args = parse_args();
    // Deadline trips and injected faults are *expected* under this
    // sweep; keep their incident dumps out of the working tree unless
    // the operator pointed GEF_INCIDENT_DIR somewhere deliberately.
    if std::env::var_os("GEF_INCIDENT_DIR").is_none() {
        std::env::set_var(
            "GEF_INCIDENT_DIR",
            std::env::temp_dir().join("gef-serve-incidents"),
        );
    }
    let model = train_model();
    // A small queue and few workers so the overload phase actually
    // overloads: shedding and preemptive degradation must both fire.
    let cfg = ServeConfig {
        workers: 2,
        queue_depth: 2,
        deadline_ms: 8_000,
        breaker_threshold: 5,
        breaker_cooldown_ms: 500,
        ..ServeConfig::default()
    };
    let server = Server::start(cfg, vec![model]).expect("server boots on an ephemeral port");
    let port = server.port();
    println!(
        "# xp_serve: port {port}, {} clients x {} requests, {} fault schedule(s), seed {}",
        args.clients, args.requests, args.schedules, args.seed
    );

    let tally = Mutex::new(Tally::default());
    let latency = Mutex::new(Histogram::new());

    // Warmup: sequential, untallied-latency requests (counted for
    // invariants only — a warmup violation is still a violation).
    {
        let mut warm = Tally::default();
        let mut hist = Histogram::new();
        let mut rng = SplitMix(args.seed ^ 0xcafe);
        let mut conn = Conn::new(port, Mode::Close);
        for _ in 0..3 {
            one_request(&mut conn, &mut rng, &mut warm, &mut hist);
        }
        tally.lock().expect("tally lock").merge(warm);
    }

    // The load phase runs once per connection mode, with its own
    // latency histogram, so the per-request connection-setup cost is
    // visible: keep-alive p50 should sit below the close-per-request
    // p50 on the same request mix.
    struct ModeStats {
        mode: &'static str,
        p50: u64,
        p95: u64,
        p99: u64,
        rps: f64,
    }
    let mut mode_stats: Vec<ModeStats> = Vec::new();
    let mut load_elapsed = 0.0f64;
    for mode in [Mode::Close, Mode::KeepAlive] {
        let hist = Mutex::new(Histogram::new());
        let t_load = Instant::now();
        run_fleet(
            port,
            mode,
            args.clients,
            args.requests,
            args.seed ^ (mode as u64) << 32,
            &tally,
            &hist,
        );
        let elapsed = t_load.elapsed().as_secs_f64();
        load_elapsed += elapsed;
        let hist = hist.into_inner().expect("mode latency lock");
        let requests = (args.clients * args.requests) as f64;
        mode_stats.push(ModeStats {
            mode: mode.label(),
            p50: hist.quantile(0.50),
            p95: hist.quantile(0.95),
            p99: hist.quantile(0.99),
            rps: if elapsed > 0.0 {
                requests / elapsed
            } else {
                0.0
            },
        });
        latency.lock().expect("latency lock").merge(&hist);
    }

    // Mid-run scrape: the exposition must parse while the server is
    // hot, and baselines the monotonicity check of the final scrape.
    // Each successful scrape is itself one served response, which the
    // reconciliation below accounts for.
    let mut scrapes = 0u64;
    let mid = scrape_validated(port, &tally);
    if mid.is_some() {
        scrapes += 1;
    }

    let schedules = fault_sweep(port, &args, &tally, &latency);

    // Final scrape (before shutdown): validate, check counters moved
    // only forwards, and reconcile the server's per-status response
    // tallies against what the clients actually counted.
    let mut metrics_text = String::new();
    let mut responses_exported = 0u64;
    if let Some((text, exp)) = scrape_validated(port, &tally) {
        if let Some((_, ref mid_exp)) = mid {
            check_monotonic(mid_exp, &exp, &tally);
        }
        responses_exported = exp.sum("gef_serve_responses_total") as u64;
        let mut t = tally.lock().expect("tally lock");
        // Reconcile only on a clean run: any earlier violation means a
        // request went unanswered, so the tallies legitimately differ.
        if t.violations.is_empty() {
            let client_requests = t.requests;
            let expected = client_requests + scrapes;
            if responses_exported != expected {
                t.violations.push(format!(
                    "[metrics] gef_serve_responses_total sums to {responses_exported}, \
                     but clients counted {expected} answered requests \
                     ({client_requests} requests + {scrapes} scrape(s))"
                ));
            }
        }
        metrics_text = text;
    }

    // Graceful drain, then the drained server must answer nothing.
    server.shutdown();
    {
        let mut t = tally.lock().expect("tally lock");
        if let Ok(mut s) = TcpStream::connect(("127.0.0.1", port)) {
            let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
            let _ = s.write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n");
            let mut buf = String::new();
            if s.read_to_string(&mut buf).unwrap_or(0) > 0 {
                t.violations
                    .push(format!("drained server still answers: {buf:?}"));
            }
        }
    }

    let tally = tally.into_inner().expect("tally lock");
    let latency = latency.into_inner().expect("latency lock");
    // Two load passes: one per connection mode.
    let load_requests = (2 * args.clients * args.requests) as f64;
    let rps = if load_elapsed > 0.0 {
        load_requests / load_elapsed
    } else {
        0.0
    };

    println!(
        "# {} requests: {} ok ({} degraded), {} shed, {} deadline trips, {} client errors, \
         {} server errors, {} violations",
        tally.requests,
        tally.ok,
        tally.degraded,
        tally.shed,
        tally.deadline_trips,
        tally.client_errors,
        tally.server_errors,
        tally.violations.len()
    );
    if latency.count() > 0 {
        println!(
            "# latency: p50 {} us, p95 {} us, p99 {} us ({:.1} req/s over the load phases)",
            latency.quantile(0.50),
            latency.quantile(0.95),
            latency.quantile(0.99),
            rps
        );
        for m in &mode_stats {
            println!(
                "#   {}: p50 {} us, p95 {} us, p99 {} us ({:.1} req/s)",
                m.mode, m.p50, m.p95, m.p99, m.rps
            );
        }
    }
    for v in &tally.violations {
        println!("VIOLATION: {v}");
    }

    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_u64("seed", args.seed);
    w.field_u64("clients", args.clients as u64);
    w.field_u64("requests_per_client", args.requests as u64);
    w.field_u64("schedules", schedules.len() as u64);
    w.field_u64("total_requests", tally.requests);
    w.field_u64("ok", tally.ok);
    w.field_u64("degraded", tally.degraded);
    w.field_u64("shed", tally.shed);
    w.field_u64("deadline_trips", tally.deadline_trips);
    w.field_u64("client_errors", tally.client_errors);
    w.field_u64("server_errors", tally.server_errors);
    w.field_f64("load_rps", rps);
    w.field_u64("latency_p50_us", latency.quantile(0.50));
    w.field_u64("latency_p95_us", latency.quantile(0.95));
    w.field_u64("latency_p99_us", latency.quantile(0.99));
    w.key("modes");
    w.begin_array();
    for m in &mode_stats {
        w.begin_object();
        w.field_str("mode", m.mode);
        w.field_u64("latency_p50_us", m.p50);
        w.field_u64("latency_p95_us", m.p95);
        w.field_u64("latency_p99_us", m.p99);
        w.field_f64("rps", m.rps);
        w.end_object();
    }
    w.end_array();
    w.field_u64("metrics_responses_total", responses_exported);
    w.field_u64("violations", tally.violations.len() as u64);
    w.key("violation_details");
    w.begin_array();
    for v in &tally.violations {
        w.value_str(v);
    }
    w.end_array();
    w.key("fault_schedules");
    w.begin_array();
    for s in &schedules {
        w.value_str(s);
    }
    w.end_array();
    w.end_object();
    std::fs::write("BENCH_serve.json", w.finish()).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
    if !metrics_text.is_empty() {
        std::fs::write("BENCH_metrics.prom", &metrics_text).expect("write BENCH_metrics.prom");
        println!("wrote BENCH_metrics.prom");
    }

    gef_bench::emit_telemetry("xp_serve");
    if !tally.violations.is_empty() {
        std::process::exit(1);
    }
}
