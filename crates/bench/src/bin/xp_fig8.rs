//! Fig. 8 — Superconductivity: sampling strategies vs `K`.
//!
//! With the Fig. 7 choice fixed (7 splines, 0 interactions), sweeps the
//! four budgeted strategies over `K` and prints the fidelity RMSE.
//! The paper's shape: Equi-Size is strongly K-sensitive and, tuned,
//! clearly the best; the other strategies are flat in `K`.

use gef_bench::{
    common_fidelity_set, f3, note_degradations, print_table, train_paper_forest, RunSize,
};
use gef_core::{GefConfig, GefExplainer, SamplingStrategy};
use gef_data::superconductivity::superconductivity_sim_sized;
use gef_forest::Objective;

fn main() {
    let size = RunSize::from_args();
    let data = superconductivity_sim_sized(size.pick(3_000, 10_000, 21_263), 1);
    let (train, _) = data.train_test_split(0.8, 2);
    let forest = train_paper_forest(&train.xs, &train.ys, size, Objective::RegressionL2);
    println!(
        "# Fig. 8 — Superconductivity(sim): sampling strategies vs K ({} trees)",
        forest.trees.len()
    );

    let ks: Vec<usize> = size.pick(
        vec![25, 100],
        vec![25, 75, 250, 1_000, 4_500],
        vec![25, 75, 250, 1_000, 4_500, 9_000],
    );
    let n_samples = size.pick(6_000, 20_000, 100_000);
    let (test_xs, test_ys) = common_fidelity_set(&forest, size.pick(1_500, 4_000, 10_000), 99);

    let strategies: [fn(usize) -> SamplingStrategy; 4] = [
        SamplingStrategy::KQuantile,
        SamplingStrategy::EquiWidth,
        SamplingStrategy::KMeans,
        SamplingStrategy::EquiSize,
    ];
    let names = ["K-Quantile", "Equi-Width", "K-Means", "Equi-Size"];
    let mut rows = Vec::new();
    let mut rows_common = Vec::new();
    for (mk, name) in strategies.iter().zip(names) {
        let mut row = vec![name.to_string()];
        let mut row_common = vec![name.to_string()];
        for &k in &ks {
            let cfg = GefConfig {
                num_univariate: 7,
                num_interactions: 0,
                sampling: mk(k),
                n_samples,
                seed: 5,
                ..Default::default()
            };
            let exp = GefExplainer::new(cfg)
                .explain(&forest)
                .expect("pipeline succeeds");
            note_degradations("xp_fig8", &exp);
            let preds: Vec<f64> = test_xs.iter().map(|x| exp.predict(x)).collect();
            row.push(f3(exp.fidelity_rmse));
            row_common.push(f3(gef_data::metrics::rmse(&preds, &test_ys)));
        }
        rows.push(row);
        rows_common.push(row_common);
    }
    let mut headers: Vec<String> = vec!["strategy".into()];
    headers.extend(ks.iter().map(|k| format!("K={k}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("\n## RMSE on the strategy's own D* test split (paper protocol)");
    print_table(&header_refs, &rows);
    println!("\n## RMSE on a common uniform probe set (stricter; our extension)");
    print_table(&header_refs, &rows_common);
    println!(
        "\nExpected shape (paper): Equi-Size varies strongly with K and wins \
         after tuning; the other strategies are relatively flat."
    );
    gef_bench::emit_telemetry("xp_fig8");
}
