//! Operator console for flight-recorder incident dumps.
//!
//! ```text
//! incident_view <incident.json>              pretty-print a dump
//! incident_view --check <incident.json>      schema-validate, exit 0/1
//! incident_view --force-fault [--deadline-ms D]
//!                                            forced-fault self-test
//! ```
//!
//! * Default mode renders the dump (`results/incidents/*.json`) for a
//!   human: cause, digests, budget state, degradation history, the
//!   replay command, and the tail of the merged event window.
//! * `--check` parses the file through [`gef_trace::json::parse`] and
//!   verifies every field its schema requires — `gef-core/incident/v1`
//!   fault dumps (which must carry the request `trace_id` they were
//!   captured under, empty outside any request scope) and
//!   `gef-core/slowreq/v1` slow-request captures (which must carry the
//!   16-hex `trace_id` of the slow request itself) — printing one line
//!   per problem. This is the round-trip gate `ci.sh` runs on
//!   forced-fault dumps.
//! * `--force-fault` (requires `--features fault-injection`) arms
//!   `GEF_FAULTS` (default `pirls.stall=always`) plus a tight hard
//!   deadline, runs a small pipeline expecting a typed error, asserts
//!   the incident dump appeared and is schema-valid, then re-arms the
//!   dump's own `replay_faults` string and proves the replay reproduces
//!   the *same* typed error. The flight recorder must make this work
//!   with `GEF_TRACE=0 GEF_PROF=0` — it is always on.
//!
//! Exit codes: 0 success, 1 failed check / failed self-test, 2 usage or
//! I/O error.

use gef_trace::json::{parse, JsonValue};

const HELP: &str = "\
usage: incident_view <incident.json>
       incident_view --check <incident.json>
       incident_view --force-fault [--deadline-ms D]

exit codes:
  0  printed / check passed / self-test passed
  1  schema check failed or self-test invariant violated
  2  usage error, unreadable file, or malformed JSON";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return;
    }
    let code = match args.first().map(String::as_str) {
        Some("--check") => match args.get(1) {
            Some(path) => check_file(path),
            None => {
                eprintln!("{HELP}");
                2
            }
        },
        Some("--force-fault") => force_fault(&args[1..]),
        Some(path) if !path.starts_with('-') && args.len() == 1 => view(path),
        _ => {
            eprintln!("{HELP}");
            2
        }
    };
    std::process::exit(code);
}

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))
}

/// Validate one parsed dump against whichever schema its `schema`
/// field declares (`gef-core/incident/v1` or `gef-core/slowreq/v1`);
/// returns one message per violated requirement.
fn schema_problems(v: &JsonValue) -> Vec<String> {
    match v.get("schema").and_then(JsonValue::as_str) {
        Some(s) if s == gef_core::incident::SLOW_SCHEMA => slow_schema_problems(v),
        _ => incident_schema_problems(v),
    }
}

/// Shared per-event check for the flight-recorder `events` array.
fn events_problems(problems: &mut Vec<String>, v: &JsonValue) {
    match v.get("events").and_then(JsonValue::as_array) {
        Some(events) => {
            for (i, e) in events.iter().enumerate() {
                let ok = e.get("kind").and_then(JsonValue::as_str).is_some()
                    && e.get("name").and_then(JsonValue::as_str).is_some()
                    && e.get("ts_ns").and_then(JsonValue::as_f64).is_some()
                    && e.get("seq").and_then(JsonValue::as_f64).is_some()
                    && e.get("tid").and_then(JsonValue::as_f64).is_some();
                if !ok {
                    problems.push(format!(
                        "events[{i}] must carry string kind/name and numeric ts_ns/seq/tid"
                    ));
                    break;
                }
            }
        }
        None => problems.push("field `events` must be an array".to_string()),
    }
}

fn incident_schema_problems(v: &JsonValue) -> Vec<String> {
    let mut problems = Vec::new();
    let mut want = |field: &str, ok: bool, what: &str| {
        if !ok {
            problems.push(format!("field `{field}` {what}"));
        }
    };

    let schema = v.get("schema").and_then(JsonValue::as_str);
    want(
        "schema",
        schema == Some(gef_core::incident::SCHEMA),
        &format!(
            "must be {:?} (found {schema:?})",
            gef_core::incident::SCHEMA
        ),
    );
    // `trace_id` ties the dump to one request's X-Gef-Trace-Id; it is
    // empty (but still present) outside any request scope.
    for field in ["label", "cause", "error", "replay_faults", "trace_id"] {
        want(
            field,
            v.get(field).and_then(JsonValue::as_str).is_some(),
            "must be a string",
        );
    }
    for field in ["created_unix_ms", "threads", "events_overwritten"] {
        want(
            field,
            v.get(field).and_then(JsonValue::as_f64).is_some(),
            "must be a number",
        );
    }
    // Digests and seed are nullable but must be present. (No
    // `gam_digest` here: a typed failure usually happens before any
    // GAM exists — that digest lives in success-path provenance.)
    for field in ["config_digest", "forest_digest", "seed"] {
        want(
            field,
            v.get(field).is_some(),
            "must be present (null allowed)",
        );
    }
    for field in ["faults_fired", "degradations"] {
        want(
            field,
            v.get(field).and_then(JsonValue::as_array).is_some(),
            "must be an array",
        );
    }

    match v.get("budget") {
        Some(b @ JsonValue::Object(_)) => {
            for field in ["active", "hard_tripped", "soft_tripped"] {
                want(
                    &format!("budget.{field}"),
                    matches!(b.get(field), Some(JsonValue::Bool(_))),
                    "must be a boolean",
                );
            }
        }
        _ => problems.push("field `budget` must be an object".to_string()),
    }

    events_problems(&mut problems, v);
    problems
}

/// Validate a `gef-core/slowreq/v1` slow-request capture: a
/// trace-id-filtered recorder slice, so it must name the request it was
/// captured for (16 lowercase hex digits, never empty — captures only
/// happen inside a request scope).
fn slow_schema_problems(v: &JsonValue) -> Vec<String> {
    let mut problems = Vec::new();
    let mut want = |field: &str, ok: bool, what: &str| {
        if !ok {
            problems.push(format!("field `{field}` {what}"));
        }
    };

    for field in ["label", "cause", "detail"] {
        want(
            field,
            v.get(field).and_then(JsonValue::as_str).is_some(),
            "must be a string",
        );
    }
    want(
        "cause",
        v.get("cause").and_then(JsonValue::as_str) == Some("slow_request"),
        "must be \"slow_request\"",
    );
    let trace = v.get("trace_id").and_then(JsonValue::as_str);
    want(
        "trace_id",
        trace.is_some_and(|t| {
            t.len() == 16
                && t.bytes()
                    .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
        }),
        &format!("must be 16 lowercase hex digits (found {trace:?})"),
    );
    for field in [
        "elapsed_ms",
        "threshold_ms",
        "created_unix_ms",
        "threads",
        "events_overwritten",
    ] {
        want(
            field,
            v.get(field).and_then(JsonValue::as_f64).is_some(),
            "must be a number",
        );
    }
    want(
        "timeline",
        v.get("timeline").is_some(),
        "must be present (null when profiling is off)",
    );
    events_problems(&mut problems, v);
    problems
}

fn check_file(path: &str) -> i32 {
    let v = match load(path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("incident_view: {e}");
            return 2;
        }
    };
    let problems = schema_problems(&v);
    if problems.is_empty() {
        let schema = v
            .get("schema")
            .and_then(JsonValue::as_str)
            .unwrap_or(gef_core::incident::SCHEMA);
        println!("incident_view: {path} is a valid {schema} dump");
        0
    } else {
        eprintln!("incident_view: {path} fails the schema check:");
        for p in &problems {
            eprintln!("  {p}");
        }
        1
    }
}

fn str_or(v: &JsonValue, key: &str, default: &str) -> String {
    v.get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or(default)
        .to_string()
}

fn view(path: &str) -> i32 {
    let v = match load(path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("incident_view: {e}");
            return 2;
        }
    };
    println!("incident  {}", path);
    println!("schema    {}", str_or(&v, "schema", "?"));
    println!(
        "cause     {} ({})",
        str_or(&v, "cause", "?"),
        str_or(&v, "label", "?")
    );
    println!("error     {}", str_or(&v, "error", "?"));
    for key in ["config_digest", "forest_digest", "gam_digest"] {
        match v.get(key) {
            Some(JsonValue::String(hex)) => println!("{key:<9} {hex}"),
            _ => println!("{key:<9} -"),
        }
    }
    if let Some(seed) = v.get("seed").and_then(JsonValue::as_f64) {
        println!("seed      {seed}");
    }
    if let Some(t) = v.get("threads").and_then(JsonValue::as_f64) {
        println!("threads   {t}");
    }
    if let Some(b) = v.get("budget") {
        let flag = |k: &str| matches!(b.get(k), Some(JsonValue::Bool(true)));
        println!(
            "budget    active={} hard_tripped={} soft_tripped={} remaining_ms={}",
            flag("active"),
            flag("hard_tripped"),
            flag("soft_tripped"),
            b.get("remaining_ms")
                .and_then(JsonValue::as_f64)
                .map_or("-".to_string(), |m| format!("{m}")),
        );
    }
    let replay = str_or(&v, "replay_faults", "");
    if replay.is_empty() {
        println!("replay    (no faults armed)");
    } else {
        println!("replay    GEF_FAULTS=\"{replay}\"");
    }
    let empty: Vec<JsonValue> = Vec::new();
    let degradations = v
        .get("degradations")
        .and_then(JsonValue::as_array)
        .unwrap_or(&empty);
    println!("degradations ({}):", degradations.len());
    for d in degradations {
        println!(
            "  {} — {}",
            str_or(d, "action", "?"),
            str_or(d, "detail", "")
        );
    }
    let events = v
        .get("events")
        .and_then(JsonValue::as_array)
        .unwrap_or(&empty);
    let overwritten = v
        .get("events_overwritten")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0);
    println!(
        "events ({} in window, {} overwritten before capture):",
        events.len(),
        overwritten
    );
    const TAIL: usize = 25;
    if events.len() > TAIL {
        println!("  ... {} earlier event(s) elided ...", events.len() - TAIL);
    }
    for e in events.iter().skip(events.len().saturating_sub(TAIL)) {
        let ts = e.get("ts_ns").and_then(JsonValue::as_f64).unwrap_or(0.0);
        let detail = str_or(e, "detail", "");
        println!(
            "  [{:>12.0} ns] {:<11} {:<7} {}{}",
            ts,
            str_or(e, "kind", "?"),
            str_or(e, "thread", "?"),
            str_or(e, "name", "?"),
            if detail.is_empty() {
                String::new()
            } else {
                format!(" — {detail}")
            }
        );
    }
    0
}

/// Forced-fault self-test: prove the whole incident pipeline end to end
/// (fault fires → typed error → dump written → dump schema-valid →
/// dump's replay string reproduces the same typed error).
#[cfg(feature = "fault-injection")]
fn force_fault(rest: &[String]) -> i32 {
    use gef_core::{faults, incident, GefConfig, GefExplainer, RunBudget, SamplingStrategy};
    use gef_forest::{GbdtParams, GbdtTrainer};
    use std::time::Duration;

    let deadline_ms: u64 = match rest.iter().position(|a| a == "--deadline-ms") {
        Some(p) => match rest.get(p + 1).and_then(|v| v.parse().ok()) {
            Some(ms) => ms,
            None => {
                eprintln!("incident_view: --deadline-ms requires an integer argument");
                return 2;
            }
        },
        None => 150,
    };
    let spec = std::env::var("GEF_FAULTS").unwrap_or_else(|_| "pirls.stall=always".to_string());
    let entries = match faults::parse_spec(&spec) {
        Ok(e) if !e.is_empty() => e,
        Ok(_) => {
            eprintln!("incident_view: GEF_FAULTS is empty; nothing to force");
            return 2;
        }
        Err(e) => {
            eprintln!("incident_view: {e}");
            return 2;
        }
    };

    // Small fixed workload, built before any fault or deadline is
    // armed. Classification, so the surrogate GAM runs PIRLS and the
    // default `pirls.stall` schedule has a site to fire at.
    let xs: Vec<Vec<f64>> = (0..600)
        .map(|i| vec![(i % 53) as f64 / 53.0, (i % 29) as f64 / 29.0])
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| f64::from(x[0] + 0.5 * x[1] > 0.7))
        .collect();
    let forest = match GbdtTrainer::new(GbdtParams {
        num_trees: 20,
        num_leaves: 8,
        learning_rate: 0.2,
        min_data_in_leaf: 10,
        objective: gef_forest::Objective::BinaryLogistic,
        ..Default::default()
    })
    .fit(&xs, &ys)
    {
        Ok(f) => f,
        Err(e) => {
            eprintln!("incident_view: workload forest failed to train: {e}");
            return 2;
        }
    };
    let explainer = GefExplainer::new(GefConfig {
        num_univariate: 2,
        num_interactions: 1,
        sampling: SamplingStrategy::EquiSize(40),
        n_samples: 1500,
        spline_basis: 10,
        tensor_basis: 5,
        seed: 11,
        ..Default::default()
    });
    let budget = RunBudget {
        hard_deadline: Some(Duration::from_millis(deadline_ms)),
        soft_deadline: Some(Duration::from_millis(deadline_ms * 4 / 5)),
        ..RunBudget::unlimited()
    };
    let run = |label: &str, entries: &[(String, faults::Trigger)]| {
        incident::set_label(label);
        gef_trace::recorder::reset();
        faults::reset();
        for (site, trigger) in entries {
            faults::arm(site, trigger.clone());
        }
        let _scope = budget.enter();
        explainer.explain(&forest)
    };

    println!("incident_view: forcing GEF_FAULTS=\"{spec}\" under GEF_DEADLINE_MS={deadline_ms}");
    let err = match run("forced", &entries) {
        Err(e) => e,
        Ok(_) => {
            eprintln!(
                "incident_view: forced-fault run completed cleanly — no incident to verify \
                 (tighten --deadline-ms or arm a harsher schedule)"
            );
            faults::reset();
            return 1;
        }
    };
    let cause = err.cause_label();
    println!("incident_view: pipeline returned typed error `{cause}`: {err}");

    let path = incident::dump_path(cause);
    let path_str = path.display().to_string();
    if !path.exists() {
        eprintln!("incident_view: expected incident dump at {path_str}, found nothing");
        faults::reset();
        return 1;
    }
    if check_file(&path_str) != 0 {
        faults::reset();
        return 1;
    }
    let replay = match load(&path_str).map(|v| str_or(&v, "replay_faults", "")) {
        Ok(r) if !r.is_empty() => r,
        Ok(_) => {
            eprintln!("incident_view: {path_str} carries no replay_faults string");
            faults::reset();
            return 1;
        }
        Err(e) => {
            eprintln!("incident_view: {e}");
            faults::reset();
            return 2;
        }
    };

    // Replay from the dump alone: re-arm exactly what the incident says
    // was armed and demand the same typed failure.
    let replay_entries = match faults::parse_spec(&replay) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("incident_view: replay_faults in {path_str} does not parse: {e}");
            faults::reset();
            return 1;
        }
    };
    let verdict = match run("forced-replay", &replay_entries) {
        Err(e2) if e2.cause_label() == cause => {
            println!(
                "incident_view: replay GEF_FAULTS=\"{replay}\" reproduced typed error `{cause}`"
            );
            println!("incident_view: forced-fault self-test PASSED ({path_str})");
            0
        }
        Err(e2) => {
            eprintln!(
                "incident_view: replay produced `{}` but the incident was `{cause}`",
                e2.cause_label()
            );
            1
        }
        Ok(_) => {
            eprintln!("incident_view: replay completed cleanly; incident was `{cause}`");
            1
        }
    };
    faults::reset();
    verdict
}

#[cfg(not(feature = "fault-injection"))]
fn force_fault(_rest: &[String]) -> i32 {
    eprintln!(
        "incident_view: --force-fault needs the fault-injection feature \
         (cargo run -p gef-bench --features fault-injection --bin incident_view -- --force-fault)"
    );
    2
}
