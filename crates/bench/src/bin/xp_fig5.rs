//! Fig. 5 — RMSE vs. number of sampled points `K` per strategy (`D'`).
//!
//! Sweeps `K` for the four budgeted strategies (All-Thresholds is the
//! K-independent baseline drawn as a horizontal line in the paper) and
//! prints the fidelity RMSE of the resulting GAM on the `D*` test
//! split. The paper's shape: Equi-Size wins at the right `K`;
//! K-Quantile and Equi-Size beat All-Thresholds; K-Means and Equi-Width
//! do worse.

use gef_bench::{
    common_fidelity_set, f3, note_degradations, print_table, train_paper_forest, RunSize,
};
use gef_core::{GefConfig, GefExplainer, SamplingStrategy};
use gef_data::synthetic::{make_d_prime, NUM_FEATURES};
use gef_forest::importance::FeatureStats;
use gef_forest::Objective;

fn main() {
    let size = RunSize::from_args();
    let data = make_d_prime(size.pick(3_000, 10_000, 10_000), 1);
    let (train, _) = data.train_test_split(0.8, 2);
    let forest = train_paper_forest(&train.xs, &train.ys, size, Objective::RegressionL2);
    let stats = FeatureStats::collect(&forest);
    let max_thresholds = stats
        .threshold_multiset
        .iter()
        .map(|v| v.len())
        .max()
        .unwrap_or(0);
    println!(
        "# Fig. 5 — sampling strategies vs K on D' ({} trees, up to {} thresholds/feature)",
        forest.trees.len(),
        max_thresholds
    );

    // Distinct thresholds per feature are capped by the 255-bin
    // histograms (as in LightGBM), so strategy differences concentrate
    // at small-to-medium K; the large-K tail shows the saturation
    // toward the All-Thresholds baseline.
    let ks: Vec<usize> = match size {
        RunSize::Quick => vec![10, 25, 100],
        RunSize::Medium => vec![10, 25, 50, 100, 250, 1_000],
        RunSize::Full => vec![10, 25, 50, 100, 250, 1_000, 4_000, 12_000, 20_000],
    };
    let n_samples = size.pick(8_000, 40_000, 100_000);

    // One shared evaluation set for every strategy (see
    // `common_fidelity_set` for why).
    let (test_xs, test_ys) = common_fidelity_set(&forest, size.pick(2_000, 5_000, 10_000), 99);
    // Returns (paper-protocol RMSE on the strategy's own D* test split,
    // RMSE on the common uniform probe set).
    let run = |sampling: SamplingStrategy, seed: u64| -> (f64, f64) {
        let cfg = GefConfig {
            num_univariate: NUM_FEATURES,
            num_interactions: 0,
            sampling,
            n_samples,
            seed,
            ..Default::default()
        };
        let exp = GefExplainer::new(cfg)
            .explain(&forest)
            .expect("pipeline succeeds");
        note_degradations("xp_fig5", &exp);
        let preds: Vec<f64> = test_xs.iter().map(|x| exp.predict(x)).collect();
        (exp.fidelity_rmse, gef_data::metrics::rmse(&preds, &test_ys))
    };

    // All-Thresholds baseline (no K).
    let (baseline, baseline_common) = run(SamplingStrategy::AllThresholds, 7);
    println!(
        "\nAll-Thresholds baseline RMSE = {} (common probe set: {})",
        f3(baseline),
        f3(baseline_common)
    );

    let strategies: [fn(usize) -> SamplingStrategy; 4] = [
        SamplingStrategy::KQuantile,
        SamplingStrategy::EquiWidth,
        SamplingStrategy::KMeans,
        SamplingStrategy::EquiSize,
    ];
    let names = ["K-Quantile", "Equi-Width", "K-Means", "Equi-Size"];
    let mut rows = Vec::new();
    let mut rows_common = Vec::new();
    let mut best: Vec<(String, f64)> = Vec::new();
    for (mk, name) in strategies.iter().zip(names) {
        let mut row = vec![name.to_string()];
        let mut row_common = vec![name.to_string()];
        let mut best_rmse = f64::INFINITY;
        for &k in &ks {
            let (rmse, rmse_common) = run(mk(k), 7);
            best_rmse = best_rmse.min(rmse);
            row.push(f3(rmse));
            row_common.push(f3(rmse_common));
        }
        best.push((name.to_string(), best_rmse));
        rows.push(row);
        rows_common.push(row_common);
    }
    let mut headers = vec!["strategy".to_string()];
    headers.extend(ks.iter().map(|k| format!("K={k}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    println!("\n## RMSE on the strategy's own D* test split (paper protocol)");
    print_table(&header_refs, &rows);
    println!("\n## RMSE on a common uniform probe set (stricter; our extension)");
    print_table(&header_refs, &rows_common);

    println!(
        "\n## Best RMSE per strategy (vs All-Thresholds {})",
        f3(baseline)
    );
    best.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    for (name, rmse) in &best {
        let delta = rmse - baseline;
        println!(
            "{name:12} {}  ({}{} vs baseline)",
            f3(*rmse),
            if delta <= 0.0 { "" } else { "+" },
            f3(delta)
        );
    }
    println!(
        "\nExpected shape (paper): Equi-Size best at tuned K; Equi-Size and \
         K-Quantile <= All-Thresholds; K-Means and Equi-Width worse."
    );
    gef_bench::emit_telemetry("xp_fig5");
}
