//! # gef-bench
//!
//! Experiment harness reproducing every table and figure of the GEF
//! paper. Each `xp_*` binary in `src/bin/` regenerates one artifact and
//! prints the same rows/series the paper reports; the criterion benches
//! in `benches/` cover micro-performance (including the paper's
//! complexity claim that *Gain-Path* is `O(|T|)` while *H-Stat* is
//! `O(N·|F'|²)`).
//!
//! Every binary accepts:
//!
//! * `--quick` — a reduced-size smoke run (seconds);
//! * `--full`  — the paper's exact sizes (minutes);
//! * no flag   — a medium configuration that preserves the paper's
//!   qualitative shape at a fraction of the cost.

use gef_forest::{Forest, GbdtParams, GbdtTrainer, Objective};

pub mod chaos;

/// Run size selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunSize {
    /// Smoke test: seconds.
    Quick,
    /// Medium: the default; preserves the paper's shape.
    Medium,
    /// The paper's exact sizes.
    Full,
}

impl RunSize {
    /// Parse from `std::env::args()` (`--quick` / `--full`).
    pub fn from_args() -> RunSize {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            RunSize::Quick
        } else if args.iter().any(|a| a == "--full") {
            RunSize::Full
        } else {
            RunSize::Medium
        }
    }

    /// Pick one of three values by run size.
    pub fn pick<T>(&self, quick: T, medium: T, full: T) -> T {
        match self {
            RunSize::Quick => quick,
            RunSize::Medium => medium,
            RunSize::Full => full,
        }
    }
}

/// GBDT hyper-parameters approximating the paper's tuned configuration
/// (1000 trees × 32 leaves, lr 0.01) scaled by run size. Shorter runs
/// use fewer, faster-learning trees — the forests stay accurate enough
/// for every qualitative result.
pub fn paper_gbdt_params(size: RunSize, objective: Objective) -> GbdtParams {
    let (num_trees, learning_rate) = match size {
        RunSize::Quick => (60, 0.1),
        RunSize::Medium => (300, 0.05),
        RunSize::Full => (1000, 0.01),
    };
    GbdtParams {
        num_trees,
        num_leaves: 32,
        learning_rate,
        min_data_in_leaf: 20,
        early_stopping_rounds: Some(50),
        objective,
        ..Default::default()
    }
}

/// Train a forest the way the paper does: 25% of the training split
/// held out for early stopping.
pub fn train_paper_forest(
    xs: &[Vec<f64>],
    ys: &[f64],
    size: RunSize,
    objective: Objective,
) -> Forest {
    let params = paper_gbdt_params(size, objective);
    let cut = xs.len() * 3 / 4;
    GbdtTrainer::new(params)
        .fit_with_valid(&xs[..cut], &ys[..cut], &xs[cut..], &ys[cut..])
        .expect("forest training succeeds on well-formed data")
}

/// A strategy-independent fidelity test set: instances sampled
/// uniformly (continuously) within each feature's ε-extended threshold
/// range, labelled by the forest. Evaluating every sampling strategy's
/// surrogate on this *common* set makes the Fig. 5 / Fig. 8 comparisons
/// apples-to-apples (a strategy's own grid-shaped `D*` test split would
/// otherwise reward coarse grids with artificially easy test points).
pub fn common_fidelity_set(forest: &Forest, n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    use rand::{Rng, SeedableRng};
    let stats = gef_forest::importance::FeatureStats::collect(forest);
    let ranges: Vec<Option<(f64, f64)>> = stats
        .thresholds
        .iter()
        .map(|v| {
            if v.is_empty() {
                None
            } else {
                let lo = v[0];
                let hi = v[v.len() - 1];
                let eps = 0.05 * (hi - lo).max(lo.abs().max(1.0) * 0.01);
                Some((lo - eps, hi + eps))
            }
        })
        .collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| {
            ranges
                .iter()
                .map(|r| match r {
                    Some((lo, hi)) => lo + (hi - lo) * rng.gen::<f64>(),
                    None => 0.0,
                })
                .collect()
        })
        .collect();
    let ys = forest
        .predict_batch(&xs)
        .expect("benchmark labeling runs without a deadline");
    (xs, ys)
}

/// Wall-clock statistics for one measurement, over however many timed
/// iterations the helper ran. Every `BENCH_*.json` artifact records the
/// iteration count alongside the seconds so a reader can tell a
/// median-of-5 from a single cold run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// Median wall-clock seconds — the headline number (robust to a
    /// single descheduled iteration).
    pub median_s: f64,
    /// Fastest iteration — the best case the machine demonstrated.
    pub min_s: f64,
    /// Mean over iterations.
    pub mean_s: f64,
    /// Population standard deviation over iterations (0 when `iters`
    /// is 1) — the noise floor regression thresholds scale with.
    pub stddev_s: f64,
    /// Number of timed iterations aggregated (warmup excluded).
    pub iters: usize,
}

impl Timing {
    /// Aggregate raw per-iteration seconds. Panics on an empty slice.
    pub fn from_samples(samples: &[f64]) -> Timing {
        assert!(!samples.is_empty(), "Timing needs at least one sample");
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let n = sorted.len();
        let median_s = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
        };
        let mean_s = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|s| (s - mean_s).powi(2)).sum::<f64>() / n as f64;
        Timing {
            median_s,
            min_s: sorted[0],
            mean_s,
            stddev_s: var.sqrt(),
            iters: n,
        }
    }

    /// Write this measurement into a JSON object as
    /// `<prefix>_s` (median), `<prefix>_min_s`, `<prefix>_stddev_s`,
    /// and `<prefix>_iters` — the shared field layout of the
    /// `BENCH_*.json` artifacts.
    pub fn write_json_fields(&self, w: &mut gef_trace::json::JsonWriter, prefix: &str) {
        w.field_f64(&format!("{prefix}_s"), self.median_s);
        w.field_f64(&format!("{prefix}_min_s"), self.min_s);
        w.field_f64(&format!("{prefix}_stddev_s"), self.stddev_s);
        w.field_u64(&format!("{prefix}_iters"), self.iters as u64);
    }
}

/// Timed iterations per measurement for [`timed_run_warmed`]
/// (`GEF_BENCH_ITERS` override, default 3, minimum 1).
pub fn bench_iters() -> usize {
    std::env::var("GEF_BENCH_ITERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3)
}

/// Run `f` once under a gef-trace span named `span` and return its
/// result together with the measured [`Timing`] (`iters == 1`,
/// `stddev_s == 0`) — the shared timing helper for the `xp_*` binaries
/// (each used to roll its own `Instant` bookkeeping).
///
/// The span lands in the process-wide [`gef_trace`] registry, so a
/// `GEF_TRACE=json` run of any experiment gets the same per-phase
/// breakdown as the library pipeline itself.
///
/// The gef-par worker pool is spawned (idempotently) *before* the clock
/// starts, so the first parallel measurement in a process is not
/// charged for thread start-up.
pub fn timed_run<T>(span: &str, f: impl FnOnce() -> T) -> (T, Timing) {
    gef_par::prestart();
    let t0 = std::time::Instant::now();
    let out = gef_trace::time(span, f);
    let s = t0.elapsed().as_secs_f64();
    (
        out,
        Timing {
            median_s: s,
            min_s: s,
            mean_s: s,
            stddev_s: 0.0,
            iters: 1,
        },
    )
}

/// Like [`timed_run`], but runs `f` once untimed first (after
/// prestarting the pool) so caches, allocator arenas, and branch
/// predictors are warm, then times [`bench_iters`] iterations and
/// aggregates them (median / min / stddev) — the measurement protocol
/// used by `xp_scaling` and the `xp_regress` gate. Returns the last
/// iteration's value.
pub fn timed_run_warmed<T>(span: &str, mut f: impl FnMut() -> T) -> (T, Timing) {
    gef_par::prestart();
    let _warmup = f();
    let iters = bench_iters();
    let mut samples = Vec::with_capacity(iters);
    let mut out = None;
    for _ in 0..iters {
        let t0 = std::time::Instant::now();
        out = Some(gef_trace::time(span, &mut f));
        samples.push(t0.elapsed().as_secs_f64());
    }
    (
        out.expect("bench_iters() >= 1"),
        Timing::from_samples(&samples),
    )
}

/// Format a wall-clock duration the way the experiment tables do.
pub fn fmt_secs(s: f64) -> String {
    format!("{s:.2}s")
}

/// Emit the collected telemetry for an experiment binary under `label`.
///
/// Honours `GEF_TRACE`: with `summary` the table goes to stderr (so it
/// never corrupts the experiment's stdout artifact), with `json` a
/// [`gef_trace::report::TelemetryReport`] lands in `results/telemetry/`.
/// Disabled mode does nothing — call it unconditionally at the end of
/// `main`.
pub fn emit_telemetry(label: &str) {
    let _ = gef_trace::global().emit(label);
}

/// Warn (on stderr, so stdout artifacts stay clean) when an explanation
/// was produced through graceful degradation, so experiment tables
/// can't silently mix degraded fits with clean ones. Returns the
/// degradation count.
pub fn note_degradations(label: &str, exp: &gef_core::GefExplanation) -> usize {
    let n = exp.degradations.len();
    if n > 0 {
        let actions: Vec<&str> = exp.degradations.iter().map(|d| d.action.label()).collect();
        eprintln!(
            "[{label}] explanation degraded {n} time(s): {}",
            actions.join(", ")
        );
    }
    n
}

/// Print a Markdown-ish table: header row, separator, data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("| {} |", padded.join(" | "));
    };
    fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        fmt_row(row);
    }
}

/// Format a float with 3 decimals (the paper's table precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_size_pick() {
        assert_eq!(RunSize::Quick.pick(1, 2, 3), 1);
        assert_eq!(RunSize::Medium.pick(1, 2, 3), 2);
        assert_eq!(RunSize::Full.pick(1, 2, 3), 3);
    }

    #[test]
    fn paper_params_match_paper_at_full() {
        let p = paper_gbdt_params(RunSize::Full, Objective::RegressionL2);
        assert_eq!(p.num_trees, 1000);
        assert_eq!(p.num_leaves, 32);
        assert!((p.learning_rate - 0.01).abs() < 1e-12);
    }

    #[test]
    fn timing_from_samples_stats() {
        let t = Timing::from_samples(&[3.0, 1.0, 2.0]);
        assert_eq!(t.median_s, 2.0);
        assert_eq!(t.min_s, 1.0);
        assert_eq!(t.iters, 3);
        assert!((t.mean_s - 2.0).abs() < 1e-12);
        // Even count: median averages the middle pair.
        let e = Timing::from_samples(&[1.0, 2.0, 3.0, 10.0]);
        assert_eq!(e.median_s, 2.5);
        // Single sample: no spread, and the json fields still land.
        let s = Timing::from_samples(&[0.5]);
        assert_eq!(s.stddev_s, 0.0);
        assert_eq!(s.iters, 1);
        let mut w = gef_trace::json::JsonWriter::new();
        w.begin_object();
        s.write_json_fields(&mut w, "phase");
        w.end_object();
        let json = w.finish();
        assert!(json.contains("\"phase_s\":"));
        assert!(json.contains("\"phase_iters\":1"));
    }

    #[test]
    fn train_paper_forest_smoke() {
        let xs: Vec<Vec<f64>> = (0..400).map(|i| vec![(i % 37) as f64 / 37.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0).collect();
        let f = train_paper_forest(&xs, &ys, RunSize::Quick, Objective::RegressionL2);
        assert!(!f.trees.is_empty());
        assert!((f.predict(&[0.5]) - 1.0).abs() < 0.2);
    }
}
