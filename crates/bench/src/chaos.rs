//! Deterministic fault-schedule generation, shared by the chaos sweep
//! (`xp_chaos`) and the serve load sweep (`xp_serve`).
//!
//! Both harnesses draw random `GEF_FAULTS` schedules from the same
//! generator so a violation found by either reproduces with the printed
//! schedule string; the generator itself is seeded and allocation-light.

/// SplitMix64: tiny, seedable, and good enough to spread schedules
/// across the space deterministically.
pub struct SplitMix(pub u64);

impl SplitMix {
    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n` clamped to at least 1).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One random `site=trigger` entry in `GEF_FAULTS` syntax, drawn from
/// the given site list and all four env-expressible trigger families.
/// The site-restricted harnesses (`xp_store` sweeps only the four
/// `store.*` disk-fault sites) share the generator with the full-space
/// sweeps so every printed schedule replays with `GEF_FAULTS`.
pub fn random_entry_from(rng: &mut SplitMix, sites: &[&str]) -> String {
    let site = sites[rng.below(sites.len() as u64) as usize];
    let trigger = match rng.below(4) {
        0 => "always".to_string(),
        1 => format!("first:{}", 1 + rng.below(8)),
        2 => {
            let k = 1 + rng.below(3);
            let hits: Vec<String> = (0..k).map(|_| rng.below(16).to_string()).collect();
            format!("hits:{}", hits.join("|"))
        }
        _ => format!(
            "seeded:{}:{:.2}",
            rng.below(1_000_000),
            0.05 + 0.85 * rng.unit()
        ),
    };
    format!("{site}={trigger}")
}

/// A full schedule over the given site list: 1–3 distinct-site entries,
/// rendered as the exact string `GEF_FAULTS` would accept (the replay
/// handle).
pub fn random_schedule_from(rng: &mut SplitMix, sites: &[&str]) -> String {
    let k = 1 + rng.below(3);
    let mut entries: Vec<String> = Vec::new();
    for _ in 0..k {
        let e = random_entry_from(rng, sites);
        let site = e.split('=').next().unwrap_or("");
        if !entries.iter().any(|p| p.starts_with(site)) {
            entries.push(e);
        }
    }
    entries.join(",")
}

/// [`random_entry_from`] over every registered injection site.
#[cfg(feature = "fault-injection")]
pub fn random_entry(rng: &mut SplitMix) -> String {
    random_entry_from(rng, &gef_core::faults::ALL_SITES)
}

/// [`random_schedule_from`] over every registered injection site.
#[cfg(feature = "fault-injection")]
pub fn random_schedule(rng: &mut SplitMix) -> String {
    random_schedule_from(rng, &gef_core::faults::ALL_SITES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_in_range() {
        let mut a = SplitMix(9);
        let mut b = SplitMix(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SplitMix(3);
        for _ in 0..100 {
            assert!(r.below(7) < 7);
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn site_restricted_schedules_stay_on_the_given_sites() {
        let sites = ["store.torn_write", "store.bit_flip"];
        let mut rng = SplitMix(5);
        for _ in 0..50 {
            let s = random_schedule_from(&mut rng, &sites);
            for entry in s.split(',') {
                let site = entry.split('=').next().unwrap();
                assert!(sites.contains(&site), "foreign site in {s}");
            }
        }
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn schedules_parse_and_have_distinct_sites() {
        let mut rng = SplitMix(42);
        for _ in 0..50 {
            let s = random_schedule(&mut rng);
            let entries = gef_core::faults::parse_spec(&s).expect("generated schedule parses");
            let mut sites: Vec<&str> = entries.iter().map(|(site, _)| site.as_str()).collect();
            sites.sort_unstable();
            sites.dedup();
            assert_eq!(sites.len(), entries.len(), "duplicate site in {s}");
        }
    }
}
