//! The paper's synthetic generators (Sec. 4.1).
//!
//! * [`g_prime`] — five univariate generator functions on `[0, 1]⁵`,
//!   each bounded roughly in `[-1, 2]` so none dominates;
//! * [`h_interaction`] — the Gaussian-bump pairwise interaction;
//! * [`g_second`] — `g'` plus injected interactions over a set `Π` of
//!   feature pairs;
//! * [`make_d_prime`] / [`make_d_second`] — the datasets `D'` and `D''`
//!   (10,000 instances in `[0,1]⁵`, per-component `N(0, 0.1²)` noise);
//! * [`sigmoid_example`] — the steep sigmoid used to illustrate the
//!   sampling strategies in Fig. 3;
//! * [`all_interaction_triples`] — the 120 3-subsets of the
//!   `C(5,2) = 10` candidate pairs used in the interaction-detection
//!   experiment (Fig. 6 / Table 1).

use crate::dataset::{Dataset, Task};
use crate::sample_normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of features in the synthetic datasets.
pub const NUM_FEATURES: usize = 5;

/// Evaluate the `i`-th (0-based) univariate generator at `v`.
///
/// Mirrors the paper's `g'` components: linear, fast sine, steep
/// sigmoid, arctan-minus-sine, and hyperbola.
pub fn generator(i: usize, v: f64) -> f64 {
    match i {
        0 => v,
        1 => (20.0 * v).sin(),
        2 => {
            let e = (50.0 * (v - 0.5)).exp();
            e / (e + 1.0)
        }
        3 => ((10.0 * v).atan() - (10.0 * v).sin()) / 2.0,
        4 => 2.0 / (v + 1.0),
        _ => panic!("generator index {i} out of range (0..5)"),
    }
}

/// The paper's base target function `g'(x)` on `[0,1]⁵`.
pub fn g_prime(x: &[f64]) -> f64 {
    (0..NUM_FEATURES).map(|i| generator(i, x[i])).sum()
}

/// The paper's pairwise interaction bump
/// `h(a, b) = 2·exp(−((a−0.5)² + (b−0.5)²) / (2·√(2π)))`.
pub fn h_interaction(a: f64, b: f64) -> f64 {
    let da = a - 0.5;
    let db = b - 0.5;
    let norm = (2.0 * std::f64::consts::PI).sqrt();
    2.0 * (-(da * da + db * db) / (2.0 * norm)).exp()
}

/// `g''_Π(x) = g'(x) + Σ_{(i,j)∈Π} h(x_i, x_j)` with 0-based pairs.
pub fn g_second(x: &[f64], pairs: &[(usize, usize)]) -> f64 {
    g_prime(x)
        + pairs
            .iter()
            .map(|&(i, j)| h_interaction(x[i], x[j]))
            .sum::<f64>()
}

/// All `C(5,2) = 10` candidate feature pairs, ordered lexicographically.
pub fn candidate_pairs() -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(10);
    for i in 0..NUM_FEATURES {
        for j in i + 1..NUM_FEATURES {
            out.push((i, j));
        }
    }
    out
}

/// All `C(10,3) = 120` triples of candidate pairs — the paper evaluates
/// interaction detection across every one of them.
pub fn all_interaction_triples() -> Vec<[(usize, usize); 3]> {
    let pairs = candidate_pairs();
    let mut out = Vec::with_capacity(120);
    for a in 0..pairs.len() {
        for b in a + 1..pairs.len() {
            for c in b + 1..pairs.len() {
                out.push([pairs[a], pairs[b], pairs[c]]);
            }
        }
    }
    out
}

/// Sample `n` instances uniformly in `[0,1]⁵` and label with `g'` plus
/// per-component Gaussian noise (`σ = 0.1` on each of the 5 generators,
/// as in the paper).
pub fn make_d_prime(n: usize, seed: u64) -> Dataset {
    make_with(n, seed, &[])
}

/// Like [`make_d_prime`] but with interactions `Π` injected (`D''`).
/// Interaction components also receive `N(0, 0.1²)` noise each.
pub fn make_d_second(n: usize, pairs: &[(usize, usize)], seed: u64) -> Dataset {
    make_with(n, seed, pairs)
}

fn make_with(n: usize, seed: u64, pairs: &[(usize, usize)]) -> Dataset {
    let _span = gef_trace::Span::enter("data.synthetic");
    gef_trace::counter!("data.rows_generated").add(n as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<f64> = (0..NUM_FEATURES).map(|_| rng.gen::<f64>()).collect();
        let mut y = 0.0;
        for (i, &v) in x.iter().enumerate() {
            y += generator(i, v) + 0.1 * sample_normal(&mut rng);
        }
        for &(i, j) in pairs {
            y += h_interaction(x[i], x[j]) + 0.1 * sample_normal(&mut rng);
        }
        xs.push(x);
        ys.push(y);
    }
    let names = (1..=NUM_FEATURES).map(|i| format!("x{i}")).collect();
    Dataset::new(xs, ys, names, Task::Regression).expect("consistent shapes")
}

/// The steep sigmoid `y = e^{50(x−0.5)} / (e^{50(x−0.5)} + 1)` used in
/// Fig. 3 to illustrate how the sampling strategies treat a threshold
/// distribution concentrated in the high-variability region.
pub fn sigmoid_example(x: f64) -> f64 {
    generator(2, x)
}

/// Dataset of `n` points `(x, sigmoid_example(x))` on `[0, 1]` (no
/// noise) — the forest trained on this produces the threshold
/// distribution shown in Fig. 3.
pub fn make_sigmoid_dataset(n: usize, seed: u64) -> Dataset {
    let _span = gef_trace::Span::enter("data.synthetic");
    gef_trace::counter!("data.rows_generated").add(n as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.gen::<f64>()]).collect();
    let ys = xs.iter().map(|x| sigmoid_example(x[0])).collect();
    Dataset::new(xs, ys, vec!["x".into()], Task::Regression).expect("consistent shapes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_bounded() {
        // The paper bounds each component roughly within [-1, 2].
        for i in 0..NUM_FEATURES {
            for k in 0..=100 {
                let v = k as f64 / 100.0;
                let y = generator(i, v);
                assert!((-1.05..=2.05).contains(&y), "g{i}({v}) = {y}");
            }
        }
    }

    #[test]
    fn g_prime_is_sum_of_generators() {
        let x = [0.3, 0.7, 0.5, 0.1, 0.9];
        let sum: f64 = (0..5).map(|i| generator(i, x[i])).sum();
        assert!((g_prime(&x) - sum).abs() < 1e-12);
    }

    #[test]
    fn interaction_peaks_at_center() {
        let center = h_interaction(0.5, 0.5);
        assert!((center - 2.0).abs() < 1e-12);
        assert!(h_interaction(0.0, 0.0) < center);
        assert!(h_interaction(1.0, 0.2) < center);
        // Symmetric.
        assert_eq!(h_interaction(0.2, 0.8), h_interaction(0.8, 0.2));
    }

    #[test]
    fn g_second_adds_bumps() {
        let x = [0.5; 5];
        let pairs = [(0, 1), (2, 3)];
        assert!((g_second(&x, &pairs) - (g_prime(&x) + 4.0)).abs() < 1e-12);
        assert_eq!(g_second(&x, &[]), g_prime(&x));
    }

    #[test]
    fn combinatorics_counts() {
        assert_eq!(candidate_pairs().len(), 10);
        let triples = all_interaction_triples();
        assert_eq!(triples.len(), 120);
        // All triples distinct.
        let mut seen = std::collections::HashSet::new();
        for t in &triples {
            assert!(seen.insert(*t));
        }
    }

    #[test]
    fn datasets_have_right_shape_and_noise() {
        let d = make_d_prime(2000, 7);
        assert_eq!(d.len(), 2000);
        assert_eq!(d.num_features(), 5);
        assert!(d
            .xs
            .iter()
            .all(|r| r.iter().all(|&v| (0.0..=1.0).contains(&v))));
        // Residual vs true function should have sd ≈ 0.1·√5 ≈ 0.224.
        let resid: Vec<f64> =
            d.xs.iter()
                .zip(&d.ys)
                .map(|(x, y)| y - g_prime(x))
                .collect();
        let var = resid.iter().map(|r| r * r).sum::<f64>() / resid.len() as f64;
        assert!((var.sqrt() - 0.2236).abs() < 0.02, "sd={}", var.sqrt());
    }

    #[test]
    fn d_second_contains_interaction_signal() {
        let pairs = [(0, 1), (0, 4), (1, 4)];
        let d = make_d_second(3000, &pairs, 11);
        let resid_noise: Vec<f64> =
            d.xs.iter()
                .zip(&d.ys)
                .map(|(x, y)| y - g_second(x, &pairs))
                .collect();
        let var = resid_noise.iter().map(|r| r * r).sum::<f64>() / resid_noise.len() as f64;
        // 8 noise components (5 generators + 3 interactions), each σ=0.1.
        assert!((var.sqrt() - (8f64).sqrt() * 0.1).abs() < 0.02);
    }

    #[test]
    fn datasets_deterministic_by_seed() {
        let a = make_d_prime(50, 3);
        let b = make_d_prime(50, 3);
        assert_eq!(a.xs, b.xs);
        assert_eq!(a.ys, b.ys);
        let c = make_d_prime(50, 4);
        assert_ne!(a.xs, c.xs);
    }

    #[test]
    fn sigmoid_example_shape() {
        assert!(sigmoid_example(0.0) < 1e-8);
        assert!((sigmoid_example(0.5) - 0.5).abs() < 1e-12);
        assert!(sigmoid_example(1.0) > 1.0 - 1e-8);
        let d = make_sigmoid_dataset(100, 1);
        assert_eq!(d.num_features(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn generator_panics_out_of_range() {
        generator(5, 0.5);
    }
}
