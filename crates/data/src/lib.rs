//! # gef-data
//!
//! Datasets and metrics for the GEF workspace:
//!
//! * [`synthetic`] — the paper's generator functions `g'`, `h`, and
//!   `g''_Π` (Sec. 4.1), plus the sigmoid example behind Fig. 3;
//! * [`superconductivity`] — a simulated stand-in for the UCI
//!   Superconductivity dataset (21,263 × 81, regression);
//! * [`census`] — a simulated stand-in for the UCI Census/Adult dataset
//!   (48,842 × 14, classification) with the paper's preprocessing
//!   (redundant column dropped, categoricals one-hot encoded);
//! * [`metrics`] — RMSE, R², Average Precision, ROC AUC, log-loss;
//! * [`csv`] — a minimal CSV loader so the *real* UCI files can be
//!   used whenever they are available;
//! * [`Dataset`] — a named feature matrix with train/test splitting and
//!   one-hot encoding.
//!
//! The real UCI files are not available in this offline environment;
//! the simulators reproduce the *structural* properties the paper's
//! evaluation exercises (dimensionality, skewed feature marginals, a
//! discontinuity in the dominant feature, sensitive categorical
//! attributes). See `DESIGN.md` ("Substitutions") for the rationale.

pub mod census;
pub mod csv;
pub mod dataset;
pub mod metrics;
pub mod superconductivity;
pub mod synthetic;

pub use dataset::{Dataset, Task};

/// Draw a standard-normal sample via Box–Muller from a uniform RNG.
///
/// Kept here (rather than pulling in `rand_distr`) because it is the
/// only non-uniform sampling primitive the workspace needs.
pub fn sample_normal<R: rand::Rng>(rng: &mut R) -> f64 {
    // Box–Muller; u1 in (0,1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }
}
