//! Simulated Census (UCI Adult) dataset.
//!
//! The paper's classification case study uses UCI Adult: 48,842 people
//! × 14 attributes, target = income > $50k. The raw file is not
//! available offline; this module synthesizes a dataset with the same
//! schema — including the sensitive attributes (race, sex,
//! relationship) that motivate the *explain-to-justify* use case — and
//! the structural relations the paper reads off its explanations, most
//! importantly that `education_num` is **positively correlated** with
//! income (Fig. 10 discussion), alongside age, hours-per-week and
//! capital-gain effects.
//!
//! [`census_processed`] applies the paper's preprocessing: the
//! redundant `education` column is dropped (it duplicates
//! `education_num`) and the categorical attributes are one-hot encoded.

use crate::dataset::{Dataset, Task};
use crate::sample_normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of rows in the real dataset (and in the simulation).
pub const NUM_ROWS: usize = 48_842;

/// The 14 raw attribute names, in UCI order.
pub const RAW_ATTRIBUTES: [&str; 14] = [
    "age",
    "workclass",
    "fnlwgt",
    "education",
    "education_num",
    "marital_status",
    "occupation",
    "relationship",
    "race",
    "sex",
    "capital_gain",
    "capital_loss",
    "hours_per_week",
    "native_country",
];

/// Cardinalities of the categorical attributes (matching UCI).
const WORKCLASS: i64 = 8;
const MARITAL: i64 = 7;
const OCCUPATION: i64 = 14;
const RELATIONSHIP: i64 = 6;
const RACE: i64 = 5;
const COUNTRY: i64 = 41;

/// Generate the raw (un-encoded) simulated Census dataset.
pub fn census_sim(seed: u64) -> Dataset {
    census_sim_sized(NUM_ROWS, seed)
}

/// Generate a raw simulated dataset with `n` rows.
pub fn census_sim_sized(n: usize, seed: u64) -> Dataset {
    let _span = gef_trace::Span::enter("data.census_sim");
    gef_trace::counter!("data.rows_generated").add(n as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let age = (17.0 + 73.0 * rng.gen::<f64>().powf(1.4)).floor(); // right-skewed 17..90
        let workclass = (rng.gen::<f64>() * WORKCLASS as f64).floor();
        let fnlwgt = (1.2e4 + 1.7e5 * (1.0 + 0.6 * sample_normal(&mut rng)).abs()).floor();
        // Education: 1..16, mildly age-correlated; `education` is the
        // same information as a (redundant) categorical code.
        let edu_num = (1.0
            + 15.0
                * ((0.45 + 0.15 * sample_normal(&mut rng) + 0.002 * (age - 38.0)).clamp(0.0, 1.0)))
        .floor();
        let education = edu_num - 1.0; // redundant code 0..15
        let marital = (rng.gen::<f64>() * MARITAL as f64).floor();
        let occupation = (rng.gen::<f64>() * OCCUPATION as f64).floor();
        let relationship = (rng.gen::<f64>() * RELATIONSHIP as f64).floor();
        let race = (rng.gen::<f64>().powf(2.5) * RACE as f64).floor().min(4.0);
        let sex = f64::from(rng.gen::<f64>() < 0.668); // 1 = male (UCI ratio)
        let capital_gain = if rng.gen::<f64>() < 0.08 {
            (2000.0 + 30000.0 * rng.gen::<f64>().powf(2.0)).floor()
        } else {
            0.0
        };
        let capital_loss = if rng.gen::<f64>() < 0.045 {
            (500.0 + 3000.0 * rng.gen::<f64>()).floor()
        } else {
            0.0
        };
        let hours = (10.0 + 80.0 * (0.38 + 0.12 * sample_normal(&mut rng)).clamp(0.0, 1.0)).floor();

        // Income model: log-odds with the relations the paper's
        // explanations surface. Married (codes 0/1) boosts odds as in
        // the real data; education dominates.
        let married = f64::from(marital < 2.0);
        let logit = -5.5 + 0.38 * edu_num + 0.045 * (age - 17.0)
            - 0.0006 * (age - 17.0) * (age - 17.0)
            + 0.030 * (hours - 40.0)
            + 1.4 * married
            + 0.25 * sex
            + 0.0001 * capital_gain
            + 0.0003 * capital_loss
            + 0.4 * sample_normal(&mut rng);
        let p = 1.0 / (1.0 + (-logit).exp());
        let y = f64::from(rng.gen::<f64>() < p);

        xs.push(vec![
            age,
            workclass,
            fnlwgt,
            education,
            edu_num,
            marital,
            occupation,
            relationship,
            race,
            sex,
            capital_gain,
            capital_loss,
            hours,
            (rng.gen::<f64>().powf(3.0) * COUNTRY as f64)
                .floor()
                .min(40.0),
        ]);
        ys.push(y);
    }
    Dataset::new(
        xs,
        ys,
        RAW_ATTRIBUTES.iter().map(|s| s.to_string()).collect(),
        Task::BinaryClassification,
    )
    .expect("consistent shapes")
}

/// The paper's preprocessing: drop the redundant `education` column and
/// one-hot encode `workclass`, `marital_status`, `occupation`,
/// `relationship`, `race`, `sex`, `native_country`.
pub fn census_processed(raw: &Dataset) -> Dataset {
    let d = raw.drop_columns(&["education"]);
    let cats: Vec<usize> = [
        "workclass",
        "marital_status",
        "occupation",
        "relationship",
        "race",
        "sex",
        "native_country",
    ]
    .iter()
    .map(|n| d.feature_index(n).expect("column present"))
    .collect();
    d.one_hot(&cats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_schema() {
        assert_eq!(NUM_ROWS, 48_842);
        let d = census_sim_sized(300, 1);
        assert_eq!(d.num_features(), 14);
        assert_eq!(d.feature_names, RAW_ATTRIBUTES.to_vec());
        assert_eq!(d.task, Task::BinaryClassification);
        assert!(d.ys.iter().all(|&y| y == 0.0 || y == 1.0));
    }

    #[test]
    fn value_ranges_plausible() {
        let d = census_sim_sized(3000, 2);
        let age = d.feature_index("age").unwrap();
        let hours = d.feature_index("hours_per_week").unwrap();
        for row in &d.xs {
            assert!((17.0..=90.0).contains(&row[age]), "age={}", row[age]);
            assert!((0.0..=100.0).contains(&row[hours]));
        }
        // Positive class rate near the real ≈24%.
        let rate = d.ys.iter().sum::<f64>() / d.len() as f64;
        assert!((0.10..0.45).contains(&rate), "rate={rate}");
    }

    #[test]
    fn education_positively_predicts_income() {
        let d = census_sim_sized(8000, 3);
        let e = d.feature_index("education_num").unwrap();
        let edu: Vec<f64> = d.xs.iter().map(|r| r[e]).collect();
        let corr = gef_linalg::stats::pearson(&edu, &d.ys);
        assert!(corr > 0.2, "corr={corr}");
    }

    #[test]
    fn education_column_is_redundant() {
        let d = census_sim_sized(500, 4);
        let e1 = d.feature_index("education").unwrap();
        let e2 = d.feature_index("education_num").unwrap();
        for r in &d.xs {
            assert_eq!(r[e1] + 1.0, r[e2]);
        }
    }

    #[test]
    fn processed_drops_education_and_expands() {
        let raw = census_sim_sized(1000, 5);
        let p = census_processed(&raw);
        assert!(p.feature_index("education").is_none());
        assert!(p.feature_index("education_num").is_some());
        // Numeric columns remain, categorical blocks expand.
        assert!(p.num_features() > 14);
        assert!(p.feature_names.iter().any(|n| n.starts_with("sex=")));
        assert!(p
            .feature_names
            .iter()
            .any(|n| n.starts_with("marital_status=")));
        // One-hot rows are 0/1.
        let sex0 = p
            .feature_names
            .iter()
            .position(|n| n.starts_with("sex="))
            .unwrap();
        for r in &p.xs {
            assert!(r[sex0] == 0.0 || r[sex0] == 1.0);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let a = census_sim_sized(100, 7);
        let b = census_sim_sized(100, 7);
        assert_eq!(a.xs, b.xs);
        assert_eq!(a.ys, b.ys);
    }
}
