//! Evaluation metrics: RMSE, R², Average Precision, ROC AUC, log-loss,
//! accuracy.
//!
//! [`average_precision`] is the ranking metric the paper borrows to
//! score interaction-detection heuristics (Fig. 6 / Table 1): candidate
//! pairs are ranked by estimated importance and scored against the set
//! of truly injected pairs.
//!
//! ## NaN/Inf policy
//!
//! The plain metrics ([`rmse`], [`r2`], …) assume finite, non-empty
//! inputs: they `assert!` on empty/mismatched slices and **propagate
//! NaN arithmetically** when fed non-finite values. Pipeline code that
//! can meet hostile numerics (the GEF recovery ladder scoring a
//! possibly-degenerate fit) should use the checked variants
//! [`try_rmse`] / [`try_r2`] / [`try_average_precision`], which return
//! a [`MetricError`] instead of a sentinel or a panic.

use std::fmt;

/// Why a checked metric could not be computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricError {
    /// Input slices were empty.
    Empty,
    /// Input slices had different lengths.
    LengthMismatch {
        /// Length of the prediction slice.
        pred: usize,
        /// Length of the truth slice.
        truth: usize,
    },
    /// An input value (or the resulting score) was NaN or infinite.
    NonFinite {
        /// Index of the first offending value, if attributable.
        index: Option<usize>,
    },
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::Empty => write!(f, "metric on empty input"),
            MetricError::LengthMismatch { pred, truth } => {
                write!(
                    f,
                    "metric length mismatch: {pred} predictions vs {truth} truths"
                )
            }
            MetricError::NonFinite { index: Some(i) } => {
                write!(f, "non-finite metric input at index {i}")
            }
            MetricError::NonFinite { index: None } => write!(f, "non-finite metric value"),
        }
    }
}

impl std::error::Error for MetricError {}

fn check_pair(pred: &[f64], truth: &[f64]) -> Result<(), MetricError> {
    if pred.len() != truth.len() {
        return Err(MetricError::LengthMismatch {
            pred: pred.len(),
            truth: truth.len(),
        });
    }
    if pred.is_empty() {
        return Err(MetricError::Empty);
    }
    for (i, (p, t)) in pred.iter().zip(truth).enumerate() {
        if !p.is_finite() || !t.is_finite() {
            return Err(MetricError::NonFinite { index: Some(i) });
        }
    }
    Ok(())
}

/// Checked [`rmse`]: errors on empty, mismatched, or non-finite input.
pub fn try_rmse(pred: &[f64], truth: &[f64]) -> Result<f64, MetricError> {
    check_pair(pred, truth)?;
    let v = rmse(pred, truth);
    if v.is_finite() {
        Ok(v)
    } else {
        // Finite inputs can still overflow the sum of squares.
        Err(MetricError::NonFinite { index: None })
    }
}

/// Checked [`r2`]: errors on empty, mismatched, or non-finite input.
///
/// The constant-truth sentinel (`NEG_INFINITY` for an imperfect fit on
/// zero-variance truth) is reported as [`MetricError::NonFinite`] so
/// callers never mistake it for a real score.
pub fn try_r2(pred: &[f64], truth: &[f64]) -> Result<f64, MetricError> {
    check_pair(pred, truth)?;
    let v = r2(pred, truth);
    if v.is_finite() {
        Ok(v)
    } else {
        Err(MetricError::NonFinite { index: None })
    }
}

/// Checked [`average_precision`]: errors on an empty ranking or one
/// with no relevant items (where the 0.0 the plain function returns is
/// a sentinel, not a score).
pub fn try_average_precision(ranked_relevance: &[bool]) -> Result<f64, MetricError> {
    if ranked_relevance.is_empty() {
        return Err(MetricError::Empty);
    }
    if !ranked_relevance.iter().any(|&r| r) {
        return Err(MetricError::NonFinite { index: None });
    }
    Ok(average_precision(ranked_relevance))
}

/// Root mean squared error.
pub fn rmse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty(), "rmse of empty slices");
    let mse = pred
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64;
    mse.sqrt()
}

/// Coefficient of determination R² = 1 − SS_res / SS_tot.
///
/// Negative values (predictor worse than the mean) are meaningful and
/// returned as-is. A constant truth yields 1.0 when predicted exactly
/// and `f64::NEG_INFINITY` otherwise.
pub fn r2(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    assert!(!pred.is_empty(), "r2 of empty slices");
    let mean = truth.iter().sum::<f64>() / truth.len() as f64;
    let ss_tot: f64 = truth.iter().map(|t| (t - mean) * (t - mean)).sum();
    let ss_res: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    if ss_tot == 0.0 {
        return if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        };
    }
    1.0 - ss_res / ss_tot
}

/// Average Precision of a ranking.
///
/// `ranked_relevance[k]` is `true` when the item at rank `k` (0 = top)
/// is relevant. `AP = (1/R) Σ_k rel_k · P@(k+1)` where `R` is the total
/// number of relevant items in the ranking.
pub fn average_precision(ranked_relevance: &[bool]) -> f64 {
    let total_relevant = ranked_relevance.iter().filter(|&&r| r).count();
    if total_relevant == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (k, &rel) in ranked_relevance.iter().enumerate() {
        if rel {
            hits += 1;
            sum += hits as f64 / (k + 1) as f64;
        }
    }
    sum / total_relevant as f64
}

/// ROC AUC via the rank-sum (Mann–Whitney) formulation; ties share
/// fractional ranks. `labels` must be 0/1.
pub fn roc_auc(scores: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&l| l > 0.5).count();
    let n_neg = labels.len() - n_pos;
    assert!(n_pos > 0 && n_neg > 0, "roc_auc needs both classes");
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
    // Fractional ranks with tie handling.
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &id in &idx[i..=j] {
            ranks[id] = avg_rank;
        }
        i = j + 1;
    }
    let sum_pos: f64 = ranks
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l > 0.5)
        .map(|(&r, _)| r)
        .sum();
    (sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

/// Binary log-loss (cross-entropy) with probability clipping.
pub fn log_loss(probs: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(probs.len(), labels.len());
    assert!(!probs.is_empty());
    probs
        .iter()
        .zip(labels)
        .map(|(&p, &y)| {
            let p = p.clamp(1e-12, 1.0 - 1e-12);
            -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
        })
        .sum::<f64>()
        / probs.len() as f64
}

/// Classification accuracy at a 0.5 threshold.
pub fn accuracy(probs: &[f64], labels: &[f64]) -> f64 {
    assert_eq!(probs.len(), labels.len());
    assert!(!probs.is_empty());
    probs
        .iter()
        .zip(labels)
        .filter(|(&p, &y)| (p > 0.5) == (y > 0.5))
        .count() as f64
        / probs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_basics() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn r2_reference() {
        // Perfect fit.
        assert_eq!(r2(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 1.0);
        // Predicting the mean gives 0.
        assert!((r2(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0])).abs() < 1e-12);
        // Worse than the mean is negative.
        assert!(r2(&[3.0, 2.0, 1.0], &[1.0, 2.0, 3.0]) < 0.0);
        // Constant truth.
        assert_eq!(r2(&[5.0, 5.0], &[5.0, 5.0]), 1.0);
        assert_eq!(r2(&[5.0, 6.0], &[5.0, 5.0]), f64::NEG_INFINITY);
    }

    #[test]
    fn ap_reference_values() {
        // Relevant at ranks 1 and 3 (1-based): AP = (1/2)(1/1 + 2/3).
        let ap = average_precision(&[true, false, true, false]);
        assert!((ap - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
        // All relevant on top.
        assert_eq!(average_precision(&[true, true, false]), 1.0);
        // Nothing relevant.
        assert_eq!(average_precision(&[false, false]), 0.0);
        // Worst case: 3 relevant at the bottom of 10 — the paper's
        // Table 1 minimum of 0.216 is exactly this configuration.
        let mut v = vec![false; 7];
        v.extend([true, true, true]);
        let worst = average_precision(&v);
        assert!((worst - (1.0 / 8.0 + 2.0 / 9.0 + 3.0 / 10.0) / 3.0).abs() < 1e-12);
        assert!((worst - 0.2158).abs() < 1e-3);
    }

    #[test]
    fn auc_reference() {
        // Perfect separation.
        assert_eq!(roc_auc(&[0.1, 0.2, 0.8, 0.9], &[0.0, 0.0, 1.0, 1.0]), 1.0);
        // Perfectly wrong.
        assert_eq!(roc_auc(&[0.9, 0.8, 0.2, 0.1], &[0.0, 0.0, 1.0, 1.0]), 0.0);
        // All scores tied: 0.5.
        assert_eq!(roc_auc(&[0.5, 0.5, 0.5, 0.5], &[0.0, 1.0, 0.0, 1.0]), 0.5);
    }

    #[test]
    fn log_loss_and_accuracy() {
        let probs = [0.9, 0.1, 0.8, 0.35];
        let labels = [1.0, 0.0, 1.0, 0.0];
        assert!(log_loss(&probs, &labels) < 0.3);
        assert_eq!(accuracy(&probs, &labels), 1.0);
        assert_eq!(accuracy(&[0.9, 0.9], &[1.0, 0.0]), 0.5);
        // Clipping keeps loss finite.
        assert!(log_loss(&[0.0], &[1.0]).is_finite());
    }

    #[test]
    #[should_panic]
    fn auc_requires_both_classes() {
        roc_auc(&[0.5, 0.6], &[1.0, 1.0]);
    }

    #[test]
    fn try_metrics_reject_empty() {
        assert_eq!(try_rmse(&[], &[]), Err(MetricError::Empty));
        assert_eq!(try_r2(&[], &[]), Err(MetricError::Empty));
        assert_eq!(try_average_precision(&[]), Err(MetricError::Empty));
    }

    #[test]
    fn try_metrics_reject_mismatch() {
        assert_eq!(
            try_rmse(&[1.0], &[1.0, 2.0]),
            Err(MetricError::LengthMismatch { pred: 1, truth: 2 })
        );
    }

    #[test]
    fn try_metrics_reject_non_finite() {
        assert_eq!(
            try_rmse(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(MetricError::NonFinite { index: Some(1) })
        );
        assert_eq!(
            try_r2(&[f64::INFINITY], &[1.0]),
            Err(MetricError::NonFinite { index: Some(0) })
        );
        // Plain rmse propagates NaN silently — the documented contrast.
        assert!(rmse(&[f64::NAN], &[1.0]).is_nan());
    }

    #[test]
    fn try_r2_constant_truth_edge_cases() {
        // Perfect fit on constant truth is a real score.
        assert_eq!(try_r2(&[5.0, 5.0], &[5.0, 5.0]), Ok(1.0));
        // Imperfect fit on constant truth: the NEG_INFINITY sentinel
        // becomes an error.
        assert_eq!(
            try_r2(&[5.0, 6.0], &[5.0, 5.0]),
            Err(MetricError::NonFinite { index: None })
        );
    }

    #[test]
    fn try_ap_matches_plain_when_defined() {
        let ranking = [true, false, true, false];
        assert_eq!(
            try_average_precision(&ranking),
            Ok(average_precision(&ranking))
        );
        // No relevant items: plain returns the 0.0 sentinel, checked errors.
        assert_eq!(average_precision(&[false, false]), 0.0);
        assert_eq!(
            try_average_precision(&[false, false]),
            Err(MetricError::NonFinite { index: None })
        );
    }
}
