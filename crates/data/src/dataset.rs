//! Named feature matrices with splitting and encoding utilities.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Learning task of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Continuous target.
    Regression,
    /// Binary 0/1 target.
    BinaryClassification,
}

/// A dataset: row-major features, targets, and feature names.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Row-major feature matrix.
    pub xs: Vec<Vec<f64>>,
    /// Targets, one per row.
    pub ys: Vec<f64>,
    /// One name per feature column.
    pub feature_names: Vec<String>,
    /// Task type.
    pub task: Task,
}

impl Dataset {
    /// Create a dataset, checking shape consistency.
    pub fn new(
        xs: Vec<Vec<f64>>,
        ys: Vec<f64>,
        feature_names: Vec<String>,
        task: Task,
    ) -> Result<Self, String> {
        if xs.len() != ys.len() {
            return Err(format!("{} rows but {} targets", xs.len(), ys.len()));
        }
        if let Some(row) = xs.first() {
            if row.len() != feature_names.len() {
                return Err(format!(
                    "{} features but {} names",
                    row.len(),
                    feature_names.len()
                ));
            }
        }
        if let Some((i, row)) = xs
            .iter()
            .enumerate()
            .find(|(_, r)| r.len() != feature_names.len())
        {
            return Err(format!(
                "row {i} has {} features, expected {}",
                row.len(),
                feature_names.len()
            ));
        }
        Ok(Dataset {
            xs,
            ys,
            feature_names,
            task,
        })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Number of feature columns.
    pub fn num_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Shuffled train/test split; `train_fraction` in (0, 1).
    pub fn train_test_split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train_fraction must be in (0,1)"
        );
        let n = self.len();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let cut = ((n as f64 * train_fraction).round() as usize).clamp(1, n - 1);
        let take = |ids: &[usize]| Dataset {
            xs: ids.iter().map(|&i| self.xs[i].clone()).collect(),
            ys: ids.iter().map(|&i| self.ys[i]).collect(),
            feature_names: self.feature_names.clone(),
            task: self.task,
        };
        (take(&idx[..cut]), take(&idx[cut..]))
    }

    /// Index of a feature by name.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.feature_names.iter().position(|n| n == name)
    }

    /// One-hot encode the given categorical columns (values are treated
    /// as integer category codes). Non-listed columns pass through; the
    /// new columns are named `"{name}={level}"`. Column order: all
    /// pass-through columns first (original order), then the expanded
    /// categorical blocks (original order).
    pub fn one_hot(&self, categorical: &[usize]) -> Dataset {
        let d = self.num_features();
        let is_cat: Vec<bool> = (0..d).map(|j| categorical.contains(&j)).collect();
        // Collect levels per categorical column.
        let mut levels: Vec<Vec<i64>> = vec![Vec::new(); d];
        for (j, lv) in levels.iter_mut().enumerate() {
            if !is_cat[j] {
                continue;
            }
            let mut set: Vec<i64> = self.xs.iter().map(|r| r[j].round() as i64).collect();
            set.sort_unstable();
            set.dedup();
            *lv = set;
        }
        let mut names = Vec::new();
        for (j, cat) in is_cat.iter().enumerate() {
            if !cat {
                names.push(self.feature_names[j].clone());
            }
        }
        for (j, cat) in is_cat.iter().enumerate() {
            if *cat {
                for &l in &levels[j] {
                    names.push(format!("{}={}", self.feature_names[j], l));
                }
            }
        }
        let xs = self
            .xs
            .iter()
            .map(|row| {
                let mut out = Vec::with_capacity(names.len());
                for j in 0..d {
                    if !is_cat[j] {
                        out.push(row[j]);
                    }
                }
                for j in 0..d {
                    if is_cat[j] {
                        let code = row[j].round() as i64;
                        for &l in &levels[j] {
                            out.push(f64::from(u8::from(code == l)));
                        }
                    }
                }
                out
            })
            .collect();
        Dataset {
            xs,
            ys: self.ys.clone(),
            feature_names: names,
            task: self.task,
        }
    }

    /// Drop the named columns, returning a new dataset.
    pub fn drop_columns(&self, names: &[&str]) -> Dataset {
        let keep: Vec<usize> = (0..self.num_features())
            .filter(|&j| !names.contains(&self.feature_names[j].as_str()))
            .collect();
        Dataset {
            xs: self
                .xs
                .iter()
                .map(|r| keep.iter().map(|&j| r[j]).collect())
                .collect(),
            ys: self.ys.clone(),
            feature_names: keep
                .iter()
                .map(|&j| self.feature_names[j].clone())
                .collect(),
            task: self.task,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![
                vec![1.0, 0.0, 10.0],
                vec![2.0, 1.0, 20.0],
                vec![3.0, 2.0, 30.0],
                vec![4.0, 0.0, 40.0],
            ],
            vec![0.0, 1.0, 0.0, 1.0],
            vec!["a".into(), "cat".into(), "b".into()],
            Task::BinaryClassification,
        )
        .unwrap()
    }

    #[test]
    fn new_checks_shapes() {
        assert!(Dataset::new(
            vec![vec![1.0]],
            vec![1.0, 2.0],
            vec!["x".into()],
            Task::Regression
        )
        .is_err());
        assert!(Dataset::new(
            vec![vec![1.0, 2.0]],
            vec![1.0],
            vec!["x".into()],
            Task::Regression
        )
        .is_err());
        assert!(Dataset::new(
            vec![vec![1.0], vec![1.0, 2.0]],
            vec![1.0, 2.0],
            vec!["x".into()],
            Task::Regression
        )
        .is_err());
    }

    #[test]
    fn split_partitions_rows() {
        let d = toy();
        let (tr, te) = d.train_test_split(0.75, 42);
        assert_eq!(tr.len(), 3);
        assert_eq!(te.len(), 1);
        assert_eq!(tr.num_features(), 3);
        // Union of targets preserved (as a multiset sum).
        let sum: f64 = tr.ys.iter().chain(te.ys.iter()).sum();
        assert_eq!(sum, 2.0);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = toy();
        let (a1, _) = d.train_test_split(0.5, 7);
        let (a2, _) = d.train_test_split(0.5, 7);
        assert_eq!(a1.xs, a2.xs);
    }

    #[test]
    fn one_hot_expands_categorical() {
        let d = toy();
        let e = d.one_hot(&[1]);
        assert_eq!(e.feature_names, vec!["a", "b", "cat=0", "cat=1", "cat=2"]);
        assert_eq!(e.xs[0], vec![1.0, 10.0, 1.0, 0.0, 0.0]);
        assert_eq!(e.xs[2], vec![3.0, 30.0, 0.0, 0.0, 1.0]);
        // Each one-hot block has exactly one 1.
        for row in &e.xs {
            let s: f64 = row[2..].iter().sum();
            assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn drop_columns_removes_by_name() {
        let d = toy();
        let e = d.drop_columns(&["cat"]);
        assert_eq!(e.feature_names, vec!["a", "b"]);
        assert_eq!(e.xs[1], vec![2.0, 20.0]);
        assert_eq!(e.ys, d.ys);
    }

    #[test]
    fn feature_index_lookup() {
        let d = toy();
        assert_eq!(d.feature_index("b"), Some(2));
        assert_eq!(d.feature_index("zzz"), None);
    }
}
