//! Simulated Superconductivity dataset.
//!
//! The paper's regression case study uses the UCI Superconductivity
//! dataset (Hamidieh 2018): 21,263 superconductors × 81 features
//! derived from elemental properties (means / weighted means / entropy
//! / range / std of atomic mass, radius, valence, …), target = critical
//! temperature in Kelvin. The raw file is not available offline, so
//! this module synthesizes a dataset with the structural properties the
//! GEF evaluation exercises:
//!
//! * **81 features** named after the real dataset's schema
//!   (`number_of_elements` + 8 properties × 10 statistics), so plots
//!   and acronyms like *WEAM* (Weighted Entropy Atomic Mass) carry
//!   over;
//! * **correlated, skewed marginals** driven by a handful of latent
//!   material factors (so feature selection has real work to do: most
//!   features are redundant proxies);
//! * a **dominant feature with a sharp discontinuity** — the paper
//!   highlights a "big jump near a value of 1.1" for WEAM — plus a few
//!   smooth univariate effects and pairwise interactions;
//! * non-negative, right-skewed target resembling critical
//!   temperatures (≈ 0–130 K).

use crate::dataset::{Dataset, Task};
use crate::sample_normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of rows in the real dataset (and in the simulation).
pub const NUM_ROWS: usize = 21_263;
/// Number of features (matching the real dataset).
pub const NUM_FEATURES: usize = 81;

/// The 8 elemental properties of the real schema.
const PROPERTIES: [&str; 8] = [
    "atomic_mass",
    "fie", // first ionization energy
    "atomic_radius",
    "density",
    "electron_affinity",
    "fusion_heat",
    "thermal_conductivity",
    "valence",
];

/// The 10 statistics of the real schema.
const STATS: [&str; 10] = [
    "mean",
    "wtd_mean",
    "gmean",
    "wtd_gmean",
    "entropy",
    "wtd_entropy",
    "range",
    "wtd_range",
    "std",
    "wtd_std",
];

/// Feature names: `number_of_elements` followed by `{stat}_{property}`
/// for every (property, statistic) combination — 81 in total.
pub fn feature_names() -> Vec<String> {
    let mut names = Vec::with_capacity(NUM_FEATURES);
    names.push("number_of_elements".to_string());
    for prop in PROPERTIES {
        for stat in STATS {
            names.push(format!("{stat}_{prop}"));
        }
    }
    names
}

/// Index of the `wtd_entropy_atomic_mass` feature (the paper's WEAM).
pub fn weam_index() -> usize {
    // number_of_elements + offset into atomic_mass block.
    1 + STATS
        .iter()
        .position(|&s| s == "wtd_entropy")
        .expect("known stat")
}

/// Index of `range_atomic_radius` (the paper's RAR, prominent in the
/// LIME comparison).
pub fn rar_index() -> usize {
    let prop = PROPERTIES
        .iter()
        .position(|&p| p == "atomic_radius")
        .expect("known property");
    let stat = STATS
        .iter()
        .position(|&s| s == "range")
        .expect("known stat");
    1 + prop * STATS.len() + stat
}

/// Generate the simulated dataset with the default size.
pub fn superconductivity_sim(seed: u64) -> Dataset {
    superconductivity_sim_sized(NUM_ROWS, seed)
}

/// Generate a simulated dataset with `n` rows (smaller sizes are handy
/// for tests and quick experiment runs).
pub fn superconductivity_sim_sized(n: usize, seed: u64) -> Dataset {
    let _span = gef_trace::Span::enter("data.superconductivity_sim");
    gef_trace::counter!("data.rows_generated").add(n as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let names = feature_names();
    let weam = weam_index();
    let rar = rar_index();
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        // Latent material factors: composition complexity, mass scale,
        // electronic structure, disorder.
        let n_elem = 1.0 + (rng.gen::<f64>() * 8.0).floor(); // 1..=8 elements
        let mass = sample_normal(&mut rng); // mass scale
        let elec = sample_normal(&mut rng); // electronic factor
        let disorder = rng.gen::<f64>(); // 0..1 structural disorder
        let mut row = vec![0.0; NUM_FEATURES];
        row[0] = n_elem;
        for (p, _) in PROPERTIES.iter().enumerate() {
            // Each property has its own loading on the latent factors.
            let load_mass = ((p as f64) * 0.7).sin();
            let load_elec = ((p as f64) * 1.3).cos();
            let base = 1.0 + load_mass * mass * 0.4 + load_elec * elec * 0.4;
            for (s, _) in STATS.iter().enumerate() {
                let j = 1 + p * STATS.len() + s;
                let noise = 0.15 * sample_normal(&mut rng);
                row[j] = match s {
                    // means & gmeans: log-normal-ish positive scales
                    0..=3 => (base + noise).exp().max(1e-3),
                    // entropies: grow with composition complexity
                    4 | 5 => ((n_elem).ln() * (0.6 + 0.4 * disorder) + 0.1 * noise).max(0.0),
                    // ranges: skewed positive, driven by disorder
                    6 | 7 => (disorder * 2.5 + 0.3 * noise.abs()) * base.abs(),
                    // stds
                    _ => (0.5 * disorder + 0.2 * noise.abs()) * base.abs(),
                };
            }
        }
        // Target: critical temperature with a sharp jump on WEAM near
        // 1.1 (the discontinuity the paper's local explanation zooms
        // in on), smooth effects and two interactions.
        let w = row[weam];
        let jump = if w > 1.1 { 35.0 } else { 0.0 };
        let smooth = 18.0 * (1.0 - (-(w - 0.2).max(0.0)).exp())
            + 9.0 * (row[rar] / (row[rar] + 1.5))
            + 4.0 * (n_elem - 1.0)
            + 6.0 * (row[1].ln().clamp(-2.0, 3.0)); // mean_atomic_mass
        let interaction = 3.0 * (row[rar] * w).tanh() + 2.5 * ((n_elem - 4.0) * disorder).tanh();
        let noise = 6.0 * sample_normal(&mut rng);
        let y = (jump + smooth + interaction + noise + 8.0).max(0.0);
        xs.push(row);
        ys.push(y);
    }
    Dataset::new(xs, ys, names, Task::Regression).expect("consistent shapes")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_real_dataset() {
        let names = feature_names();
        assert_eq!(names.len(), 81);
        assert_eq!(names[0], "number_of_elements");
        assert_eq!(names[weam_index()], "wtd_entropy_atomic_mass");
        assert_eq!(names[rar_index()], "range_atomic_radius");
        // All names distinct.
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 81);
    }

    #[test]
    fn default_size_matches_uci() {
        // Shape-only check on a small sample to keep the test fast; the
        // full-size constant matches the UCI row count.
        assert_eq!(NUM_ROWS, 21_263);
        let d = superconductivity_sim_sized(500, 1);
        assert_eq!(d.len(), 500);
        assert_eq!(d.num_features(), 81);
    }

    #[test]
    fn target_is_temperature_like() {
        let d = superconductivity_sim_sized(4000, 2);
        assert!(d.ys.iter().all(|&y| y >= 0.0));
        let mean = d.ys.iter().sum::<f64>() / d.len() as f64;
        assert!(mean > 10.0 && mean < 90.0, "mean temp {mean}");
        let max = d.ys.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(max < 250.0, "max temp {max}");
    }

    #[test]
    fn weam_jump_is_visible() {
        let d = superconductivity_sim_sized(6000, 3);
        let w = weam_index();
        let (mut hi, mut lo) = (Vec::new(), Vec::new());
        for (x, &y) in d.xs.iter().zip(&d.ys) {
            // Compare just either side of the discontinuity to isolate
            // the jump from the smooth trend.
            if x[w] > 1.1 && x[w] < 1.35 {
                hi.push(y);
            } else if x[w] > 0.85 && x[w] <= 1.1 {
                lo.push(y);
            }
        }
        assert!(hi.len() > 50 && lo.len() > 50, "{} {}", hi.len(), lo.len());
        let m_hi = hi.iter().sum::<f64>() / hi.len() as f64;
        let m_lo = lo.iter().sum::<f64>() / lo.len() as f64;
        assert!(m_hi - m_lo > 20.0, "jump {} vs {}", m_hi, m_lo);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = superconductivity_sim_sized(50, 9);
        let b = superconductivity_sim_sized(50, 9);
        assert_eq!(a.ys, b.ys);
    }

    #[test]
    fn features_are_correlated_not_independent() {
        // mean and wtd_mean of the same property share latent factors.
        let d = superconductivity_sim_sized(3000, 5);
        let c1: Vec<f64> = d.xs.iter().map(|r| r[1]).collect(); // mean_atomic_mass
        let c2: Vec<f64> = d.xs.iter().map(|r| r[2]).collect(); // wtd_mean_atomic_mass
        let corr = gef_linalg::stats::pearson(&c1, &c2);
        assert!(corr > 0.5, "corr={corr}");
    }
}
