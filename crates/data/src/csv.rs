//! Minimal CSV loading for numeric datasets.
//!
//! The simulated datasets in this crate stand in for the UCI files the
//! paper uses; when the real files *are* available, [`read_csv`] loads
//! them into a [`Dataset`] so every experiment can run on the genuine
//! data instead. Supports headers, a selectable target column, simple
//! quoting, and automatic label encoding of non-numeric columns.

use crate::dataset::{Dataset, Task};
use std::collections::HashMap;
use std::io::BufRead;

/// CSV parsing options.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field separator.
    pub separator: char,
    /// Whether the first row is a header with column names.
    pub has_header: bool,
    /// Target column selector: a name (requires header) or an index.
    pub target: TargetSelector,
    /// Task type of the resulting dataset.
    pub task: Task,
}

/// How the target column is identified.
#[derive(Debug, Clone)]
pub enum TargetSelector {
    /// By column name (requires a header row).
    Name(String),
    /// By zero-based column index.
    Index(usize),
    /// The last column.
    Last,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            separator: ',',
            has_header: true,
            target: TargetSelector::Last,
            task: Task::Regression,
        }
    }
}

/// Parse CSV text into a [`Dataset`].
///
/// Non-numeric feature columns are label-encoded (each distinct string
/// becomes an integer code, in order of first appearance); the target
/// column must be numeric for regression, and numeric or two-valued
/// categorical for classification.
pub fn read_csv(text: &str, options: &CsvOptions) -> Result<Dataset, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let first = lines.next().ok_or("empty CSV input")?;
    let first_fields = split_fields(first, options.separator);
    let num_cols = first_fields.len();
    if num_cols < 2 {
        return Err(format!("need at least 2 columns, found {num_cols}"));
    }
    let (header, mut body): (Vec<String>, Vec<Vec<String>>) = if options.has_header {
        (first_fields, Vec::new())
    } else {
        (
            (0..num_cols).map(|i| format!("col{i}")).collect(),
            vec![first_fields],
        )
    };
    for (lineno, line) in lines.enumerate() {
        let fields = split_fields(line, options.separator);
        if fields.len() != num_cols {
            return Err(format!(
                "row {} has {} fields, expected {num_cols}",
                lineno + 1,
                fields.len()
            ));
        }
        body.push(fields);
    }
    if body.is_empty() {
        return Err("no data rows".into());
    }
    let target_idx = match &options.target {
        TargetSelector::Index(i) => {
            if *i >= num_cols {
                return Err(format!("target index {i} out of range"));
            }
            *i
        }
        TargetSelector::Name(name) => header
            .iter()
            .position(|h| h == name)
            .ok_or_else(|| format!("no column named {name:?}"))?,
        TargetSelector::Last => num_cols - 1,
    };

    // Label-encode non-numeric feature columns.
    let mut encoders: Vec<Option<HashMap<String, f64>>> = vec![None; num_cols];
    let mut xs = Vec::with_capacity(body.len());
    let mut ys = Vec::with_capacity(body.len());
    for (r, row) in body.iter().enumerate() {
        let mut feats = Vec::with_capacity(num_cols - 1);
        for (c, field) in row.iter().enumerate() {
            let value = match field.trim().parse::<f64>() {
                Ok(v) => v,
                Err(_) => {
                    if c == target_idx && options.task == Task::Regression {
                        return Err(format!(
                            "non-numeric regression target {field:?} at row {r}"
                        ));
                    }
                    let enc = encoders[c].get_or_insert_with(HashMap::new);
                    let next = enc.len() as f64;
                    *enc.entry(field.trim().to_string()).or_insert(next)
                }
            };
            if c == target_idx {
                ys.push(value);
            } else {
                feats.push(value);
            }
        }
        xs.push(feats);
    }
    if options.task == Task::BinaryClassification {
        let distinct: std::collections::BTreeSet<u64> = ys.iter().map(|y| y.to_bits()).collect();
        if distinct.len() != 2 {
            return Err(format!(
                "binary target must have exactly 2 distinct values, found {}",
                distinct.len()
            ));
        }
        // Map the two values onto {0, 1} preserving order.
        let lo = f64::from_bits(*distinct.iter().next().expect("two values"));
        for y in &mut ys {
            *y = f64::from(u8::from(*y != lo));
        }
    }
    let names: Vec<String> = header
        .iter()
        .enumerate()
        .filter(|&(c, _)| c != target_idx)
        .map(|(_, h)| h.clone())
        .collect();
    Dataset::new(xs, ys, names, options.task)
}

/// Load a CSV file from disk.
pub fn read_csv_file(path: &std::path::Path, options: &CsvOptions) -> Result<Dataset, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path:?}: {e}"))?;
    let mut text = String::new();
    let mut reader = std::io::BufReader::new(file);
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("read {path:?}: {e}"))?;
        if n == 0 {
            break;
        }
        text.push_str(&line);
    }
    read_csv(&text, options)
}

/// Split one CSV line, honouring simple double-quoting.
fn split_fields(line: &str, sep: char) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    for ch in line.chars() {
        match ch {
            '"' => in_quotes = !in_quotes,
            c if c == sep && !in_quotes => {
                out.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_numeric_csv_with_header() {
        let csv = "a,b,target\n1,2,3\n4,5,6\n";
        let d = read_csv(csv, &CsvOptions::default()).unwrap();
        assert_eq!(d.feature_names, vec!["a", "b"]);
        assert_eq!(d.xs, vec![vec![1.0, 2.0], vec![4.0, 5.0]]);
        assert_eq!(d.ys, vec![3.0, 6.0]);
    }

    #[test]
    fn target_by_name_and_index() {
        let csv = "x,y,z\n1,2,3\n";
        let by_name = read_csv(
            csv,
            &CsvOptions {
                target: TargetSelector::Name("y".into()),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(by_name.ys, vec![2.0]);
        assert_eq!(by_name.feature_names, vec!["x", "z"]);
        let by_index = read_csv(
            csv,
            &CsvOptions {
                target: TargetSelector::Index(0),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(by_index.ys, vec![1.0]);
    }

    #[test]
    fn label_encodes_strings() {
        let csv = "color,size,y\nred,1,0.5\nblue,2,0.7\nred,3,0.9\n";
        let d = read_csv(csv, &CsvOptions::default()).unwrap();
        // red -> 0, blue -> 1 (first-appearance order).
        assert_eq!(d.xs[0][0], 0.0);
        assert_eq!(d.xs[1][0], 1.0);
        assert_eq!(d.xs[2][0], 0.0);
    }

    #[test]
    fn binary_classification_maps_labels() {
        let csv = "f,income\n1,<=50K\n2,>50K\n3,<=50K\n";
        let d = read_csv(
            csv,
            &CsvOptions {
                task: Task::BinaryClassification,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(d.ys, vec![0.0, 1.0, 0.0]);
        assert_eq!(d.task, Task::BinaryClassification);
    }

    #[test]
    fn quoted_separators_are_kept() {
        let csv = "name,y\n\"a,b\",1\nplain,2\n";
        let d = read_csv(csv, &CsvOptions::default()).unwrap();
        // "a,b" is one label-encoded field.
        assert_eq!(d.xs.len(), 2);
        assert_eq!(d.xs[0][0], 0.0);
        assert_eq!(d.xs[1][0], 1.0);
    }

    #[test]
    fn no_header_generates_names() {
        let csv = "1,2\n3,4\n";
        let d = read_csv(
            csv,
            &CsvOptions {
                has_header: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(d.feature_names, vec!["col0"]);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(read_csv("", &CsvOptions::default()).is_err());
        assert!(read_csv("only_one_column\n1\n", &CsvOptions::default()).is_err());
        // Ragged row.
        assert!(read_csv("a,b\n1,2\n3\n", &CsvOptions::default()).is_err());
        // Non-numeric regression target.
        assert!(read_csv("a,y\n1,foo\n", &CsvOptions::default()).is_err());
        // Bad target name.
        let bad = CsvOptions {
            target: TargetSelector::Name("zzz".into()),
            ..Default::default()
        };
        assert!(read_csv("a,b\n1,2\n", &bad).is_err());
        // Binary task with 3 label values.
        let bin = CsvOptions {
            task: Task::BinaryClassification,
            ..Default::default()
        };
        assert!(read_csv("a,y\n1,0\n2,1\n3,2\n", &bin).is_err());
    }

    #[test]
    fn semicolon_separator() {
        let csv = "a;b\n1;2\n";
        let d = read_csv(
            csv,
            &CsvOptions {
                separator: ';',
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(d.ys, vec![2.0]);
    }
}
