//! Special functions: log-gamma, regularized incomplete beta, error
//! function — the minimal set needed for Student-t and normal
//! distribution functions used by the evaluation harness (Welch's
//! t-test, Bayesian interval z-scores).
//!
//! Implementations follow the classic Lanczos / Lentz continued-fraction
//! formulations (Numerical Recipes style) and are accurate to ~1e-12 over
//! the parameter ranges the workspace exercises.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Lanczos approximation with g = 7, n = 9 coefficients.
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula keeps accuracy near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `0 ≤ x ≤ 1`, evaluated with Lentz's continued fraction.
pub fn betainc_reg(a: f64, b: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && b > 0.0);
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    // Use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a) to keep the continued
    // fraction in its fast-converging region.
    if x <= (a + 1.0) / (a + b + 2.0) {
        ln_front.exp() * beta_cf(a, b, x) / a
    } else {
        1.0 - betainc_reg(b, a, 1.0 - x)
    }
}

/// Continued-fraction core of the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Series expansion for `x < a + 1`, Lentz continued fraction otherwise
/// (Numerical Recipes `gammp`). Accurate to ~1e-13.
pub fn gammainc_lower_reg(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series: P(a,x) = e^{-x} x^a / Γ(a) · Σ x^n Γ(a)/Γ(a+1+n)
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-16 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a,x), then P = 1 - Q.
        const FPMIN: f64 = 1e-300;
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / FPMIN;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < FPMIN {
                d = FPMIN;
            }
            c = b + an / c;
            if c.abs() < FPMIN {
                c = FPMIN;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-16 {
                break;
            }
        }
        let q = (-x + a * x.ln() - ln_gamma(a)).exp() * h;
        1.0 - q
    }
}

/// Error function `erf(x) = sign(x) · P(1/2, x²)`, accurate to ~1e-13.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = gammainc_lower_reg(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Standard normal CDF Φ(x).
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Inverse standard normal CDF (quantile function), Acklam's algorithm,
/// refined with one Halley step; |error| < 1e-9 for p in (1e-300, 1).
pub fn norm_ppf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "norm_ppf requires p in (0,1), got {p}");
    // Coefficients for the central and tail rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step against the high-accuracy erf-based CDF.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// CDF of Student's t distribution with `df` degrees of freedom.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    debug_assert!(df > 0.0);
    let x = df / (df + t * t);
    let p = 0.5 * betainc_reg(0.5 * df, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (n, f) in facts.iter().enumerate() {
            let x = (n + 1) as f64;
            assert!((ln_gamma(x) - (f as &f64).ln()).abs() < 1e-10, "n={n}");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn betainc_endpoints_and_symmetry() {
        assert_eq!(betainc_reg(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betainc_reg(2.0, 3.0, 1.0), 1.0);
        let x = 0.37;
        let s = betainc_reg(2.5, 1.25, x) + betainc_reg(1.25, 2.5, 1.0 - x);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn betainc_uniform_case() {
        // I_x(1,1) = x
        for &x in &[0.1, 0.5, 0.9] {
            assert!((betainc_reg(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn erf_reference_values() {
        assert!((erf(0.0)).abs() < 1e-12);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_91).abs() < 1e-6);
    }

    #[test]
    fn norm_cdf_symmetry() {
        for &x in &[0.3, 1.1, 2.7] {
            assert!((norm_cdf(x) + norm_cdf(-x) - 1.0).abs() < 1e-7);
        }
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((norm_cdf(1.959_964) - 0.975).abs() < 1e-5);
    }

    #[test]
    fn norm_ppf_roundtrip() {
        for &p in &[0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999] {
            let x = norm_ppf(p);
            assert!((norm_cdf(x) - p).abs() < 1e-6, "p={p}");
        }
        assert!((norm_ppf(0.975) - 1.959_964).abs() < 1e-4);
    }

    #[test]
    fn student_t_reference_values() {
        // t distribution with df=1 is Cauchy: CDF(1) = 3/4.
        assert!((student_t_cdf(1.0, 1.0) - 0.75).abs() < 1e-10);
        // Symmetric around 0.
        assert!((student_t_cdf(0.0, 7.0) - 0.5).abs() < 1e-12);
        // df → ∞ approaches the normal distribution.
        assert!((student_t_cdf(1.96, 1e7) - norm_cdf(1.96)).abs() < 1e-5);
        // scipy: stats.t.cdf(2.0, 10) = 0.963306...
        assert!((student_t_cdf(2.0, 10.0) - 0.963_306).abs() < 1e-5);
    }
}
