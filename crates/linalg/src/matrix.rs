//! Dense row-major matrix.
//!
//! [`Matrix`] implements exactly the operations the GEF workspace needs:
//! construction, indexed access, mat-vec and mat-mat products, transpose,
//! and symmetric accumulation (`A += x xᵀ`, the hot path of the GAM's
//! normal-equation build-up).

use crate::{LinalgError, Result};
use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                context: "Matrix::from_vec",
                got: (data.len(), 1),
                expected: (rows * cols, 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build a matrix from nested rows. All rows must have equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(LinalgError::EmptyInput("Matrix::from_rows"));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    context: "Matrix::from_rows (ragged rows)",
                    got: (1, r.len()),
                    expected: (1, cols),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "Matrix::matvec",
                got: (x.len(), 1),
                expected: (self.cols, 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            *o = dot(row, x);
        }
        Ok(out)
    }

    /// Transposed matrix-vector product `selfᵀ * x`.
    pub fn tr_matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "Matrix::tr_matvec",
                got: (x.len(), 1),
                expected: (self.rows, 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (o, &r) in out.iter_mut().zip(row) {
                *o += xi * r;
            }
        }
        Ok(out)
    }

    /// Matrix-matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                context: "Matrix::matmul",
                got: (other.rows, other.cols),
                expected: (self.cols, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous
        // rows of `other` and `out` (cache-friendly for row-major data).
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// `selfᵀ * self` (Gram matrix), exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let row = self.row(i);
            g.syr_upper(row, 1.0);
        }
        g.mirror_upper();
        g
    }

    /// Symmetric rank-1 update of the upper triangle: `self += w * x xᵀ`
    /// (upper triangle only; call [`Matrix::mirror_upper`] to complete).
    ///
    /// This is the hot path for accumulating `XᵀWX` row by row.
    #[inline]
    pub fn syr_upper(&mut self, x: &[f64], w: f64) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(self.rows, self.cols);
        let n = self.cols;
        for (j, &xj) in x.iter().enumerate() {
            let wxj = w * xj;
            if wxj == 0.0 {
                continue;
            }
            let row = &mut self.data[j * n..(j + 1) * n];
            for (rk, &xk) in row[j..].iter_mut().zip(&x[j..]) {
                *rk += wxj * xk;
            }
        }
    }

    /// Sparse symmetric rank-1 update of the upper triangle using only
    /// the non-zero entries `(index, value)` of `x`: `self += w * x xᵀ`.
    ///
    /// `nz` must be sorted by index. This is what makes GAM fitting with
    /// 100k-row design matrices cheap: a cubic-spline row has only a few
    /// non-zeros, so the update is O(nnz²) instead of O(p²).
    #[inline]
    pub fn syr_upper_sparse(&mut self, nz: &[(usize, f64)], w: f64) {
        debug_assert_eq!(self.rows, self.cols);
        let n = self.cols;
        for (a, &(j, xj)) in nz.iter().enumerate() {
            let wxj = w * xj;
            for &(k, xk) in &nz[a..] {
                self.data[j * n + k] += wxj * xk;
            }
        }
    }

    /// Copy the upper triangle into the lower one, making the matrix
    /// fully symmetric after a sequence of `syr_upper*` updates.
    pub fn mirror_upper(&mut self) {
        debug_assert_eq!(self.rows, self.cols);
        let n = self.cols;
        for i in 1..n {
            for j in 0..i {
                self.data[i * n + j] = self.data[j * n + i];
            }
        }
    }

    /// Element-wise `self += scale * other`.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f64) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch {
                context: "Matrix::add_scaled",
                got: (other.rows, other.cols),
                expected: (self.rows, self.cols),
            });
        }
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Maximum absolute element (∞-norm over entries).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Manually unrolled 4-way accumulation: breaks the sequential FP
    // dependency chain and lets the compiler vectorize.
    let chunks = a.len() / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    for c in 0..chunks {
        let i = c * 4;
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
    }
    let mut s = s0 + s1 + s2 + s3;
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        assert!(Matrix::from_rows(&[]).is_err());
    }

    #[test]
    fn matvec_works() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let y = m.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn tr_matvec_matches_transpose_matvec() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let a = m.tr_matvec(&[1.0, -2.0]).unwrap();
        let b = m.transpose().matvec(&[1.0, -2.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn matmul_identity() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let p = m.matmul(&Matrix::identity(2)).unwrap();
        assert_eq!(p, m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert!(approx(c[(0, 0)], 19.0));
        assert!(approx(c[(0, 1)], 22.0));
        assert!(approx(c[(1, 0)], 43.0));
        assert!(approx(c[(1, 1)], 50.0));
    }

    #[test]
    fn gram_equals_explicit_product() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![-1.0, 0.5]]).unwrap();
        let g = m.gram();
        let e = m.transpose().matmul(&m).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx(g[(i, j)], e[(i, j)]), "({i},{j})");
            }
        }
    }

    #[test]
    fn syr_sparse_matches_dense() {
        let mut a = Matrix::zeros(4, 4);
        let mut b = Matrix::zeros(4, 4);
        let x = [0.0, 2.0, 0.0, -3.0];
        a.syr_upper(&x, 0.5);
        b.syr_upper_sparse(&[(1, 2.0), (3, -3.0)], 0.5);
        a.mirror_upper();
        b.mirror_upper();
        assert_eq!(a, b);
    }

    #[test]
    fn add_scaled_and_max_abs() {
        let mut a = Matrix::identity(2);
        let b = Matrix::identity(2);
        a.add_scaled(&b, 2.0).unwrap();
        assert_eq!(a[(0, 0)], 3.0);
        assert_eq!(a.max_abs(), 3.0);
        assert!(a.add_scaled(&Matrix::zeros(3, 3), 1.0).is_err());
    }

    #[test]
    fn dot_unrolled_matches_naive() {
        let a: Vec<f64> = (0..13).map(|i| i as f64 * 0.3 - 1.0).collect();
        let b: Vec<f64> = (0..13).map(|i| (i as f64).sin()).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-12);
    }
}
