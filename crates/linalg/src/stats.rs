//! Descriptive statistics, quantiles, and Welch's t-test.
//!
//! The paper compares interaction-detection strategies with a two-tailed
//! Welch t-test at α = 0.05 (Table 1 discussion); [`welch_t_test`]
//! reproduces that analysis. Quantile helpers back the `K-Quantile`
//! sampling strategy and the histogram binning of the GBDT trainer.

use crate::special::student_t_cdf;

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (denominator n-1). Returns 0.0 for n < 2.
pub fn variance(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64
}

/// Sample standard deviation (sqrt of [`variance`]).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Population (biased, denominator n) standard deviation.
pub fn std_dev_pop(xs: &[f64]) -> f64 {
    let n = xs.len();
    if n == 0 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / n as f64).sqrt()
}

/// Linear-interpolation quantile of a **sorted** slice, `q` in [0, 1]
/// (type-7, the numpy default).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = h - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Quantile of an unsorted slice (sorts a copy).
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&v, q)
}

/// Pearson correlation coefficient of two equal-length slices.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    sxy / (sxx * syy).sqrt()
}

/// Result of a Welch two-sample t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WelchResult {
    /// The t statistic.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-tailed p-value.
    pub p_value: f64,
}

/// Two-tailed Welch's t-test for unequal variances.
///
/// Both samples must contain at least two observations. If both sample
/// variances are zero the test is degenerate: p = 1.0 when the means are
/// equal, p = 0.0 otherwise.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> WelchResult {
    assert!(a.len() >= 2 && b.len() >= 2, "welch_t_test needs n >= 2");
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (variance(a), variance(b));
    let se2 = va / na + vb / nb;
    if se2 == 0.0 {
        let equal = (ma - mb).abs() < f64::EPSILON;
        return WelchResult {
            t: if equal { 0.0 } else { f64::INFINITY },
            df: na + nb - 2.0,
            p_value: if equal { 1.0 } else { 0.0 },
        };
    }
    let t = (ma - mb) / se2.sqrt();
    let df = se2 * se2 / ((va / na).powi(2) / (na - 1.0) + (vb / nb).powi(2) / (nb - 1.0));
    let p = 2.0 * (1.0 - student_t_cdf(t.abs(), df));
    WelchResult {
        t,
        df,
        p_value: p.clamp(0.0, 1.0),
    }
}

/// Evenly spaced grid of `n` points from `lo` to `hi` inclusive.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    match n {
        0 => Vec::new(),
        1 => vec![(lo + hi) / 2.0],
        _ => {
            let step = (hi - lo) / (n - 1) as f64;
            (0..n).map(|i| lo + step * i as f64).collect()
        }
    }
}

/// Log-spaced grid of `n` points from `lo` to `hi` inclusive (both > 0).
///
/// ```
/// let grid = gef_linalg::stats::logspace(1e-2, 1e2, 5);
/// assert_eq!(grid.len(), 5);
/// for (g, want) in grid.iter().zip([1e-2, 1e-1, 1.0, 1e1, 1e2]) {
///     assert!((g - want).abs() < 1e-9 * want);
/// }
/// ```
pub fn logspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > 0.0, "logspace needs positive bounds");
    linspace(lo.ln(), hi.ln(), n)
        .into_iter()
        .map(f64::exp)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev_pop(&xs) - 2.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn quantile_type7() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12); // numpy: 1.75
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 1.0).collect();
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn welch_matches_scipy_reference() {
        // Reference (scipy.stats.ttest_ind(a, b, equal_var=False)):
        // t = -2.835264, df = 27.71363, p = 0.0084527.
        let a = [
            27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7,
            21.4,
        ];
        let b = [
            27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.0,
            23.9,
        ];
        let r = welch_t_test(&a, &b);
        assert!((r.t + 2.835_264).abs() < 1e-5, "t={}", r.t);
        assert!((r.df - 27.713_626).abs() < 1e-4, "df={}", r.df);
        assert!((r.p_value - 0.008_452_7).abs() < 1e-6, "p={}", r.p_value);
    }

    #[test]
    fn welch_identical_samples() {
        let a = [1.0, 2.0, 3.0];
        let r = welch_t_test(&a, &a);
        assert!(r.t.abs() < 1e-12);
        assert!((r.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn welch_zero_variance() {
        let a = [5.0, 5.0];
        let b = [7.0, 7.0];
        let r = welch_t_test(&a, &b);
        assert_eq!(r.p_value, 0.0);
        let r2 = welch_t_test(&a, &a);
        assert_eq!(r2.p_value, 1.0);
    }

    #[test]
    fn linspace_logspace() {
        assert_eq!(linspace(0.0, 1.0, 5), vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(linspace(0.0, 1.0, 0), Vec::<f64>::new());
        assert_eq!(linspace(2.0, 4.0, 1), vec![3.0]);
        let ls = logspace(1e-3, 1e3, 7);
        assert!((ls[0] - 1e-3).abs() < 1e-12);
        assert!((ls[3] - 1.0).abs() < 1e-12);
        assert!((ls[6] - 1e3).abs() < 1e-9);
    }
}
