//! Cholesky (LLᵀ) factorization of symmetric positive-definite matrices.
//!
//! The GAM fitter solves penalized normal equations `(XᵀWX + λS) β = XᵀWz`
//! repeatedly while scanning λ for GCV; each candidate λ is one Cholesky
//! factorization plus a handful of triangular solves. The penalized system
//! is symmetric positive definite for λ > 0 (up to identifiability
//! constraints handled upstream), so Cholesky is both the fastest and the
//! most numerically honest choice.

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor stored densely (upper part is zero).
    l: Matrix,
}

impl Cholesky {
    /// Factorize a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read. Fails with
    /// [`LinalgError::NotPositiveDefinite`] when a pivot is ≤ 0 (within a
    /// small tolerance scaled by the matrix magnitude).
    pub fn factor(a: &Matrix) -> Result<Self> {
        if gef_trace::fault::fires("chol.factor") {
            return Err(LinalgError::NotPositiveDefinite {
                pivot: 0,
                value: f64::NAN,
            });
        }
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                context: "Cholesky::factor (non-square)",
                got: (a.rows(), a.cols()),
                expected: (a.rows(), a.rows()),
            });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal element.
            let mut d = a[(j, j)];
            let lrow_j = l.row(j);
            d -= crate::matrix::dot(&lrow_j[..j], &lrow_j[..j]);
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j, value: d });
            }
            let dsqrt = d.sqrt();
            l[(j, j)] = dsqrt;
            // Column below the diagonal.
            for i in j + 1..n {
                let mut s = a[(i, j)];
                // dot of row i and row j prefixes
                let (ri, rj) = (i * n, j * n);
                let data = l.data();
                let mut acc = 0.0;
                for k in 0..j {
                    acc += data[ri + k] * data[rj + k];
                }
                s -= acc;
                l[(i, j)] = s / dsqrt;
            }
        }
        Ok(Cholesky { l })
    }

    /// Factorize with an escalating ridge jitter added to the diagonal.
    ///
    /// Penalized GAM systems can be semi-definite along penalty null
    /// spaces when λ is tiny; a jitter of `base * tr(A)/n` (escalated
    /// ×10 up to `max_tries` times) restores definiteness with a
    /// perturbation far below the statistical noise floor.
    pub fn factor_jittered(a: &Matrix, base: f64, max_tries: u32) -> Result<Self> {
        let _span = gef_trace::Span::enter("linalg.cholesky_jittered");
        match Self::factor(a) {
            Ok(c) => return Ok(c),
            Err(LinalgError::NotPositiveDefinite { .. }) => {}
            Err(e) => return Err(e),
        }
        let n = a.rows();
        let mean_diag = (0..n).map(|i| a[(i, i)].abs()).sum::<f64>() / n.max(1) as f64;
        let mut jitter = base * mean_diag.max(f64::MIN_POSITIVE);
        let mut last = LinalgError::NotPositiveDefinite {
            pivot: 0,
            value: 0.0,
        };
        for _ in 0..max_tries {
            gef_trace::counter!("linalg.cholesky_jitter_retries").incr();
            let mut aj = a.clone();
            for i in 0..n {
                aj[(i, i)] += jitter;
            }
            match Self::factor(&aj) {
                Ok(c) => return Ok(c),
                Err(e) => last = e,
            }
            jitter *= 10.0;
        }
        Err(last)
    }

    /// Borrow the lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solve `A x = b` in place: forward then backward substitution.
    pub fn solve_into(&self, b: &mut [f64]) -> Result<()> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "Cholesky::solve",
                got: (b.len(), 1),
                expected: (n, 1),
            });
        }
        let data = self.l.data();
        // Forward: L y = b
        for i in 0..n {
            let row = &data[i * n..i * n + i];
            let mut s = b[i];
            for (k, &lik) in row.iter().enumerate() {
                s -= lik * b[k];
            }
            b[i] = s / data[i * n + i];
        }
        // Backward: Lᵀ x = y
        for i in (0..n).rev() {
            let mut s = b[i];
            for k in i + 1..n {
                s -= data[k * n + i] * b[k];
            }
            b[i] = s / data[i * n + i];
        }
        Ok(())
    }

    /// Solve `A x = b`, returning a fresh vector.
    ///
    /// ```
    /// use gef_linalg::{Cholesky, Matrix};
    ///
    /// // A = [[4, 2], [2, 3]] is symmetric positive definite.
    /// let mut a = Matrix::zeros(2, 2);
    /// a[(0, 0)] = 4.0;
    /// a[(0, 1)] = 2.0;
    /// a[(1, 0)] = 2.0;
    /// a[(1, 1)] = 3.0;
    /// let chol = Cholesky::factor(&a).unwrap();
    /// let x = chol.solve(&[10.0, 8.0]).unwrap();
    /// // Check A·x = b.
    /// assert!((4.0 * x[0] + 2.0 * x[1] - 10.0).abs() < 1e-12);
    /// assert!((2.0 * x[0] + 3.0 * x[1] - 8.0).abs() < 1e-12);
    /// ```
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = b.to_vec();
        self.solve_into(&mut x)?;
        Ok(x)
    }

    /// Solve `A X = B` column by column for a dense right-hand side.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "Cholesky::solve_matrix",
                got: (b.rows(), b.cols()),
                expected: (n, b.cols()),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        for j in 0..b.cols() {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            self.solve_into(&mut col)?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Full inverse `A⁻¹` (needed for the GAM's Bayesian covariance).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// `log |A|` via the factor diagonal: `2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        let n = self.dim();
        (0..n).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Quadratic form `xᵀ A⁻¹ x` without materializing the inverse:
    /// solve `L y = x` and return `‖y‖²`.
    pub fn quad_inv(&self, x: &[f64]) -> Result<f64> {
        let n = self.dim();
        if x.len() != n {
            return Err(LinalgError::DimensionMismatch {
                context: "Cholesky::quad_inv",
                got: (x.len(), 1),
                expected: (n, 1),
            });
        }
        let data = self.l.data();
        let mut y = x.to_vec();
        for i in 0..n {
            let mut s = y[i];
            for k in 0..i {
                s -= data[i * n + k] * y[k];
            }
            y[i] = s / data[i * n + i];
        }
        Ok(crate::matrix::dot(&y, &y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a random-ish SPD matrix deterministically: A = MᵀM + n·I.
    fn spd(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        let mut state = 42u64;
        for i in 0..n {
            for j in 0..n {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                m[(i, j)] = ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            }
        }
        let mut a = m.gram();
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    }

    #[test]
    fn factor_and_reconstruct() {
        let a = spd(6);
        let ch = Cholesky::factor(&a).unwrap();
        let l = ch.l().clone();
        let lt = l.transpose();
        let rec = l.matmul(&lt).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                assert!((rec[(i, j)] - a[(i, j)]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn solve_residual_small() {
        let a = spd(8);
        let ch = Cholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..8).map(|i| (i as f64).cos()).collect();
        let x = ch.solve(&b).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (p, q) in ax.iter().zip(&b) {
            assert!((p - q).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-1 PSD matrix: xxᵀ with x = (1,1).
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        assert!(Cholesky::factor(&a).is_err());
        let ch = Cholesky::factor_jittered(&a, 1e-10, 12).unwrap();
        assert_eq!(ch.dim(), 2);
    }

    #[test]
    fn jitter_exhaustion_returns_last_error() {
        // Strongly indefinite: diagonal -1, so every jittered attempt
        // (base 1e-10 escalated ×10, at most 3 tries → ≤ 1e-8) still has
        // a negative pivot. All tries must be consumed and the final
        // NotPositiveDefinite error returned instead of a panic.
        let a = Matrix::from_rows(&[vec![-1.0, 0.0], vec![0.0, -1.0]]).unwrap();
        let err = Cholesky::factor_jittered(&a, 1e-10, 3).unwrap_err();
        assert!(matches!(
            err,
            LinalgError::NotPositiveDefinite { pivot: 0, value } if value < 0.0
        ));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = spd(5);
        let inv = Cholesky::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - want).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn log_det_matches_2x2_closed_form() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let det: f64 = 4.0 * 3.0 - 1.0;
        let ch = Cholesky::factor(&a).unwrap();
        assert!((ch.log_det() - det.ln()).abs() < 1e-12);
    }

    #[test]
    fn quad_inv_matches_explicit() {
        let a = spd(4);
        let ch = Cholesky::factor(&a).unwrap();
        let x = [1.0, -2.0, 0.5, 3.0];
        let explicit = {
            let s = ch.solve(&x).unwrap();
            crate::matrix::dot(&x, &s)
        };
        assert!((ch.quad_inv(&x).unwrap() - explicit).abs() < 1e-9);
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = spd(4);
        let ch = Cholesky::factor(&a).unwrap();
        let b = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![2.0, -1.0],
            vec![0.5, 0.5],
        ])
        .unwrap();
        let x = ch.solve_matrix(&b).unwrap();
        let ax = a.matmul(&x).unwrap();
        for i in 0..4 {
            for j in 0..2 {
                assert!((ax[(i, j)] - b[(i, j)]).abs() < 1e-9);
            }
        }
    }
}
