//! # gef-linalg
//!
//! Self-contained dense linear algebra and statistics kernels used across
//! the GEF workspace. The GAM solver needs symmetric positive-definite
//! solves (penalized normal equations), the forest trainer needs quantile
//! sketches, and the evaluation harness needs Welch's t-test — all of
//! which are implemented here without external numeric dependencies.
//!
//! The crate is deliberately small and row-major throughout:
//!
//! * [`Matrix`] — dense row-major `f64` matrix with the handful of
//!   operations the workspace needs (mat-mul, transpose, symmetric rank
//!   updates).
//! * [`Cholesky`] — LLᵀ factorization with solve / inverse / log-det,
//!   plus a jittered variant for nearly-singular penalized systems.
//! * [`stats`] — descriptive statistics, quantiles, Student-t and normal
//!   distribution functions, Welch's t-test.
//! * [`special`] — log-gamma and the regularized incomplete beta
//!   function backing the t-distribution CDF.

#![deny(missing_docs)]

pub mod cholesky;
pub mod matrix;
pub mod special;
pub mod stats;

pub use cholesky::Cholesky;
pub use matrix::Matrix;

/// Error type for linear algebra operations.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Matrix dimensions are incompatible with the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        context: &'static str,
        /// Dimensions that were actually provided.
        got: (usize, usize),
        /// Dimensions that were expected.
        expected: (usize, usize),
    },
    /// Factorization failed because the matrix is not positive definite
    /// (a non-positive pivot was encountered at the given index).
    NotPositiveDefinite {
        /// Index of the offending pivot.
        pivot: usize,
        /// Value of the offending pivot.
        value: f64,
    },
    /// An input was empty where a non-empty slice is required.
    EmptyInput(&'static str),
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                context,
                got,
                expected,
            } => write!(
                f,
                "dimension mismatch in {context}: got {}x{}, expected {}x{}",
                got.0, got.1, expected.0, expected.1
            ),
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} = {value:e}"
            ),
            LinalgError::EmptyInput(what) => write!(f, "empty input: {what}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
