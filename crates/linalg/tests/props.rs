//! Property-based tests for the linear-algebra kernels.

use gef_linalg::{stats, Cholesky, Matrix};
use proptest::prelude::*;

/// Random SPD matrix A = MᵀM + n·I from a flat coefficient vector.
fn spd_from(coeffs: &[f64], n: usize) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = coeffs[i * n + j];
        }
    }
    let mut a = m.gram();
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_solves_random_spd_systems(
        coeffs in proptest::collection::vec(-3.0f64..3.0, 25),
        rhs in proptest::collection::vec(-10.0f64..10.0, 5),
    ) {
        let a = spd_from(&coeffs, 5);
        let ch = Cholesky::factor(&a).expect("SPD by construction");
        let x = ch.solve(&rhs).unwrap();
        let ax = a.matvec(&x).unwrap();
        for (p, q) in ax.iter().zip(&rhs) {
            prop_assert!((p - q).abs() < 1e-8, "residual too large");
        }
        // log|A| is finite and the inverse is symmetric.
        prop_assert!(ch.log_det().is_finite());
        let inv = ch.inverse().unwrap();
        for i in 0..5 {
            for j in 0..5 {
                prop_assert!((inv[(i, j)] - inv[(j, i)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn quad_inv_is_nonnegative(
        coeffs in proptest::collection::vec(-2.0f64..2.0, 16),
        x in proptest::collection::vec(-5.0f64..5.0, 4),
    ) {
        let a = spd_from(&coeffs, 4);
        let ch = Cholesky::factor(&a).unwrap();
        // xᵀA⁻¹x >= 0 for SPD A.
        prop_assert!(ch.quad_inv(&x).unwrap() >= -1e-10);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(
        mut xs in proptest::collection::vec(-100.0f64..100.0, 1..50),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = (xs[0], xs[xs.len() - 1]);
        let (qa, qb) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let va = stats::quantile_sorted(&xs, qa);
        let vb = stats::quantile_sorted(&xs, qb);
        prop_assert!(va <= vb + 1e-12);
        prop_assert!(va >= lo && vb <= hi);
    }

    #[test]
    fn welch_p_value_is_symmetric_and_valid(
        a in proptest::collection::vec(-10.0f64..10.0, 3..20),
        b in proptest::collection::vec(-10.0f64..10.0, 3..20),
    ) {
        let r1 = stats::welch_t_test(&a, &b);
        let r2 = stats::welch_t_test(&b, &a);
        prop_assert!((0.0..=1.0).contains(&r1.p_value));
        prop_assert!((r1.p_value - r2.p_value).abs() < 1e-9);
        prop_assert!((r1.t + r2.t).abs() < 1e-9);
    }

    #[test]
    fn student_t_cdf_is_monotone(
        t1 in -20.0f64..20.0,
        t2 in -20.0f64..20.0,
        df in 1.0f64..100.0,
    ) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let ca = gef_linalg::special::student_t_cdf(lo, df);
        let cb = gef_linalg::special::student_t_cdf(hi, df);
        prop_assert!(ca <= cb + 1e-12);
        prop_assert!((0.0..=1.0).contains(&ca));
    }

    #[test]
    fn norm_ppf_inverts_cdf(p in 0.001f64..0.999) {
        let x = gef_linalg::special::norm_ppf(p);
        prop_assert!((gef_linalg::special::norm_cdf(x) - p).abs() < 1e-6);
    }

    #[test]
    fn gram_matrix_is_psd(
        coeffs in proptest::collection::vec(-5.0f64..5.0, 12),
        v in proptest::collection::vec(-3.0f64..3.0, 3),
    ) {
        // 4x3 matrix -> 3x3 gram; vᵀGv = ||Mv||² >= 0.
        let m = Matrix::from_vec(4, 3, coeffs).unwrap();
        let g = m.gram();
        let gv = g.matvec(&v).unwrap();
        let quad: f64 = v.iter().zip(&gv).map(|(a, b)| a * b).sum();
        prop_assert!(quad >= -1e-9);
    }
}
