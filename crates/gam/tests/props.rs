//! Property-based tests for the GAM machinery.

use gef_gam::penalty::{difference_penalty, tensor_penalty};
use gef_gam::{fit, BSplineBasis, GamSpec, LambdaSelection, TermSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bspline_partition_of_unity_everywhere(
        num_basis in 4usize..30,
        degree in 1usize..4,
        lo in -50.0f64..50.0,
        span in 0.1f64..100.0,
        t in 0.0f64..1.0,
    ) {
        prop_assume!(num_basis > degree);
        let hi = lo + span;
        let b = BSplineBasis::new(num_basis, degree, lo, hi).unwrap();
        let x = lo + t * span;
        let (first, vals) = b.eval_sparse(x);
        prop_assert_eq!(vals.len(), degree + 1);
        prop_assert!(first + vals.len() <= num_basis);
        let s: f64 = vals.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-9, "sum = {}", s);
        prop_assert!(vals.iter().all(|&v| v >= -1e-9));
    }

    #[test]
    fn bspline_clamps_outside_domain(
        num_basis in 5usize..15,
        x in -1000.0f64..1000.0,
    ) {
        let b = BSplineBasis::new(num_basis, 3, 0.0, 1.0).unwrap();
        let clamped = b.eval_sparse(x.clamp(0.0, 1.0));
        prop_assert_eq!(b.eval_sparse(x), clamped);
    }

    #[test]
    fn difference_penalty_annihilates_its_null_space(
        k in 4usize..25,
        order in 1usize..3,
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
    ) {
        let p = difference_penalty(k, order);
        // order-1: constants; order-2: constants + linear.
        let beta: Vec<f64> = (0..k)
            .map(|i| {
                if order == 1 {
                    a
                } else {
                    a + b * i as f64
                }
            })
            .collect();
        let pb = p.matvec(&beta).unwrap();
        let quad: f64 = beta.iter().zip(&pb).map(|(x, y)| x * y).sum();
        prop_assert!(quad.abs() < 1e-7 * (1.0 + a.abs() + b.abs()).powi(2) * k as f64);
    }

    #[test]
    fn penalties_are_psd(
        k1 in 3usize..8,
        k2 in 3usize..8,
        beta in proptest::collection::vec(-3.0f64..3.0, 64),
    ) {
        let p1 = difference_penalty(k1, 2);
        let p2 = difference_penalty(k2, 2);
        let t = tensor_penalty(&p1, &p2);
        let v = &beta[..k1 * k2];
        let tv = t.matvec(v).unwrap();
        let quad: f64 = v.iter().zip(&tv).map(|(x, y)| x * y).sum();
        prop_assert!(quad >= -1e-8);
    }

    #[test]
    fn fitted_gam_prediction_is_finite_and_decomposes(
        seed in 0u64..500,
        q in 0.0f64..1.0,
    ) {
        let xs: Vec<Vec<f64>> = (0..150)
            .map(|i| vec![((i as u64).wrapping_mul(seed * 2 + 1) % 97) as f64 / 97.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 4.0).sin()).collect();
        let gam = fit(
            &GamSpec {
                lambda: LambdaSelection::Fixed(0.1),
                ..GamSpec::regression(vec![TermSpec::spline(0, (0.0, 1.0))])
            },
            &xs,
            &ys,
        )
        .unwrap();
        let x = [q];
        let pred = gam.predict(&x);
        prop_assert!(pred.is_finite());
        let sum = gam.effective_intercept() + gam.component(0, &x);
        prop_assert!((sum - gam.predict_raw(&x)).abs() < 1e-9);
        // Standard errors are non-negative and finite.
        let (_, se) = gam.component_with_se(0, &x);
        prop_assert!(se.is_finite() && se >= 0.0);
    }

    #[test]
    fn logit_gam_outputs_probabilities(
        seed in 0u64..500,
        q in 0.0f64..1.0,
    ) {
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![((i as u64).wrapping_mul(seed * 2 + 3) % 89) as f64 / 89.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| f64::from(x[0] > 0.5)).collect();
        let gam = fit(
            &GamSpec {
                lambda: LambdaSelection::Fixed(1.0),
                ..GamSpec::classification(vec![TermSpec::spline(0, (0.0, 1.0))])
            },
            &xs,
            &ys,
        )
        .unwrap();
        let p = gam.predict(&[q]);
        prop_assert!((0.0..=1.0).contains(&p), "p = {}", p);
    }
}
