//! B-spline bases on uniform knots (P-spline convention).
//!
//! A [`BSplineBasis`] with `num_basis = k` functions of degree `d` over
//! `[lo, hi]` uses `k − d` uniform inner intervals with `d` extra knots
//! extended past each boundary (Eilers & Marx P-splines). Evaluation
//! returns the `d + 1` non-zero basis values and the index of the first
//! one — the sparse row block that keeps GAM fitting cheap.

use crate::GamError;
use serde::{Deserialize, Serialize};

/// A univariate B-spline basis on uniform knots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BSplineBasis {
    /// Number of basis functions.
    num_basis: usize,
    /// Polynomial degree (3 = cubic).
    degree: usize,
    /// Domain lower bound.
    lo: f64,
    /// Domain upper bound.
    hi: f64,
    /// Full knot vector (length `num_basis + degree + 1`).
    knots: Vec<f64>,
}

impl BSplineBasis {
    /// Create a basis of `num_basis` functions of `degree` with
    /// **uniform** knots over `[lo, hi]`.
    ///
    /// Requires `num_basis > degree` and `hi > lo`.
    pub fn new(num_basis: usize, degree: usize, lo: f64, hi: f64) -> Result<Self, GamError> {
        if num_basis <= degree {
            return Err(GamError::InvalidSpec(format!(
                "num_basis ({num_basis}) must exceed degree ({degree})"
            )));
        }
        // `!(hi > lo)` deliberately rejects NaN alongside empty ranges.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(hi > lo) || !lo.is_finite() || !hi.is_finite() {
            return Err(GamError::InvalidSpec(format!(
                "invalid domain [{lo}, {hi}]"
            )));
        }
        let segments = num_basis - degree;
        let h = (hi - lo) / segments as f64;
        let n_knots = num_basis + degree + 1;
        let knots = (0..n_knots)
            .map(|i| lo + h * (i as f64 - degree as f64))
            .collect();
        Ok(BSplineBasis {
            num_basis,
            degree,
            lo,
            hi,
            knots,
        })
    }

    /// Create a basis with interior knots at **quantiles of anchor
    /// values** (sorted, duplicates allowed).
    ///
    /// Uniform knots on a heavily skewed domain leave long spans with
    /// no training support, where a penalized fit extrapolates linearly
    /// and can run away; anchoring each knot span to an equal share of
    /// the anchor mass guarantees support everywhere the anchors live.
    /// Falls back to uniform spacing over the anchor range when the
    /// anchors provide too few distinct quantiles.
    pub fn from_anchors(
        num_basis: usize,
        degree: usize,
        anchors: &[f64],
    ) -> Result<Self, GamError> {
        if num_basis <= degree {
            return Err(GamError::InvalidSpec(format!(
                "num_basis ({num_basis}) must exceed degree ({degree})"
            )));
        }
        if anchors.len() < 2 {
            return Err(GamError::InvalidSpec(
                "need at least 2 anchor values".into(),
            ));
        }
        debug_assert!(
            anchors.windows(2).all(|w| w[0] <= w[1]),
            "anchors must be sorted"
        );
        let lo = anchors[0];
        let hi = anchors[anchors.len() - 1];
        // `!(hi > lo)` deliberately rejects NaN alongside empty ranges.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(hi > lo) || !lo.is_finite() || !hi.is_finite() {
            return Err(GamError::InvalidSpec(format!(
                "degenerate anchor range [{lo}, {hi}]"
            )));
        }
        let segments = num_basis - degree;
        // Quantile breakpoints, repaired to be strictly increasing.
        let mut breaks: Vec<f64> = (0..=segments)
            .map(|i| gef_linalg::stats::quantile_sorted(anchors, i as f64 / segments as f64))
            .collect();
        let min_gap = (hi - lo) * 1e-9;
        let mut strictly_increasing = true;
        for i in 1..breaks.len() {
            if breaks[i] <= breaks[i - 1] + min_gap {
                strictly_increasing = false;
                break;
            }
        }
        if !strictly_increasing {
            // Blend quantile and uniform placement until valid; at
            // w = 1.0 this is exactly the uniform basis.
            let mut w = 0.5;
            loop {
                let mut ok = true;
                let blended: Vec<f64> = (0..=segments)
                    .map(|i| {
                        let u = lo + (hi - lo) * i as f64 / segments as f64;
                        breaks[i] * (1.0 - w) + u * w
                    })
                    .collect();
                for i in 1..blended.len() {
                    if blended[i] <= blended[i - 1] + min_gap {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    breaks = blended;
                    break;
                }
                w = (w + 1.0) / 2.0;
                if w > 0.999999 {
                    return Self::new(num_basis, degree, lo, hi);
                }
            }
        }
        // Extend by `degree` knots beyond each boundary, spaced by the
        // adjacent interior gap (keeps all spans non-degenerate).
        let first_gap = breaks[1] - breaks[0];
        let last_gap = breaks[segments] - breaks[segments - 1];
        let mut knots = Vec::with_capacity(num_basis + degree + 1);
        for i in (1..=degree).rev() {
            knots.push(lo - first_gap * i as f64);
        }
        knots.extend_from_slice(&breaks);
        for i in 1..=degree {
            knots.push(hi + last_gap * i as f64);
        }
        Ok(BSplineBasis {
            num_basis,
            degree,
            lo,
            hi,
            knots,
        })
    }

    /// Number of basis functions (columns this basis contributes).
    pub fn num_basis(&self) -> usize {
        self.num_basis
    }

    /// Polynomial degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Domain of the basis.
    pub fn domain(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Evaluate the basis at `x`, returning `(first, values)` where
    /// `values` holds the `degree + 1` consecutive non-zero basis
    /// function values starting at basis index `first`.
    ///
    /// `x` is clamped to the domain, so extrapolation beyond `[lo, hi]`
    /// freezes at the boundary value (safe behaviour for an explainer).
    pub fn eval_sparse(&self, x: f64) -> (usize, Vec<f64>) {
        let d = self.degree;
        let x = x.clamp(self.lo, self.hi);
        // Locate the knot span: largest `mu` with knots[mu] <= x,
        // clamped to valid polynomial segments [d, num_basis - 1].
        // Binary search handles both uniform and anchored knots.
        let mu = self.knots[..=self.num_basis]
            .partition_point(|&k| k <= x)
            .saturating_sub(1)
            .clamp(d, self.num_basis - 1);

        // Cox–de Boor triangular scheme: N[j] holds values of the
        // degree-r basis functions non-zero on this span.
        let mut n = vec![0.0f64; d + 1];
        n[0] = 1.0;
        #[allow(clippy::needless_range_loop)] // triangular de Boor indices
        for r in 1..=d {
            // Work backwards to update in place.
            let mut saved = 0.0;
            for j in 0..r {
                // Basis function index: mu - r + 1 + j .. but we use the
                // standard formulation with left/right knot differences.
                let left = self.knots[mu + 1 + j] - x;
                let right = x - self.knots[mu + 1 + j - r];
                let term = n[j] / (left + right);
                n[j] = saved + left * term;
                saved = right * term;
            }
            n[r] = saved;
        }
        (mu - d, n)
    }

    /// Evaluate the full (dense) basis vector at `x`.
    pub fn eval_dense(&self, x: f64) -> Vec<f64> {
        let mut out = vec![0.0; self.num_basis];
        let (first, vals) = self.eval_sparse(x);
        out[first..first + vals.len()].copy_from_slice(&vals);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_of_unity() {
        let b = BSplineBasis::new(12, 3, 0.0, 1.0).unwrap();
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            let (_, vals) = b.eval_sparse(x);
            assert_eq!(vals.len(), 4);
            let s: f64 = vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "x={x}, sum={s}");
            assert!(vals.iter().all(|&v| v >= -1e-12), "negative basis value");
        }
    }

    #[test]
    fn partition_of_unity_other_degrees() {
        for degree in [0usize, 1, 2, 4] {
            let b = BSplineBasis::new(degree + 5, degree, -2.0, 3.0).unwrap();
            for i in 0..=50 {
                let x = -2.0 + 5.0 * i as f64 / 50.0;
                let s: f64 = b.eval_dense(x).iter().sum();
                assert!((s - 1.0).abs() < 1e-12, "degree={degree} x={x}");
            }
        }
    }

    #[test]
    fn sparse_matches_dense() {
        let b = BSplineBasis::new(15, 3, 0.0, 10.0).unwrap();
        for i in 0..=40 {
            let x = 10.0 * i as f64 / 40.0;
            let dense = b.eval_dense(x);
            let (first, vals) = b.eval_sparse(x);
            for (j, &dv) in dense.iter().enumerate() {
                let sv = if j >= first && j < first + vals.len() {
                    vals[j - first]
                } else {
                    0.0
                };
                assert_eq!(dv, sv);
            }
        }
    }

    #[test]
    fn clamps_out_of_domain() {
        let b = BSplineBasis::new(8, 3, 0.0, 1.0).unwrap();
        assert_eq!(b.eval_sparse(-5.0), b.eval_sparse(0.0));
        assert_eq!(b.eval_sparse(7.0), b.eval_sparse(1.0));
    }

    #[test]
    fn boundary_values_within_index_range() {
        let b = BSplineBasis::new(10, 3, 0.0, 1.0).unwrap();
        let (f0, v0) = b.eval_sparse(0.0);
        assert_eq!(f0, 0);
        assert_eq!(v0.len(), 4);
        let (f1, v1) = b.eval_sparse(1.0);
        assert_eq!(f1 + v1.len(), 10);
    }

    #[test]
    fn can_reproduce_a_line() {
        // Degree >= 1 B-splines reproduce polynomials of their degree;
        // check that a least-squares fit to a line is exact.
        let b = BSplineBasis::new(8, 3, 0.0, 1.0).unwrap();
        // Greville abscissae give the coefficients that reproduce x.
        // Simpler check: fit via normal equations on a fine grid.
        let n = 200;
        let mut xtx = vec![vec![0.0; 8]; 8];
        let mut xty = vec![0.0; 8];
        for i in 0..n {
            let x = i as f64 / (n - 1) as f64;
            let row = b.eval_dense(x);
            let y = 3.0 * x - 1.0;
            for j in 0..8 {
                xty[j] += row[j] * y;
                for k in 0..8 {
                    xtx[j][k] += row[j] * row[k];
                }
            }
        }
        // Solve with Gaussian elimination (small system).
        let mut a = xtx;
        let mut rhs = xty;
        #[allow(clippy::needless_range_loop)] // Gaussian elimination indices
        for p in 0..8 {
            let piv = a[p][p];
            for j in p..8 {
                a[p][j] /= piv;
            }
            rhs[p] /= piv;
            for i in 0..8 {
                if i != p {
                    let f = a[i][p];
                    for j in p..8 {
                        a[i][j] -= f * a[p][j];
                    }
                    rhs[i] -= f * rhs[p];
                }
            }
        }
        // Verify the fit reproduces the line everywhere.
        for i in 0..=50 {
            let x = i as f64 / 50.0;
            let row = b.eval_dense(x);
            let fit: f64 = row.iter().zip(&rhs).map(|(r, c)| r * c).sum();
            assert!((fit - (3.0 * x - 1.0)).abs() < 1e-8, "x={x} fit={fit}");
        }
    }

    #[test]
    fn rejects_bad_spec() {
        assert!(BSplineBasis::new(3, 3, 0.0, 1.0).is_err());
        assert!(BSplineBasis::new(8, 3, 1.0, 1.0).is_err());
        assert!(BSplineBasis::new(8, 3, 2.0, 1.0).is_err());
        assert!(BSplineBasis::new(8, 3, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn anchored_partition_of_unity_and_support() {
        // Heavily skewed anchors: most mass near 0, tail to 100.
        let mut anchors: Vec<f64> = (0..500)
            .map(|i| (i as f64 / 500.0).powi(4) * 100.0)
            .collect();
        anchors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let b = BSplineBasis::from_anchors(12, 3, &anchors).unwrap();
        for i in 0..=100 {
            let x = i as f64;
            let s: f64 = b.eval_dense(x).iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "x={x} sum={s}");
        }
        // Knot spans share anchor mass: the span containing the median
        // anchor is far narrower than the last span.
        let med = gef_linalg::stats::quantile_sorted(&anchors, 0.5);
        let (first_med, _) = b.eval_sparse(med);
        let (first_tail, _) = b.eval_sparse(99.0);
        assert!(first_med < first_tail);
    }

    #[test]
    fn anchored_with_uniform_anchors_close_to_uniform_basis() {
        let anchors: Vec<f64> = (0..=1000).map(|i| i as f64 / 1000.0).collect();
        let a = BSplineBasis::from_anchors(10, 3, &anchors).unwrap();
        let u = BSplineBasis::new(10, 3, 0.0, 1.0).unwrap();
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            let (fa, va) = a.eval_sparse(x);
            let (fu, vu) = u.eval_sparse(x);
            assert_eq!(fa, fu, "x={x}");
            for (p, q) in va.iter().zip(&vu) {
                assert!((p - q).abs() < 0.02, "x={x}: {va:?} vs {vu:?}");
            }
        }
    }

    #[test]
    fn anchored_falls_back_on_degenerate_quantiles() {
        // Almost all anchors identical: quantiles collapse; must still
        // build a valid basis (blended/uniform fallback).
        let mut anchors = vec![5.0; 400];
        anchors.push(6.0);
        let b = BSplineBasis::from_anchors(8, 3, &anchors).unwrap();
        let s: f64 = b.eval_dense(5.5).iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
        // Fully constant anchors are rejected.
        assert!(BSplineBasis::from_anchors(8, 3, &[1.0; 10]).is_err());
        assert!(BSplineBasis::from_anchors(8, 3, &[1.0]).is_err());
    }

    #[test]
    fn local_support_moves_with_x() {
        let b = BSplineBasis::new(20, 3, 0.0, 1.0).unwrap();
        let (f_lo, _) = b.eval_sparse(0.05);
        let (f_hi, _) = b.eval_sparse(0.95);
        assert!(f_lo < f_hi, "support should advance with x");
    }
}
