//! # gef-gam
//!
//! Penalized-spline Generalized Additive Models, built from scratch as
//! the workspace's replacement for PyGAM. A GAM models
//!
//! ```text
//! l(E[y|x]) = α + Σ_j s_j(x_j) + Σ_{(j,k)} s_jk(x_j, x_k)
//! ```
//!
//! with cubic P-spline univariate terms, one-hot factor terms for
//! categorical features, and penalized tensor-product smooths for
//! feature pairs — exactly the term menu the GEF paper uses (Sec. 3.5).
//! A single smoothing parameter λ shared by all terms is chosen by
//! Generalized Cross Validation, and Bayesian credible intervals are
//! available for every univariate component.
//!
//! ## Quick example
//!
//! ```
//! use gef_gam::{fit, GamSpec, TermSpec};
//!
//! let xs: Vec<Vec<f64>> = (0..400).map(|i| vec![i as f64 / 400.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 6.0).sin()).collect();
//! let gam = fit(&GamSpec::regression(vec![TermSpec::spline(0, (0.0, 1.0))]), &xs, &ys).unwrap();
//! assert!((gam.predict(&[0.25]) - (0.25f64 * 6.0).sin()).abs() < 0.05);
//! ```

// Library code must surface failures as `GamError`, never panic; tests
// are exempt. Local `#[allow]`s mark the few provably-infallible spots.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bspline;
pub mod design;
pub mod fit;
pub mod penalty;
pub mod terms;

pub use bspline::BSplineBasis;
pub use fit::{fit, FitSummary, Gam, GamSpec, LambdaSelection, Link};
pub use terms::{TermSpec, DEFAULT_DEGREE, DEFAULT_SPLINE_BASIS, DEFAULT_TENSOR_BASIS};

/// Errors produced while specifying or fitting a GAM.
#[derive(Debug, Clone, PartialEq)]
pub enum GamError {
    /// Invalid model specification (terms, domains, λ grid).
    InvalidSpec(String),
    /// Invalid training data.
    InvalidData(String),
    /// Numerical failure in the underlying linear algebra.
    Numerical(String),
    /// The λ grid was empty, so no candidate could be evaluated.
    EmptyLambdaGrid,
    /// Every λ candidate produced a non-finite GCV score.
    NonFiniteGcv {
        /// Number of λ candidates evaluated (and skipped).
        candidates: usize,
    },
    /// PIRLS failed to find a deviance-decreasing step at every λ.
    PirlsDiverged {
        /// Iterations completed before divergence (at the last λ tried).
        iters: usize,
        /// Last finite deviance observed, or NaN if none was.
        deviance: f64,
    },
    /// The run's hard wall-clock deadline ([`gef_trace::budget`]) passed
    /// at a cooperative checkpoint (per-λ candidate or per-PIRLS
    /// iteration). Not retryable: a cheaper spec cannot buy time back.
    DeadlineExceeded {
        /// Checkpoint that observed the trip (`"gcv_grid"`, `"pirls"`).
        at: &'static str,
    },
    /// A parallel worker panicked while evaluating the λ grid; carries
    /// the first panic's payload (see `gef_par::ParError`).
    WorkerPanicked(String),
}

impl GamError {
    /// Whether a simpler model specification could plausibly avoid this
    /// error. The recovery ladder in `gef-core` retries on exactly these
    /// variants; specification and data errors are not retried since no
    /// amount of simplification fixes a malformed input.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            GamError::Numerical(_)
                | GamError::EmptyLambdaGrid
                | GamError::NonFiniteGcv { .. }
                | GamError::PirlsDiverged { .. }
        )
    }
}

impl std::fmt::Display for GamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GamError::InvalidSpec(m) => write!(f, "invalid GAM specification: {m}"),
            GamError::InvalidData(m) => write!(f, "invalid GAM data: {m}"),
            GamError::Numerical(m) => write!(f, "numerical failure: {m}"),
            GamError::EmptyLambdaGrid => write!(f, "empty λ grid: no candidate to evaluate"),
            GamError::NonFiniteGcv { candidates } => {
                write!(f, "all {candidates} λ candidates produced non-finite GCV")
            }
            GamError::PirlsDiverged { iters, deviance } => write!(
                f,
                "PIRLS diverged after {iters} iterations (deviance {deviance})"
            ),
            GamError::DeadlineExceeded { at } => {
                write!(f, "hard deadline exceeded during GAM fit (at {at})")
            }
            GamError::WorkerPanicked(payload) => {
                write!(f, "parallel worker panicked during GAM fit: {payload}")
            }
        }
    }
}

impl std::error::Error for GamError {}

impl From<gef_linalg::LinalgError> for GamError {
    fn from(e: gef_linalg::LinalgError) -> Self {
        GamError::Numerical(e.to_string())
    }
}

impl From<gef_par::ParError> for GamError {
    fn from(e: gef_par::ParError) -> Self {
        match e {
            gef_par::ParError::TaskPanicked { payload } => GamError::WorkerPanicked(payload),
            // A cancelled region means the hard deadline (or an explicit
            // cancel) fired mid-dispatch.
            gef_par::ParError::Cancelled => GamError::DeadlineExceeded { at: "parallel" },
        }
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, GamError>;
