//! Sparse design-matrix assembly for a GAM.
//!
//! Column 0 is the unpenalized intercept; each term occupies a
//! contiguous block after it. Rows are materialized as sorted
//! `(column, value)` pairs — a cubic spline contributes 4 non-zeros, a
//! factor 1, a tensor smooth 16 — so accumulating the penalized normal
//! equations over 100k instances stays cheap
//! ([`gef_linalg::Matrix::syr_upper_sparse`]).

use crate::terms::{BuiltTerm, TermSpec};
use crate::GamError;
use gef_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Compiled design: terms, column layout, and the block-diagonal
/// penalty matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct Design {
    pub(crate) terms: Vec<BuiltTerm>,
    /// Column offset of each term; the intercept is column 0.
    pub(crate) offsets: Vec<usize>,
    /// Total number of columns (1 + Σ term widths).
    pub(crate) num_cols: usize,
    /// Block-diagonal penalty (zero row/column for the intercept).
    pub(crate) penalty: Matrix,
}

impl Design {
    /// Compile term specifications into a design.
    pub(crate) fn compile(specs: &[TermSpec], penalty_order: usize) -> Result<Self, GamError> {
        if specs.is_empty() {
            return Err(GamError::InvalidSpec(
                "a GAM needs at least one term".into(),
            ));
        }
        let terms: Vec<BuiltTerm> = specs
            .iter()
            .map(BuiltTerm::build)
            .collect::<Result<_, _>>()?;
        let mut offsets = Vec::with_capacity(terms.len());
        let mut col = 1usize; // 0 = intercept
        for t in &terms {
            offsets.push(col);
            col += t.num_cols();
        }
        let num_cols = col;
        let mut penalty = Matrix::zeros(num_cols, num_cols);
        for (t, &off) in terms.iter().zip(&offsets) {
            let p = t.penalty(penalty_order);
            let k = t.num_cols();
            for i in 0..k {
                for j in 0..k {
                    let v = p[(i, j)];
                    if v != 0.0 {
                        penalty[(off + i, off + j)] = v;
                    }
                }
            }
        }
        Ok(Design {
            terms,
            offsets,
            num_cols,
            penalty,
        })
    }

    /// Sparse design row for instance `x` (sorted by column; starts with
    /// the intercept).
    pub(crate) fn row(&self, x: &[f64]) -> Vec<(usize, f64)> {
        let mut out = Vec::with_capacity(1 + self.terms.len() * 4);
        out.push((0usize, 1.0));
        for (t, &off) in self.terms.iter().zip(&self.offsets) {
            t.fill_row(x, off, &mut out);
        }
        out
    }

    /// Sparse design entries of a single term only (columns are shifted
    /// to the term's global offset).
    pub(crate) fn term_row(&self, term: usize, x: &[f64]) -> Vec<(usize, f64)> {
        let mut out = Vec::with_capacity(16);
        self.terms[term].fill_row(x, self.offsets[term], &mut out);
        out
    }

    /// Column range `[start, end)` of a term.
    pub(crate) fn term_cols(&self, term: usize) -> (usize, usize) {
        let start = self.offsets[term];
        (start, start + self.terms[term].num_cols())
    }
}

/// Dot product of a sparse row with a dense coefficient vector.
#[inline]
pub(crate) fn sparse_dot(row: &[(usize, f64)], beta: &[f64]) -> f64 {
    row.iter().map(|&(c, v)| v * beta[c]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<TermSpec> {
        vec![
            TermSpec::spline(0, (0.0, 1.0)),                    // 20 cols
            TermSpec::factor(1, vec![0.0, 1.0, 2.0]),           // 3 cols
            TermSpec::tensor((0, 2), ((0.0, 1.0), (0.0, 1.0))), // 64 cols
        ]
    }

    #[test]
    fn column_layout() {
        let d = Design::compile(&specs(), 2).unwrap();
        assert_eq!(d.offsets, vec![1, 21, 24]);
        assert_eq!(d.num_cols, 88);
        assert_eq!(d.term_cols(1), (21, 24));
        assert_eq!(d.term_cols(2), (24, 88));
    }

    #[test]
    fn row_is_sorted_and_intercept_first() {
        let d = Design::compile(&specs(), 2).unwrap();
        let row = d.row(&[0.5, 1.0, 0.25]);
        assert_eq!(row[0], (0, 1.0));
        for w in row.windows(2) {
            assert!(w[0].0 < w[1].0, "row not sorted: {row:?}");
        }
        // 1 intercept + 4 spline + 1 factor + 16 tensor
        assert_eq!(row.len(), 22);
    }

    #[test]
    fn penalty_is_block_diagonal_with_free_intercept() {
        let d = Design::compile(&specs(), 2).unwrap();
        // Intercept row/col all zero.
        for j in 0..d.num_cols {
            assert_eq!(d.penalty[(0, j)], 0.0);
            assert_eq!(d.penalty[(j, 0)], 0.0);
        }
        // No cross-term coupling.
        let (s1, e1) = d.term_cols(0);
        let (s2, e2) = d.term_cols(1);
        for i in s1..e1 {
            for j in s2..e2 {
                assert_eq!(d.penalty[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn rejects_empty_spec() {
        assert!(Design::compile(&[], 2).is_err());
    }

    #[test]
    fn sparse_dot_matches_dense() {
        let row = vec![(0usize, 1.0), (3, 0.5), (7, -2.0)];
        let beta = vec![1.0, 9.0, 9.0, 2.0, 9.0, 9.0, 9.0, 0.25];
        assert!((sparse_dot(&row, &beta) - (1.0 + 1.0 - 0.5)).abs() < 1e-12);
    }
}
