//! Penalty matrices for P-spline and tensor-product smooths.
//!
//! P-splines penalize squared `order`-th differences of adjacent spline
//! coefficients: `P = DᵀD` where `D` is the difference operator. This is
//! the discrete analogue of the integrated squared second derivative in
//! the paper's cost function `J`. Tensor-product terms use the Kronecker
//! construction `P₁ ⊗ I + I ⊗ P₂`, penalizing wiggliness along each
//! margin.

use gef_linalg::Matrix;

/// `order`-th difference penalty `DᵀD` for `k` coefficients.
///
/// `order = 2` (the default throughout the workspace) penalizes the
/// discrete curvature `β_{j-1} − 2β_j + β_{j+1}`; its null space is
/// spanned by constant and linear coefficient sequences, so straight
/// lines are unpenalized exactly as with cubic smoothing splines.
pub fn difference_penalty(k: usize, order: usize) -> Matrix {
    assert!(order >= 1, "difference order must be >= 1");
    if k <= order {
        // Too few coefficients to difference: zero penalty.
        return Matrix::zeros(k, k);
    }
    // Build D by repeated first differences: D_order is (k-order) x k.
    // Row i of the first-difference operator: -1 at i, +1 at i+1.
    let mut d = Matrix::zeros(k - 1, k);
    for i in 0..k - 1 {
        d[(i, i)] = -1.0;
        d[(i, i + 1)] = 1.0;
    }
    for _ in 1..order {
        let rows = d.rows() - 1;
        let mut next = Matrix::zeros(rows, k);
        for i in 0..rows {
            for j in 0..k {
                next[(i, j)] = d[(i + 1, j)] - d[(i, j)];
            }
        }
        d = next;
    }
    // P = DᵀD — Dᵀ has k rows and D has k columns, so the product
    // always conforms.
    #[allow(clippy::expect_used)]
    d.transpose().matmul(&d).expect("conforming dimensions")
}

/// Identity (ridge) penalty of size `k` — used for factor terms.
pub fn ridge_penalty(k: usize) -> Matrix {
    Matrix::identity(k)
}

/// Tensor-product penalty `P₁ ⊗ I_{k₂} + I_{k₁} ⊗ P₂` for a bivariate
/// term with `k₁ × k₂` coefficients laid out row-major (index
/// `i·k₂ + j`, `i` over the first margin).
pub fn tensor_penalty(p1: &Matrix, p2: &Matrix) -> Matrix {
    let k1 = p1.rows();
    let k2 = p2.rows();
    debug_assert_eq!(p1.cols(), k1);
    debug_assert_eq!(p2.cols(), k2);
    let n = k1 * k2;
    let mut out = Matrix::zeros(n, n);
    // P1 ⊗ I: entry ((i1,j), (i2,j)) = P1[i1,i2]
    for i1 in 0..k1 {
        for i2 in 0..k1 {
            let v = p1[(i1, i2)];
            if v == 0.0 {
                continue;
            }
            for j in 0..k2 {
                out[(i1 * k2 + j, i2 * k2 + j)] += v;
            }
        }
    }
    // I ⊗ P2: entry ((i,j1), (i,j2)) = P2[j1,j2]
    for i in 0..k1 {
        for j1 in 0..k2 {
            for j2 in 0..k2 {
                let v = p2[(j1, j2)];
                if v != 0.0 {
                    out[(i * k2 + j1, i * k2 + j2)] += v;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_form(p: &Matrix, beta: &[f64]) -> f64 {
        let pb = p.matvec(beta).unwrap();
        beta.iter().zip(&pb).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn second_order_penalty_annihilates_lines() {
        let p = difference_penalty(10, 2);
        let constant = vec![3.0; 10];
        let linear: Vec<f64> = (0..10).map(|i| 2.0 * i as f64 - 5.0).collect();
        assert!(quad_form(&p, &constant).abs() < 1e-12);
        assert!(quad_form(&p, &linear).abs() < 1e-10);
        // ...but not quadratics.
        let quad: Vec<f64> = (0..10).map(|i| (i as f64).powi(2)).collect();
        assert!(quad_form(&p, &quad) > 1.0);
    }

    #[test]
    fn first_order_penalty_annihilates_constants_only() {
        let p = difference_penalty(8, 1);
        let constant = vec![1.0; 8];
        let linear: Vec<f64> = (0..8).map(|i| i as f64).collect();
        assert!(quad_form(&p, &constant).abs() < 1e-12);
        assert!(quad_form(&p, &linear) > 1.0);
    }

    #[test]
    fn penalty_is_symmetric_psd() {
        let p = difference_penalty(12, 2);
        for i in 0..12 {
            for j in 0..12 {
                assert_eq!(p[(i, j)], p[(j, i)]);
            }
        }
        // PSD: quadratic form non-negative on a few arbitrary vectors.
        for seed in 0..5u64 {
            let beta: Vec<f64> = (0..12)
                .map(|i| ((seed.wrapping_mul(31).wrapping_add(i as u64 * 17)) % 13) as f64 - 6.0)
                .collect();
            assert!(quad_form(&p, &beta) >= -1e-10);
        }
    }

    #[test]
    fn degenerate_sizes_give_zero_penalty() {
        let p = difference_penalty(2, 2);
        assert_eq!(p, Matrix::zeros(2, 2));
        let p = difference_penalty(1, 1);
        assert_eq!(p, Matrix::zeros(1, 1));
    }

    #[test]
    fn known_3x3_second_difference() {
        // k=3, order=2: D = [1, -2, 1], P = DᵀD.
        let p = difference_penalty(3, 2);
        let expect = [[1.0, -2.0, 1.0], [-2.0, 4.0, -2.0], [1.0, -2.0, 1.0]];
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(p[(i, j)], expect[i][j]);
            }
        }
    }

    #[test]
    fn tensor_penalty_matches_explicit_small_case() {
        let p1 = difference_penalty(3, 1);
        let p2 = difference_penalty(2, 1);
        let t = tensor_penalty(&p1, &p2);
        assert_eq!(t.rows(), 6);
        // Surface constant in both directions is unpenalized.
        let flat = vec![1.0; 6];
        assert!(quad_form(&t, &flat).abs() < 1e-12);
        // Variation along margin 1 only: beta[i*k2+j] = i.
        let along1: Vec<f64> = (0..6).map(|idx| (idx / 2) as f64).collect();
        let q1 = quad_form(&t, &along1);
        // Must equal k2 * quad_form(p1, (0,1,2)).
        let expect = 2.0 * quad_form(&p1, &[0.0, 1.0, 2.0]);
        assert!((q1 - expect).abs() < 1e-12);
    }

    #[test]
    fn ridge_is_identity() {
        let r = ridge_penalty(4);
        assert_eq!(r, Matrix::identity(4));
    }
}
