//! Penalized GAM fitting: PIRLS with a GCV-tuned shared smoothing
//! parameter.
//!
//! Following the paper (Sec. 3.5), all penalized terms share a single
//! smoothing coefficient λ (`λ₁ = … = λ_{p+q}`), selected by
//! Generalized Cross Validation over a log-spaced grid. The Gaussian /
//! identity case reduces to one penalized least-squares solve per λ
//! candidate (with the normal equations accumulated once); the Binomial
//! / logit case runs a full penalized IRLS per candidate.
//!
//! Bayesian credible intervals use the posterior covariance
//! `Vβ = (XᵀWX + λS)⁻¹ φ` (Wood 2006), the same construction PyGAM uses
//! for the intervals shown in the paper's spline plots.

use crate::design::{sparse_dot, Design};
use crate::terms::TermSpec;
use crate::{GamError, Result};
use gef_linalg::{Cholesky, Matrix};
use serde::{Deserialize, Serialize};

/// Link function (with its implied error distribution, as in the paper:
/// identity/Normal for regression, logit/Binomial for classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Link {
    /// Identity link, Gaussian errors.
    Identity,
    /// Logit link, Binomial errors; responses must lie in `[0, 1]`.
    Logit,
}

impl Link {
    /// Inverse link: map a linear predictor to the response scale.
    #[inline]
    pub fn inverse(&self, eta: f64) -> f64 {
        match self {
            Link::Identity => eta,
            Link::Logit => {
                if eta >= 0.0 {
                    1.0 / (1.0 + (-eta).exp())
                } else {
                    let e = eta.exp();
                    e / (1.0 + e)
                }
            }
        }
    }
}

/// How λ is chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum LambdaSelection {
    /// Use a fixed λ.
    Fixed(f64),
    /// Minimize GCV over the given grid of λ candidates.
    GcvGrid(Vec<f64>),
}

impl Default for LambdaSelection {
    /// 13 log-spaced candidates in `[1e-4, 1e4]`.
    fn default() -> Self {
        LambdaSelection::GcvGrid(gef_linalg::stats::logspace(1e-4, 1e4, 13))
    }
}

/// Full specification of a GAM to fit.
#[derive(Debug, Clone)]
pub struct GamSpec {
    /// Additive terms (at least one).
    pub terms: Vec<TermSpec>,
    /// Link / distribution.
    pub link: Link,
    /// Smoothing-parameter selection.
    pub lambda: LambdaSelection,
    /// Difference-penalty order (2 = curvature, the default).
    pub penalty_order: usize,
    /// Maximum PIRLS iterations (logit only).
    pub max_pirls_iter: usize,
    /// PIRLS convergence tolerance on coefficients.
    pub tol: f64,
}

impl GamSpec {
    /// A regression (identity link) spec with default λ selection.
    pub fn regression(terms: Vec<TermSpec>) -> Self {
        GamSpec {
            terms,
            link: Link::Identity,
            lambda: LambdaSelection::default(),
            penalty_order: 2,
            max_pirls_iter: 25,
            tol: 1e-8,
        }
    }

    /// A binary-classification (logit link) spec with default λ
    /// selection.
    pub fn classification(terms: Vec<TermSpec>) -> Self {
        GamSpec {
            link: Link::Logit,
            ..GamSpec::regression(terms)
        }
    }
}

/// Summary statistics of a fit.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FitSummary {
    /// Selected smoothing parameter.
    pub lambda: f64,
    /// GCV score at the selected λ.
    pub gcv: f64,
    /// Effective degrees of freedom `tr(A)`.
    pub edf: f64,
    /// Scale parameter φ (σ̂² for Gaussian, 1 for Binomial).
    pub scale: f64,
    /// Residual sum of squares (Gaussian) or deviance (Binomial).
    pub deviance: f64,
    /// Number of training observations.
    pub n_obs: usize,
    /// PIRLS iterations used at the selected λ (1 for Gaussian).
    pub pirls_iters: usize,
    /// Step-halvings taken by PIRLS at the selected λ (0 for Gaussian
    /// and for cleanly converging logit fits).
    #[serde(default)]
    pub step_halvings: usize,
}

/// A fitted Generalized Additive Model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gam {
    design: Design,
    specs: Vec<TermSpec>,
    link: Link,
    beta: Vec<f64>,
    /// Posterior covariance of β (Bayesian, Wood 2006).
    cov: Matrix,
    summary: FitSummary,
    /// Mean training contribution of each term (used to center
    /// component plots, as the paper does in Fig. 4).
    component_means: Vec<f64>,
    /// Standard deviation of each term's training contribution — used
    /// as the term importance for sorting components.
    component_sds: Vec<f64>,
}

/// Fit a GAM.
///
/// `xs` are row-major instances, `ys` the responses (in `[0, 1]` for
/// [`Link::Logit`]).
pub fn fit(spec: &GamSpec, xs: &[Vec<f64>], ys: &[f64]) -> Result<Gam> {
    let _span = gef_trace::Span::enter("gam.fit");
    if xs.len() != ys.len() {
        return Err(GamError::InvalidData(format!(
            "{} rows but {} responses",
            xs.len(),
            ys.len()
        )));
    }
    if xs.is_empty() {
        return Err(GamError::InvalidData("empty training set".into()));
    }
    let max_feature = spec
        .terms
        .iter()
        .flat_map(|t| t.features())
        .max()
        .unwrap_or(0);
    if xs[0].len() <= max_feature {
        return Err(GamError::InvalidData(format!(
            "terms reference feature {max_feature} but rows have {} features",
            xs[0].len()
        )));
    }
    if spec.link == Link::Logit && ys.iter().any(|&y| !(0.0..=1.0).contains(&y)) {
        return Err(GamError::InvalidData(
            "logit link requires responses in [0, 1]".into(),
        ));
    }
    if ys.iter().any(|y| !y.is_finite()) {
        return Err(GamError::InvalidData("non-finite response".into()));
    }
    let design = gef_trace::time("gam.design_compile", || {
        Design::compile(&spec.terms, spec.penalty_order)
    })?;
    let n = xs.len();
    let p = design.num_cols;
    if n < p {
        // Penalization makes this solvable, but warn via error for the
        // clearly degenerate case of fewer rows than a single term.
        if n < 8 {
            return Err(GamError::InvalidData(format!(
                "{n} rows is too few to fit {p} coefficients"
            )));
        }
    }
    // Cache sparse design rows once.
    let rows: Vec<Vec<(usize, f64)>> = xs.iter().map(|x| design.row(x)).collect();

    let grid: Vec<f64> = match &spec.lambda {
        LambdaSelection::Fixed(l) => vec![*l],
        LambdaSelection::GcvGrid(g) => {
            if g.is_empty() {
                return Err(GamError::EmptyLambdaGrid);
            }
            g.clone()
        }
    };
    for &l in &grid {
        // `!(l >= 0)` deliberately rejects NaN alongside negatives.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(l >= 0.0) || !l.is_finite() {
            return Err(GamError::InvalidSpec(format!("invalid λ {l}")));
        }
    }

    // Soft sum-to-zero constraints: each smooth term's basis spans the
    // constant function (B-splines are a partition of unity; factor
    // one-hots sum to 1), which aliases the intercept. We pin each
    // term's *mean training contribution* to zero with a λ-independent
    // quadratic penalty κ·(c_t c_tᵀ), where c_t is the term's training
    // column-mean vector. This keeps the design rows sparse (unlike a
    // reparameterization) while making both the point estimates and the
    // Bayesian covariance identifiable.
    let constraint = constraint_penalty(&design, &rows);

    let fitted = match spec.link {
        Link::Identity => fit_gaussian(&design, &rows, ys, &grid, &constraint)?,
        Link::Logit => fit_logit(
            &design,
            &rows,
            ys,
            &grid,
            spec.max_pirls_iter,
            spec.tol,
            &constraint,
        )?,
    };
    let (beta, cov, summary) = fitted;
    if gef_trace::enabled() {
        let t = gef_trace::global();
        t.gauge("gam.lambda", summary.lambda);
        t.gauge("gam.gcv", summary.gcv);
        t.gauge("gam.edf", summary.edf);
        t.gauge("gam.deviance", summary.deviance);
        t.gauge("gam.pirls_iters", summary.pirls_iters as f64);
    }

    // Per-term training contributions (for centering and importance).
    let t = design.terms.len();
    let mut sums = vec![0.0; t];
    let mut sq_sums = vec![0.0; t];
    for x in xs {
        for ti in 0..t {
            let row = design.term_row(ti, x);
            let c = sparse_dot(&row, &beta);
            sums[ti] += c;
            sq_sums[ti] += c * c;
        }
    }
    let component_means: Vec<f64> = sums.iter().map(|s| s / n as f64).collect();
    let component_sds: Vec<f64> = sq_sums
        .iter()
        .zip(&component_means)
        .map(|(&sq, &m)| (sq / n as f64 - m * m).max(0.0).sqrt())
        .collect();

    Ok(Gam {
        design,
        specs: spec.terms.clone(),
        link: spec.link,
        beta,
        cov,
        summary,
        component_means,
        component_sds,
    })
}

type Fitted = (Vec<f64>, Matrix, FitSummary);

/// Build the block-diagonal soft identifiability-constraint matrix.
///
/// * Univariate terms get the outer product of their (unit-normalized)
///   training column means: penalizing `βᵀ (c cᵀ) β` drives the term's
///   average contribution to zero without densifying the design rows.
/// * Tensor terms instead get **marginal-mean** constraints
///   `(ā āᵀ) ⊗ I + I ⊗ (b̄ b̄ᵀ)`, where `ā`/`b̄` are the training means
///   of the marginal bases. A tensor basis spans pure univariate
///   functions of either feature; without these constraints it aliases
///   the main-effect splines (inflating their credible bands and
///   scrambling the functional decomposition). This is the
///   soft-constraint analogue of mgcv's `ti()` interaction smooths.
///   Because each marginal basis is a partition of unity, the marginal
///   means are exact row/column sums of the tensor's column means.
fn constraint_penalty(design: &Design, rows: &[Vec<(usize, f64)>]) -> Matrix {
    let p = design.num_cols;
    let n = rows.len() as f64;
    let mut means = vec![0.0; p];
    for row in rows {
        for &(c, v) in row {
            means[c] += v;
        }
    }
    for m in &mut means {
        *m /= n;
    }
    let mut sc = Matrix::zeros(p, p);
    for t in 0..design.terms.len() {
        let (start, end) = design.term_cols(t);
        if let crate::terms::BuiltTerm::Tensor {
            basis_a, basis_b, ..
        } = &design.terms[t]
        {
            let ka = basis_a.num_basis();
            let kb = basis_b.num_basis();
            // Marginal means: ā_i = Σ_j c[(i,j)], b̄_j = Σ_i c[(i,j)].
            let mut a_bar = vec![0.0; ka];
            let mut b_bar = vec![0.0; kb];
            for i in 0..ka {
                for j in 0..kb {
                    let c = means[start + i * kb + j];
                    a_bar[i] += c;
                    b_bar[j] += c;
                }
            }
            let a2: f64 = a_bar.iter().map(|v| v * v).sum();
            let b2: f64 = b_bar.iter().map(|v| v * v).sum();
            // (ā āᵀ) ⊗ I: kills pure functions of feature b.
            if a2 > 0.0 {
                for i1 in 0..ka {
                    for i2 in 0..ka {
                        let v = a_bar[i1] * a_bar[i2] / a2;
                        if v != 0.0 {
                            for j in 0..kb {
                                sc[(start + i1 * kb + j, start + i2 * kb + j)] += v;
                            }
                        }
                    }
                }
            }
            // I ⊗ (b̄ b̄ᵀ): kills pure functions of feature a.
            if b2 > 0.0 {
                for i in 0..ka {
                    for j1 in 0..kb {
                        for j2 in 0..kb {
                            let v = b_bar[j1] * b_bar[j2] / b2;
                            if v != 0.0 {
                                sc[(start + i * kb + j1, start + i * kb + j2)] += v;
                            }
                        }
                    }
                }
            }
            continue;
        }
        let norm2: f64 = means[start..end].iter().map(|m| m * m).sum();
        if norm2 <= 0.0 {
            continue;
        }
        for i in start..end {
            for j in start..end {
                sc[(i, j)] += means[i] * means[j] / norm2;
            }
        }
    }
    sc
}

/// Small deterministic ridge keeping the penalized system positive
/// definite along term-vs-intercept constant directions (each spline
/// basis is a partition of unity, so its constant direction aliases the
/// intercept; the difference penalty does not remove it).
fn ridge_for(g: &Matrix) -> f64 {
    let p = g.rows();
    let mean_diag = (0..p).map(|i| g[(i, i)].abs()).sum::<f64>() / p as f64;
    1e-7 * mean_diag.max(f64::MIN_POSITIVE)
}

fn penalized_chol(
    g: &Matrix,
    penalty: &Matrix,
    lambda: f64,
    constraint: &Matrix,
    ridge: f64,
) -> Result<Cholesky> {
    let mut c = g.clone();
    c.add_scaled(penalty, lambda)?;
    // λ-independent constraint strength: strong enough to pin the
    // aliased constant directions, orders of magnitude above the data
    // curvature along them (which is shared with the intercept).
    let p = c.rows();
    let kappa = 10.0 * (0..p).map(|i| g[(i, i)].abs()).sum::<f64>() / p as f64;
    c.add_scaled(constraint, kappa)?;
    for i in 0..p {
        c[(i, i)] += ridge;
    }
    Ok(Cholesky::factor_jittered(&c, 1e-10, 14)?)
}

/// `tr(C⁻¹ G)` — the effective degrees of freedom.
fn edf_trace(chol: &Cholesky, g: &Matrix) -> Result<f64> {
    let inv_g = chol.solve_matrix(g)?;
    Ok((0..g.rows()).map(|i| inv_g[(i, i)]).sum())
}

fn fit_gaussian(
    design: &Design,
    rows: &[Vec<(usize, f64)>],
    ys: &[f64],
    grid: &[f64],
    constraint: &Matrix,
) -> Result<Fitted> {
    let n = rows.len();
    let p = design.num_cols;
    // Accumulate XᵀX, Xᵀy, yᵀy once.
    let mut g = Matrix::zeros(p, p);
    let mut b = vec![0.0; p];
    let mut yty = 0.0;
    for (row, &y) in rows.iter().zip(ys) {
        g.syr_upper_sparse(row, 1.0);
        for &(c, v) in row {
            b[c] += v * y;
        }
        yty += y * y;
    }
    g.mirror_upper();
    let ridge = ridge_for(&g);

    let _grid_span = gef_trace::Span::enter("gam.gcv_grid");
    // Each λ candidate owns its factorization, so the grid evaluates on
    // the gef-par pool; results come back in grid order. A candidate
    // whose factorization or solve fails is skipped, not fatal: other λ
    // values (typically larger, better conditioned) may still produce a
    // usable fit — the PR 2 per-candidate error-skip semantics.
    let evals = gef_par::map(
        grid.len(),
        gef_par::Options::coarse().with_label("gam.gcv_candidate"),
        |gi| {
            let _eval_span = gef_trace::Span::enter("gam.gcv_eval");
            let lambda = grid[gi];
            (|| -> Result<(f64, Vec<f64>, Cholesky, f64, f64)> {
                // Per-λ cooperative checkpoint: a passed hard deadline stops
                // the grid search with a typed error instead of grinding on.
                if gef_trace::budget::hard_exceeded() {
                    return Err(GamError::DeadlineExceeded { at: "gcv_grid" });
                }
                let chol = penalized_chol(&g, &design.penalty, lambda, constraint, ridge)?;
                let beta = chol.solve(&b)?;
                let bt_b: f64 = beta.iter().zip(&b).map(|(x, y)| x * y).sum();
                let g_beta = g.matvec(&beta)?;
                let bt_g_b: f64 = beta.iter().zip(&g_beta).map(|(x, y)| x * y).sum();
                let rss = (yty - 2.0 * bt_b + bt_g_b).max(0.0);
                let edf = edf_trace(&chol, &g)?;
                let denom = (n as f64 - edf).max(1.0);
                let gcv = n as f64 * rss / (denom * denom);
                Ok((gcv, beta, chol, rss, edf))
            })()
        },
    )?;
    // Selection and event emission stay serial and in grid order, so
    // the telemetry stream is identical at every thread count.
    let mut best: Option<(f64, f64, Vec<f64>, Cholesky, f64, f64)> = None; // (gcv, λ, β, chol, rss, edf)
    let mut last_err: Option<GamError> = None;
    let mut evaluated = 0usize;
    for (gi, eval) in evals.into_iter().enumerate() {
        let lambda = grid[gi];
        let (gcv, beta, chol, rss, edf) = match eval {
            Ok(v) => v,
            Err(e) => {
                last_err = Some(e);
                continue;
            }
        };
        evaluated += 1;
        if gef_trace::enabled() {
            gef_trace::global().event(
                "gam.gcv",
                &[
                    ("lambda", lambda),
                    ("gcv", gcv),
                    ("edf", edf),
                    ("deviance", rss),
                    ("pirls_iters", 1.0),
                ],
            );
        }
        if !gcv.is_finite() {
            continue;
        }
        if best.as_ref().is_none_or(|bst| gcv < bst.0) {
            best = Some((gcv, lambda, beta, chol, rss, edf));
        }
    }
    let Some((gcv, lambda, beta, chol, rss, edf)) = best else {
        return Err(match last_err {
            // Every candidate died in linear algebra before producing a
            // GCV score: surface the underlying numerical failure.
            Some(e) if evaluated == 0 => e,
            _ => GamError::NonFiniteGcv {
                candidates: grid.len(),
            },
        });
    };
    let scale = rss / (n as f64 - edf).max(1.0);
    let mut cov = chol.inverse()?;
    for v in cov.data_mut() {
        *v *= scale;
    }
    Ok((
        beta,
        cov,
        FitSummary {
            lambda,
            gcv,
            edf,
            scale,
            deviance: rss,
            n_obs: n,
            pirls_iters: 1,
            step_halvings: 0,
        },
    ))
}

#[allow(clippy::too_many_arguments)]
fn fit_logit(
    design: &Design,
    rows: &[Vec<(usize, f64)>],
    ys: &[f64],
    grid: &[f64],
    max_iter: usize,
    tol: f64,
    constraint: &Matrix,
) -> Result<Fitted> {
    let n = rows.len();
    let _grid_span = gef_trace::Span::enter("gam.gcv_grid");
    // λ candidates evaluate on the gef-par pool (each PIRLS run owns its
    // factorization); results come back in grid order. A diverging PIRLS
    // run at one λ (typically a small one on near-separable data) is
    // skipped; better-conditioned candidates can still win the grid.
    let evals = gef_par::map(
        grid.len(),
        gef_par::Options::coarse().with_label("gam.gcv_candidate"),
        |gi| {
            let _eval_span = gef_trace::Span::enter("gam.gcv_eval");
            let lambda = grid[gi];
            (|| -> Result<(Pirls, f64, f64)> {
                // Per-λ cooperative checkpoint (the PIRLS loop inside adds a
                // per-iteration one).
                if gef_trace::budget::hard_exceeded() {
                    return Err(GamError::DeadlineExceeded { at: "gcv_grid" });
                }
                let run = pirls_logit(design, rows, ys, lambda, max_iter, tol, constraint)?;
                let edf = edf_trace(&run.chol, &run.weighted_gram)?;
                let denom = (n as f64 - edf).max(1.0);
                let gcv = n as f64 * run.deviance / (denom * denom);
                Ok((run, edf, gcv))
            })()
        },
    )?;
    // Selection and per-candidate telemetry (PIRLS counters + events)
    // stay serial and in grid order, so the event stream is identical
    // at every thread count.
    type LogitBest = (f64, f64, Pirls, f64);
    let mut best: Option<LogitBest> = None;
    let mut last_err: Option<GamError> = None;
    let mut evaluated = 0usize;
    for (gi, eval) in evals.into_iter().enumerate() {
        let lambda = grid[gi];
        let (run, edf, gcv) = match eval {
            Ok(v) => v,
            Err(e) => {
                last_err = Some(e);
                continue;
            }
        };
        evaluated += 1;
        if gef_trace::enabled() {
            gef_trace::counter!("gam.pirls_iterations").add(run.iters as u64);
            if run.step_halvings > 0 {
                gef_trace::counter!("gam.pirls_step_halvings").add(run.step_halvings as u64);
            }
            gef_trace::global().event(
                "gam.pirls",
                &[
                    ("lambda", lambda),
                    ("iters", run.iters as f64),
                    ("final_delta", run.final_delta),
                    ("step_halvings", run.step_halvings as f64),
                ],
            );
            gef_trace::global().event(
                "gam.gcv",
                &[
                    ("lambda", lambda),
                    ("gcv", gcv),
                    ("edf", edf),
                    ("deviance", run.deviance),
                    ("pirls_iters", run.iters as f64),
                ],
            );
        }
        if !gcv.is_finite() {
            continue;
        }
        if best.as_ref().is_none_or(|bst| gcv < bst.0) {
            best = Some((gcv, lambda, run, edf));
        }
    }
    let Some((gcv, lambda, run, edf)) = best else {
        return Err(match last_err {
            Some(e) if evaluated == 0 => e,
            _ => GamError::NonFiniteGcv {
                candidates: grid.len(),
            },
        });
    };
    let cov = run.chol.inverse()?;
    Ok((
        run.beta,
        cov,
        FitSummary {
            lambda,
            gcv,
            edf,
            scale: 1.0,
            deviance: run.deviance,
            n_obs: n,
            pirls_iters: run.iters,
            step_halvings: run.step_halvings,
        },
    ))
}

/// Result of one penalized IRLS run at a fixed λ.
struct Pirls {
    beta: Vec<f64>,
    chol: Cholesky,
    /// Final weighted Gram matrix `XᵀWX` (needed for the edf trace).
    weighted_gram: Matrix,
    deviance: f64,
    iters: usize,
    step_halvings: usize,
    /// Max-norm coefficient change of the last accepted step, carried
    /// out so the coordinator can emit the `gam.pirls` event in grid
    /// order (PIRLS runs may execute on pool workers).
    final_delta: f64,
}

/// Binomial deviance of the responses under linear predictors `eta`.
fn binomial_deviance(ys: &[f64], eta: &[f64]) -> f64 {
    ys.iter()
        .zip(eta)
        .map(|(&y, &e)| {
            let mu = Link::Logit.inverse(e).clamp(1e-12, 1.0 - 1e-12);
            let term_y = if y > 0.0 { y * (y / mu).ln() } else { 0.0 };
            let term_n = if y < 1.0 {
                (1.0 - y) * ((1.0 - y) / (1.0 - mu)).ln()
            } else {
                0.0
            };
            2.0 * (term_y + term_n)
        })
        .sum()
}

/// Maximum step-halvings per PIRLS iteration before giving up on the
/// candidate step.
const MAX_STEP_HALVINGS: usize = 12;

/// One penalized IRLS run for the logit link at a fixed λ.
///
/// Each Newton/IRLS step is guarded by **step-halving** (mgcv-style):
/// if the candidate coefficients raise the penalized-model deviance (or
/// make it non-finite), the step is repeatedly halved back toward the
/// previous iterate. A step that stays non-finite after
/// [`MAX_STEP_HALVINGS`] halvings aborts the run with
/// [`GamError::PirlsDiverged`]; a finite but non-improving step keeps
/// the previous iterate and stops early (best-effort convergence on
/// e.g. separable data).
#[allow(clippy::too_many_arguments)]
fn pirls_logit(
    design: &Design,
    rows: &[Vec<(usize, f64)>],
    ys: &[f64],
    lambda: f64,
    max_iter: usize,
    tol: f64,
    constraint: &Matrix,
) -> Result<Pirls> {
    let p = design.num_cols;
    // Initialize the linear predictor from shrunken responses.
    let mut eta: Vec<f64> = ys
        .iter()
        .map(|&y| {
            let mu = (0.5 * (y + 0.5)).clamp(0.05, 0.95);
            (mu / (1.0 - mu)).ln()
        })
        .collect();
    let mut beta = vec![0.0; p];
    let mut result: Option<(Cholesky, Matrix)> = None;
    let mut iters = 0;
    let mut last_delta = f64::INFINITY;
    // The initial eta is a heuristic warm start, not X·β for any β, so
    // the first accepted step has no previous deviance to compare
    // against: any finite deviance is accepted.
    let mut prev_dev = f64::INFINITY;
    let mut step_halvings = 0usize;
    // Budget cap on PIRLS iterations (0 = unlimited): a process-wide
    // clamp on top of the spec's own `max_pirls_iter`.
    let max_iter = match gef_trace::budget::pirls_iter_cap() {
        0 => max_iter,
        cap => max_iter.min(cap as usize),
    };
    for it in 0..max_iter {
        // Per-iteration cooperative checkpoint: one relaxed load when no
        // budget is armed, so unbudgeted runs stay bit-identical.
        if gef_trace::budget::hard_exceeded() {
            return Err(GamError::DeadlineExceeded { at: "pirls" });
        }
        if gef_trace::fault::fires("pirls.stall") {
            // Simulated wedged iteration: burns wall-clock without any
            // numeric effect, so only a deadline can bound the run.
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        iters = it + 1;
        let mut g = Matrix::zeros(p, p);
        let mut b = vec![0.0; p];
        for (row, (&y, &e)) in rows.iter().zip(ys.iter().zip(&eta)) {
            let mu = Link::Logit.inverse(e);
            let w = (mu * (1.0 - mu)).max(1e-6);
            let z = e + (y - mu) / w;
            g.syr_upper_sparse(row, w);
            let wz = w * z;
            for &(c, v) in row {
                b[c] += v * wz;
            }
        }
        g.mirror_upper();
        let ridge = ridge_for(&g);
        let chol = penalized_chol(&g, &design.penalty, lambda, constraint, ridge)?;
        let mut new_beta = chol.solve(&b)?;
        if gef_trace::fault::fires("pirls.iter") {
            // Simulated solver corruption: non-finite coefficients.
            new_beta.fill(f64::NAN);
        }
        if gef_trace::fault::fires("pirls.step") {
            // Simulated overshoot: finite but wildly overscaled step,
            // recoverable by step-halving.
            for v in &mut new_beta {
                *v = *v * 64.0 + 64.0;
            }
        }
        // Step-halving: walk the candidate back toward the previous
        // iterate while it makes the deviance worse or non-finite.
        let mut halved = 0usize;
        let (new_eta, dev, accepted) = loop {
            let cand_eta: Vec<f64> = rows
                .iter()
                .map(|row| sparse_dot(row, &new_beta).clamp(-30.0, 30.0))
                .collect();
            let dev = binomial_deviance(ys, &cand_eta);
            if dev.is_finite() && dev <= prev_dev + 1e-6 * (1.0 + prev_dev.abs()) {
                break (cand_eta, dev, true);
            }
            if halved >= MAX_STEP_HALVINGS {
                if !dev.is_finite() {
                    return Err(GamError::PirlsDiverged {
                        iters,
                        deviance: dev,
                    });
                }
                // Finite but no improvement even at a tiny step: the
                // previous iterate is (numerically) the optimum.
                break (eta.clone(), prev_dev, false);
            }
            halved += 1;
            for (nb, ob) in new_beta.iter_mut().zip(&beta) {
                *nb = 0.5 * (*nb + *ob);
            }
        };
        step_halvings += halved;
        if !accepted {
            // Kept the previous iterate; its factorization is already in
            // `result` (the first iteration always either accepts a
            // finite step or diverges above).
            last_delta = 0.0;
            break;
        }
        let delta = new_beta
            .iter()
            .zip(&beta)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        let scale_ref = new_beta.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        beta = new_beta;
        eta = new_eta;
        prev_dev = dev;
        result = Some((chol, g));
        last_delta = delta;
        if delta < tol * (1.0 + scale_ref) {
            break;
        }
    }
    let Some((chol, weighted_gram)) = result else {
        // Only reachable when the very first iteration exhausted its
        // halvings without a finite improvement.
        return Err(GamError::PirlsDiverged {
            iters,
            deviance: prev_dev,
        });
    };
    Ok(Pirls {
        beta,
        chol,
        weighted_gram,
        deviance: prev_dev,
        iters,
        step_halvings,
        final_delta: last_delta,
    })
}

impl Gam {
    /// Linear predictor η(x).
    pub fn predict_raw(&self, x: &[f64]) -> f64 {
        sparse_dot(&self.design.row(x), &self.beta)
    }

    /// Response-scale prediction (identity or inverse-logit).
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.link.inverse(self.predict_raw(x))
    }

    /// Batch response-scale predictions.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }

    /// Number of additive terms.
    pub fn num_terms(&self) -> usize {
        self.design.terms.len()
    }

    /// The term specifications this model was fitted with.
    pub fn term_specs(&self) -> &[TermSpec] {
        &self.specs
    }

    /// Label of a term, e.g. `s(3)`.
    pub fn term_label(&self, term: usize) -> String {
        self.specs[term].label()
    }

    /// Link function of the model.
    pub fn link(&self) -> Link {
        self.link
    }

    /// Fit summary (λ, GCV, edf, scale, deviance).
    pub fn summary(&self) -> &FitSummary {
        &self.summary
    }

    /// Coefficient vector (intercept first).
    pub fn coefficients(&self) -> &[f64] {
        &self.beta
    }

    /// Stable 64-bit content digest of the fitted model (domain-tagged
    /// `gef-gam/v1`): term labels, link, selected λ, and every
    /// coefficient's exact bit pattern. Bit-identical fits — and only
    /// those — digest equal; explanation provenance uses it to
    /// fingerprint the surrogate independently of its JSON encoding.
    pub fn content_digest(&self) -> u64 {
        let mut d = gef_trace::hash::Digest::new("gef-gam/v1");
        d.write_str(match self.link {
            Link::Identity => "identity",
            Link::Logit => "logit",
        });
        d.write_u64(self.specs.len() as u64);
        for spec in &self.specs {
            d.write_str(&spec.label());
        }
        d.write_f64(self.summary.lambda);
        d.write_f64s(&self.beta);
        d.finish()
    }

    /// Effective intercept on the linear-predictor scale: the raw
    /// intercept plus every term's (training) mean contribution, so
    /// `predict_raw(x) = effective_intercept() + Σ component(t, x)`.
    pub fn effective_intercept(&self) -> f64 {
        self.beta[0] + self.component_means.iter().sum::<f64>()
    }

    /// Centered contribution of one term at instance `x` (the paper's
    /// component value: the spline evaluated at `x`, centered on its
    /// training mean).
    pub fn component(&self, term: usize, x: &[f64]) -> f64 {
        let row = self.design.term_row(term, x);
        sparse_dot(&row, &self.beta) - self.component_means[term]
    }

    /// Centered contribution and its Bayesian standard error.
    pub fn component_with_se(&self, term: usize, x: &[f64]) -> (f64, f64) {
        let row = self.design.term_row(term, x);
        let est = sparse_dot(&row, &self.beta) - self.component_means[term];
        // se² = bᵀ V_block b over the term's columns.
        let mut se2 = 0.0;
        for &(ci, vi) in &row {
            for &(cj, vj) in &row {
                se2 += vi * vj * self.cov[(ci, cj)];
            }
        }
        (est, se2.max(0.0).sqrt())
    }

    /// Evaluate a univariate term's centered curve with a symmetric
    /// credible band at the given feature values. `z` is the normal
    /// quantile (1.96 for a 95% band).
    ///
    /// Returns `(estimate, lower, upper)` per value. Errors if the term
    /// is a tensor (bivariate) term.
    pub fn univariate_curve(
        &self,
        term: usize,
        values: &[f64],
        z: f64,
    ) -> Result<Vec<(f64, f64, f64)>> {
        let feats = self.specs[term].features();
        if feats.len() != 1 {
            return Err(GamError::InvalidSpec(format!(
                "term {term} ({}) is not univariate",
                self.term_label(term)
            )));
        }
        let f = feats[0];
        let mut x = vec![0.0; f + 1];
        Ok(values
            .iter()
            .map(|&v| {
                x[f] = v;
                let (est, se) = self.component_with_se(term, &x);
                (est, est - z * se, est + z * se)
            })
            .collect())
    }

    /// Evaluate a tensor term's centered surface on the grid
    /// `values_a × values_b`. Returns a row-major matrix of estimates.
    pub fn tensor_surface(
        &self,
        term: usize,
        values_a: &[f64],
        values_b: &[f64],
    ) -> Result<Vec<Vec<f64>>> {
        let feats = self.specs[term].features();
        if feats.len() != 2 {
            return Err(GamError::InvalidSpec(format!(
                "term {term} ({}) is not bivariate",
                self.term_label(term)
            )));
        }
        let (fa, fb) = (feats[0], feats[1]);
        let width = fa.max(fb) + 1;
        let mut x = vec![0.0; width];
        let mut out = Vec::with_capacity(values_a.len());
        for &a in values_a {
            let mut row = Vec::with_capacity(values_b.len());
            for &b in values_b {
                x[fa] = a;
                x[fb] = b;
                row.push(self.component(term, &x));
            }
            out.push(row);
        }
        Ok(out)
    }

    /// Importance of a term: the standard deviation of its contribution
    /// over the training data (used to sort component plots).
    pub fn term_importance(&self, term: usize) -> f64 {
        self.component_sds[term]
    }

    /// Serialize the fitted model (coefficients, bases, covariance) to
    /// JSON, so a surrogate can be archived and reloaded without
    /// refitting.
    pub fn to_json(&self) -> String {
        // Serialization of a plain-data struct cannot fail.
        #[allow(clippy::expect_used)]
        serde_json::to_string(self).expect("GAM serialization is infallible")
    }

    /// Reload a fitted model from [`Gam::to_json`] output.
    pub fn from_json(s: &str) -> Result<Gam> {
        serde_json::from_str(s).map_err(|e| GamError::InvalidData(format!("json: {e}")))
    }

    /// Terms sorted by descending importance.
    pub fn terms_by_importance(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.num_terms()).collect();
        idx.sort_by(|&a, &b| self.component_sds[b].total_cmp(&self.component_sds[a]));
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        (0..n).map(|_| (0..d).map(|_| next()).collect()).collect()
    }

    #[test]
    fn recovers_sine_plus_line() {
        let xs = uniform(2000, 2, 1);
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| 2.0 * x[0] + (x[1] * std::f64::consts::PI * 2.0).sin())
            .collect();
        let spec = GamSpec::regression(vec![
            TermSpec::spline(0, (0.0, 1.0)),
            TermSpec::spline(1, (0.0, 1.0)),
        ]);
        let gam = fit(&spec, &xs, &ys).unwrap();
        let rmse: f64 = (xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (gam.predict(x) - y).powi(2))
            .sum::<f64>()
            / xs.len() as f64)
            .sqrt();
        assert!(rmse < 0.02, "rmse={rmse}");
        // The component of term 1 should look like the sine (centered).
        let c_low = gam.component(1, &[0.0, 0.25]);
        let c_high = gam.component(1, &[0.0, 0.75]);
        assert!((c_low - 1.0).abs() < 0.1, "c(0.25)={c_low}");
        assert!((c_high + 1.0).abs() < 0.1, "c(0.75)={c_high}");
    }

    #[test]
    fn components_sum_to_prediction() {
        let xs = uniform(500, 2, 3);
        let ys: Vec<f64> = xs.iter().map(|x| x[0] - 0.5 * x[1] + 1.0).collect();
        let spec = GamSpec::regression(vec![
            TermSpec::spline(0, (0.0, 1.0)),
            TermSpec::spline(1, (0.0, 1.0)),
        ]);
        let gam = fit(&spec, &xs, &ys).unwrap();
        for x in xs.iter().take(20) {
            let sum = gam.effective_intercept() + gam.component(0, x) + gam.component(1, x);
            assert!((sum - gam.predict_raw(x)).abs() < 1e-9);
        }
    }

    #[test]
    fn heavy_smoothing_flattens_curve() {
        let xs = uniform(800, 1, 5);
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 20.0).sin()).collect();
        let smooth = fit(
            &GamSpec {
                lambda: LambdaSelection::Fixed(1e8),
                ..GamSpec::regression(vec![TermSpec::spline(0, (0.0, 1.0))])
            },
            &xs,
            &ys,
        )
        .unwrap();
        let wiggly = fit(
            &GamSpec {
                lambda: LambdaSelection::Fixed(1e-6),
                ..GamSpec::regression(vec![TermSpec::spline(0, (0.0, 1.0))])
            },
            &xs,
            &ys,
        )
        .unwrap();
        // With huge λ the component collapses toward a line; its sd is
        // far below the wiggly fit's.
        assert!(smooth.term_importance(0) < 0.5 * wiggly.term_importance(0));
        assert!(smooth.summary().edf < wiggly.summary().edf);
    }

    #[test]
    fn gcv_picks_reasonable_lambda() {
        let xs = uniform(1500, 1, 7);
        // Noisy smooth signal: GCV should neither pin to the smallest
        // nor necessarily the largest λ, and fit must track the signal.
        let mut state = 17u64;
        let mut noise = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 0.4
        };
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 6.0).sin() + noise()).collect();
        let gam = fit(
            &GamSpec::regression(vec![TermSpec::spline(0, (0.0, 1.0))]),
            &xs,
            &ys,
        )
        .unwrap();
        // Residual rmse close to the noise floor (sd ≈ 0.115).
        let rmse = (gam.summary().deviance / xs.len() as f64).sqrt();
        assert!(rmse > 0.08 && rmse < 0.16, "rmse={rmse}");
        assert!(gam.summary().lambda > 0.0);
    }

    #[test]
    fn factor_term_fits_group_means() {
        let n = 600;
        let xs: Vec<Vec<f64>> = (0..n).map(|i| vec![(i % 3) as f64]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| match x[0] as usize {
                0 => 1.0,
                1 => -2.0,
                _ => 0.5,
            })
            .collect();
        let spec = GamSpec {
            lambda: LambdaSelection::Fixed(1e-6),
            ..GamSpec::regression(vec![TermSpec::factor(0, vec![0.0, 1.0, 2.0])])
        };
        let gam = fit(&spec, &xs, &ys).unwrap();
        assert!((gam.predict(&[0.0]) - 1.0).abs() < 1e-3);
        assert!((gam.predict(&[1.0]) + 2.0).abs() < 1e-3);
        assert!((gam.predict(&[2.0]) - 0.5).abs() < 1e-3);
    }

    #[test]
    fn tensor_term_captures_interaction() {
        let xs = uniform(3000, 2, 11);
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[1]).collect();
        // Univariate-only model cannot represent x0*x1; adding the
        // tensor term must cut the error dramatically.
        let uni = fit(
            &GamSpec::regression(vec![
                TermSpec::spline(0, (0.0, 1.0)),
                TermSpec::spline(1, (0.0, 1.0)),
            ]),
            &xs,
            &ys,
        )
        .unwrap();
        let with_te = fit(
            &GamSpec::regression(vec![
                TermSpec::spline(0, (0.0, 1.0)),
                TermSpec::spline(1, (0.0, 1.0)),
                TermSpec::tensor((0, 1), ((0.0, 1.0), (0.0, 1.0))),
            ]),
            &xs,
            &ys,
        )
        .unwrap();
        let rss_uni = uni.summary().deviance;
        let rss_te = with_te.summary().deviance;
        assert!(
            rss_te < 0.2 * rss_uni,
            "tensor should capture interaction: {rss_te} vs {rss_uni}"
        );
    }

    #[test]
    fn logit_link_learns_probability() {
        let xs = uniform(2000, 1, 13);
        let ys: Vec<f64> = xs.iter().map(|x| f64::from(x[0] > 0.5)).collect();
        let gam = fit(
            &GamSpec::classification(vec![TermSpec::spline(0, (0.0, 1.0))]),
            &xs,
            &ys,
        )
        .unwrap();
        assert!(gam.predict(&[0.9]) > 0.9);
        assert!(gam.predict(&[0.1]) < 0.1);
        assert!(gam.summary().pirls_iters >= 2);
        assert_eq!(gam.summary().scale, 1.0);
    }

    #[test]
    fn credible_band_contains_estimate_and_grows_with_z() {
        let xs = uniform(500, 1, 21);
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 2.0).collect();
        let gam = fit(
            &GamSpec::regression(vec![TermSpec::spline(0, (0.0, 1.0))]),
            &xs,
            &ys,
        )
        .unwrap();
        let grid: Vec<f64> = (0..21).map(|i| i as f64 / 20.0).collect();
        let band95 = gam.univariate_curve(0, &grid, 1.96).unwrap();
        let band50 = gam.univariate_curve(0, &grid, 0.674).unwrap();
        for ((e95, lo95, hi95), (_, lo50, hi50)) in band95.iter().zip(&band50) {
            assert!(lo95 <= e95 && e95 <= hi95);
            assert!(lo95 <= lo50 && hi50 <= hi95);
        }
    }

    #[test]
    fn curve_errors_on_tensor_term() {
        let xs = uniform(300, 2, 23);
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[1]).collect();
        let gam = fit(
            &GamSpec::regression(vec![TermSpec::tensor((0, 1), ((0.0, 1.0), (0.0, 1.0)))]),
            &xs,
            &ys,
        )
        .unwrap();
        assert!(gam.univariate_curve(0, &[0.5], 1.96).is_err());
        assert!(gam.tensor_surface(0, &[0.2, 0.8], &[0.3]).is_ok());
    }

    #[test]
    fn importance_ranks_strong_term_first() {
        let xs = uniform(1000, 2, 29);
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * x[0] + 0.1 * x[1]).collect();
        let gam = fit(
            &GamSpec::regression(vec![
                TermSpec::spline(1, (0.0, 1.0)),
                TermSpec::spline(0, (0.0, 1.0)),
            ]),
            &xs,
            &ys,
        )
        .unwrap();
        // Term index 1 is the spline on feature 0 (the strong one).
        assert_eq!(gam.terms_by_importance()[0], 1);
        assert!(gam.term_importance(1) > 5.0 * gam.term_importance(0));
    }

    #[test]
    fn tensor_does_not_steal_main_effects() {
        // y = sin(2πx0) + 3·(x0−.5)(x1−.5): with marginal constraints
        // the spline on x0 must keep the sine and the tensor must hold
        // only the product structure.
        let xs = uniform(4000, 2, 77);
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (x[0] * std::f64::consts::PI * 2.0).sin() + 3.0 * (x[0] - 0.5) * (x[1] - 0.5))
            .collect();
        let gam = fit(
            &GamSpec::regression(vec![
                TermSpec::spline(0, (0.0, 1.0)),
                TermSpec::spline(1, (0.0, 1.0)),
                TermSpec::tensor((0, 1), ((0.0, 1.0), (0.0, 1.0))),
            ]),
            &xs,
            &ys,
        )
        .unwrap();
        // Spline on x0 carries the sine: check two probe points.
        let c_quarter = gam.component(0, &[0.25, 0.0]);
        let c_three_q = gam.component(0, &[0.75, 0.0]);
        assert!((c_quarter - 1.0).abs() < 0.15, "c(0.25)={c_quarter}");
        assert!((c_three_q + 1.0).abs() < 0.15, "c(0.75)={c_three_q}");
        // The spline's standard error stays modest (no aliasing blowup).
        let (_, se) = gam.component_with_se(0, &[0.5, 0.5]);
        assert!(se < 0.2, "se={se}");
        // The tensor term is (approximately) free of main effects: its
        // average over x1 at fixed x0 is near zero.
        let te = gam
            .term_specs()
            .iter()
            .position(|t| matches!(t, TermSpec::Tensor { .. }))
            .unwrap();
        for &a in &[0.2, 0.5, 0.8] {
            let avg: f64 = (0..21)
                .map(|i| gam.component(te, &[a, i as f64 / 20.0]))
                .sum::<f64>()
                / 21.0;
            assert!(avg.abs() < 0.12, "tensor marginal at x0={a}: {avg}");
        }
        // And it still captures the interaction (nonzero corners).
        let corner = gam.component(te, &[0.95, 0.95]);
        assert!(corner > 0.3, "tensor corner = {corner}");
    }

    #[test]
    fn gam_json_round_trip_preserves_predictions() {
        let xs = uniform(400, 2, 41);
        let ys: Vec<f64> = xs.iter().map(|x| x[0] + (x[1] * 5.0).sin()).collect();
        let gam = fit(
            &GamSpec::regression(vec![
                TermSpec::spline(0, (0.0, 1.0)),
                TermSpec::spline(1, (0.0, 1.0)),
            ]),
            &xs,
            &ys,
        )
        .unwrap();
        let json = gam.to_json();
        let reloaded = Gam::from_json(&json).unwrap();
        for x in xs.iter().take(25) {
            assert_eq!(gam.predict(x), reloaded.predict(x));
            let (e1, s1) = gam.component_with_se(0, x);
            let (e2, s2) = reloaded.component_with_se(0, x);
            assert_eq!(e1, e2);
            assert_eq!(s1, s2);
        }
        assert!(Gam::from_json("{").is_err());
    }

    #[test]
    fn rejects_bad_inputs() {
        let spec = GamSpec::regression(vec![TermSpec::spline(0, (0.0, 1.0))]);
        assert!(fit(&spec, &[], &[]).is_err());
        assert!(fit(&spec, &[vec![0.1]], &[1.0, 2.0]).is_err());
        // Term references out-of-range feature.
        let spec2 = GamSpec::regression(vec![TermSpec::spline(3, (0.0, 1.0))]);
        let xs = uniform(100, 1, 31);
        let ys = vec![0.0; 100];
        assert!(fit(&spec2, &xs, &ys).is_err());
        // Logit with out-of-range responses.
        let spec3 = GamSpec::classification(vec![TermSpec::spline(0, (0.0, 1.0))]);
        assert!(fit(&spec3, &xs, &vec![2.0; 100]).is_err());
        // NaN responses.
        assert!(fit(&spec, &xs, &vec![f64::NAN; 100]).is_err());
        // Empty λ grid.
        let spec4 = GamSpec {
            lambda: LambdaSelection::GcvGrid(vec![]),
            ..GamSpec::regression(vec![TermSpec::spline(0, (0.0, 1.0))])
        };
        assert!(fit(&spec4, &xs, &ys).is_err());
    }
}
