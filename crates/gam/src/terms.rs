//! GAM term types: univariate P-splines, categorical factors, and
//! bivariate tensor-product smooths.
//!
//! These mirror the paper's Sec. 3.5 modelling choices: "third-order
//! spline terms with a fixed number of p-spline basis for each
//! continuous feature in F′, factor terms for each categorical variable
//! in F′, and penalized tensor products for each variable in F″".

use crate::bspline::BSplineBasis;
use crate::penalty::{difference_penalty, ridge_penalty, tensor_penalty};
use crate::GamError;
use gef_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Default number of basis functions for a univariate spline term.
pub const DEFAULT_SPLINE_BASIS: usize = 20;
/// Default number of basis functions per margin of a tensor term.
pub const DEFAULT_TENSOR_BASIS: usize = 8;
/// Default spline degree (cubic, third-order as in the paper).
pub const DEFAULT_DEGREE: usize = 3;

/// Specification of one additive term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TermSpec {
    /// Penalized cubic spline on one continuous feature.
    Spline {
        /// Feature index into the instance vector.
        feature: usize,
        /// Number of B-spline basis functions.
        num_basis: usize,
        /// Polynomial degree.
        degree: usize,
        /// Domain `(lo, hi)` over which knots are placed.
        range: (f64, f64),
    },
    /// One-hot factor term for a categorical feature (ridge-penalized).
    Factor {
        /// Feature index into the instance vector.
        feature: usize,
        /// Sorted distinct levels; an input is matched to its nearest
        /// level.
        levels: Vec<f64>,
    },
    /// Penalized tensor-product smooth on a feature pair.
    Tensor {
        /// The two feature indices.
        features: (usize, usize),
        /// Basis sizes per margin.
        num_basis: (usize, usize),
        /// Domains per margin.
        ranges: ((f64, f64), (f64, f64)),
        /// Marginal spline degree.
        degree: usize,
    },
    /// Penalized cubic spline with knots placed at quantiles of the
    /// given (sorted) anchor values — robust for skewed domains, where
    /// uniform knots would leave long spans without training support.
    SplineAnchored {
        /// Feature index into the instance vector.
        feature: usize,
        /// Number of B-spline basis functions.
        num_basis: usize,
        /// Polynomial degree.
        degree: usize,
        /// Sorted anchor values (e.g. the feature's sampling domain).
        anchors: Vec<f64>,
    },
    /// Tensor-product smooth with anchored marginal knots.
    TensorAnchored {
        /// The two feature indices.
        features: (usize, usize),
        /// Basis sizes per margin.
        num_basis: (usize, usize),
        /// Sorted anchors per margin.
        anchors: (Vec<f64>, Vec<f64>),
        /// Marginal spline degree.
        degree: usize,
    },
}

impl TermSpec {
    /// Convenience constructor: cubic spline with default basis size.
    pub fn spline(feature: usize, range: (f64, f64)) -> Self {
        TermSpec::Spline {
            feature,
            num_basis: DEFAULT_SPLINE_BASIS,
            degree: DEFAULT_DEGREE,
            range,
        }
    }

    /// Convenience constructor: factor term.
    pub fn factor(feature: usize, levels: Vec<f64>) -> Self {
        TermSpec::Factor { feature, levels }
    }

    /// Convenience constructor: tensor smooth with default marginal
    /// basis sizes.
    pub fn tensor(features: (usize, usize), ranges: ((f64, f64), (f64, f64))) -> Self {
        TermSpec::Tensor {
            features,
            num_basis: (DEFAULT_TENSOR_BASIS, DEFAULT_TENSOR_BASIS),
            ranges,
            degree: DEFAULT_DEGREE,
        }
    }

    /// Features referenced by this term.
    pub fn features(&self) -> Vec<usize> {
        match self {
            TermSpec::Spline { feature, .. }
            | TermSpec::SplineAnchored { feature, .. }
            | TermSpec::Factor { feature, .. } => vec![*feature],
            TermSpec::Tensor { features, .. } | TermSpec::TensorAnchored { features, .. } => {
                vec![features.0, features.1]
            }
        }
    }

    /// A short human-readable label, e.g. `s(3)` or `te(1,4)`.
    pub fn label(&self) -> String {
        match self {
            TermSpec::Spline { feature, .. } | TermSpec::SplineAnchored { feature, .. } => {
                format!("s({feature})")
            }
            TermSpec::Factor { feature, .. } => format!("f({feature})"),
            TermSpec::Tensor { features, .. } | TermSpec::TensorAnchored { features, .. } => {
                format!("te({},{})", features.0, features.1)
            }
        }
    }
}

/// A term compiled into its basis/penalty machinery.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum BuiltTerm {
    Spline {
        feature: usize,
        basis: BSplineBasis,
    },
    Factor {
        feature: usize,
        levels: Vec<f64>,
    },
    Tensor {
        features: (usize, usize),
        basis_a: BSplineBasis,
        basis_b: BSplineBasis,
    },
}

impl BuiltTerm {
    pub(crate) fn build(spec: &TermSpec) -> Result<Self, GamError> {
        match spec {
            TermSpec::Spline {
                feature,
                num_basis,
                degree,
                range,
            } => Ok(BuiltTerm::Spline {
                feature: *feature,
                basis: BSplineBasis::new(*num_basis, *degree, range.0, range.1)?,
            }),
            TermSpec::Factor { feature, levels } => {
                if levels.is_empty() {
                    return Err(GamError::InvalidSpec(format!(
                        "factor term on feature {feature} has no levels"
                    )));
                }
                let mut sorted = levels.clone();
                sorted.sort_by(f64::total_cmp);
                sorted.dedup();
                Ok(BuiltTerm::Factor {
                    feature: *feature,
                    levels: sorted,
                })
            }
            TermSpec::Tensor {
                features,
                num_basis,
                ranges,
                degree,
            } => Ok(BuiltTerm::Tensor {
                features: *features,
                basis_a: BSplineBasis::new(num_basis.0, *degree, ranges.0 .0, ranges.0 .1)?,
                basis_b: BSplineBasis::new(num_basis.1, *degree, ranges.1 .0, ranges.1 .1)?,
            }),
            TermSpec::SplineAnchored {
                feature,
                num_basis,
                degree,
                anchors,
            } => Ok(BuiltTerm::Spline {
                feature: *feature,
                basis: BSplineBasis::from_anchors(*num_basis, *degree, anchors)?,
            }),
            TermSpec::TensorAnchored {
                features,
                num_basis,
                anchors,
                degree,
            } => Ok(BuiltTerm::Tensor {
                features: *features,
                basis_a: BSplineBasis::from_anchors(num_basis.0, *degree, &anchors.0)?,
                basis_b: BSplineBasis::from_anchors(num_basis.1, *degree, &anchors.1)?,
            }),
        }
    }

    /// Number of coefficient columns contributed by the term.
    pub(crate) fn num_cols(&self) -> usize {
        match self {
            BuiltTerm::Spline { basis, .. } => basis.num_basis(),
            BuiltTerm::Factor { levels, .. } => levels.len(),
            BuiltTerm::Tensor {
                basis_a, basis_b, ..
            } => basis_a.num_basis() * basis_b.num_basis(),
        }
    }

    /// Append this term's non-zero design entries for instance `x`,
    /// with columns shifted by `offset`.
    pub(crate) fn fill_row(&self, x: &[f64], offset: usize, out: &mut Vec<(usize, f64)>) {
        match self {
            BuiltTerm::Spline { feature, basis } => {
                let (first, vals) = basis.eval_sparse(x[*feature]);
                out.extend(
                    vals.iter()
                        .enumerate()
                        .map(|(j, &v)| (offset + first + j, v)),
                );
            }
            BuiltTerm::Factor { feature, levels } => {
                let idx = nearest_level(levels, x[*feature]);
                out.push((offset + idx, 1.0));
            }
            BuiltTerm::Tensor {
                features,
                basis_a,
                basis_b,
            } => {
                let (fa, va) = basis_a.eval_sparse(x[features.0]);
                let (fb, vb) = basis_b.eval_sparse(x[features.1]);
                let kb = basis_b.num_basis();
                for (i, &a) in va.iter().enumerate() {
                    for (j, &b) in vb.iter().enumerate() {
                        out.push((offset + (fa + i) * kb + fb + j, a * b));
                    }
                }
            }
        }
    }

    /// The term's penalty block (square, `num_cols` wide).
    pub(crate) fn penalty(&self, order: usize) -> Matrix {
        match self {
            BuiltTerm::Spline { basis, .. } => difference_penalty(basis.num_basis(), order),
            BuiltTerm::Factor { levels, .. } => ridge_penalty(levels.len()),
            BuiltTerm::Tensor {
                basis_a, basis_b, ..
            } => {
                let pa = difference_penalty(basis_a.num_basis(), order);
                let pb = difference_penalty(basis_b.num_basis(), order);
                tensor_penalty(&pa, &pb)
            }
        }
    }
}

/// Index of the level nearest to `v` (ties break to the lower level).
pub(crate) fn nearest_level(levels: &[f64], v: f64) -> usize {
    debug_assert!(!levels.is_empty());
    match levels.binary_search_by(|l| l.total_cmp(&v)) {
        Ok(i) => i,
        Err(0) => 0,
        Err(i) if i == levels.len() => levels.len() - 1,
        Err(i) => {
            if (v - levels[i - 1]) <= (levels[i] - v) {
                i - 1
            } else {
                i
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spline_row_has_degree_plus_one_entries() {
        let t = BuiltTerm::build(&TermSpec::spline(0, (0.0, 1.0))).unwrap();
        let mut row = Vec::new();
        t.fill_row(&[0.35], 5, &mut row);
        assert_eq!(row.len(), 4);
        assert!(row.iter().all(|&(c, _)| (5..25).contains(&c)));
        let s: f64 = row.iter().map(|&(_, v)| v).sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn factor_row_is_one_hot_nearest() {
        let t = BuiltTerm::build(&TermSpec::factor(1, vec![0.0, 1.0, 2.0])).unwrap();
        let mut row = Vec::new();
        t.fill_row(&[9.9, 1.2], 0, &mut row);
        assert_eq!(row, vec![(1, 1.0)]);
        row.clear();
        t.fill_row(&[0.0, 5.0], 0, &mut row);
        assert_eq!(row, vec![(2, 1.0)]);
        row.clear();
        t.fill_row(&[0.0, -3.0], 0, &mut row);
        assert_eq!(row, vec![(0, 1.0)]);
    }

    #[test]
    fn tensor_row_is_outer_product() {
        let spec = TermSpec::Tensor {
            features: (0, 1),
            num_basis: (6, 5),
            ranges: ((0.0, 1.0), (0.0, 1.0)),
            degree: 2,
        };
        let t = BuiltTerm::build(&spec).unwrap();
        assert_eq!(t.num_cols(), 30);
        let mut row = Vec::new();
        t.fill_row(&[0.4, 0.7], 0, &mut row);
        assert_eq!(row.len(), 9); // (degree+1)^2
        let s: f64 = row.iter().map(|&(_, v)| v).sum();
        assert!((s - 1.0).abs() < 1e-12); // product of two partitions of unity
    }

    #[test]
    fn nearest_level_tie_breaks_low() {
        let levels = [0.0, 1.0];
        assert_eq!(nearest_level(&levels, 0.5), 0);
        assert_eq!(nearest_level(&levels, 0.51), 1);
        assert_eq!(nearest_level(&levels, 1.0), 1);
    }

    #[test]
    fn factor_levels_sorted_and_deduped() {
        let t = BuiltTerm::build(&TermSpec::factor(0, vec![2.0, 0.0, 2.0, 1.0])).unwrap();
        assert_eq!(t.num_cols(), 3);
    }

    #[test]
    fn rejects_empty_factor() {
        assert!(BuiltTerm::build(&TermSpec::factor(0, vec![])).is_err());
    }

    #[test]
    fn labels_and_features() {
        assert_eq!(TermSpec::spline(3, (0.0, 1.0)).label(), "s(3)");
        assert_eq!(TermSpec::factor(2, vec![0.0]).label(), "f(2)");
        let te = TermSpec::tensor((1, 4), ((0.0, 1.0), (0.0, 1.0)));
        assert_eq!(te.label(), "te(1,4)");
        assert_eq!(te.features(), vec![1, 4]);
    }

    #[test]
    fn penalty_dimensions_match_cols() {
        for spec in [
            TermSpec::spline(0, (0.0, 1.0)),
            TermSpec::factor(0, vec![0.0, 1.0, 2.0]),
            TermSpec::tensor((0, 1), ((0.0, 1.0), (0.0, 1.0))),
        ] {
            let t = BuiltTerm::build(&spec).unwrap();
            let p = t.penalty(2);
            assert_eq!(p.rows(), t.num_cols());
            assert_eq!(p.cols(), t.num_cols());
        }
    }
}
