//! # gef-baselines
//!
//! The explanation baselines the GEF paper compares against, all
//! implemented from scratch:
//!
//! * [`treeshap`] — path-dependent TreeSHAP (Lundberg et al. 2018/2020),
//!   the polynomial-time exact Shapley-value algorithm for tree
//!   ensembles, including the brute-force reference implementation used
//!   to verify it;
//! * [`lime`] — LIME (Ribeiro et al. 2016): Gaussian perturbation around
//!   an instance plus a distance-kernel-weighted ridge regression;
//! * [`pdp`] — partial dependence (1-D and 2-D) and Individual
//!   Conditional Expectation curves;
//! * [`linear`] — a global linear-regression surrogate (the simpler
//!   alternative to a GAM discussed in the paper's Sec. 3.1).

pub mod lime;
pub mod linear;
pub mod pdp;
pub mod treeshap;

pub use lime::{LimeConfig, LimeExplanation};
pub use linear::LinearSurrogate;
pub use treeshap::{shap_values, shap_values_batch};
