//! Global linear-regression surrogate.
//!
//! The paper's Sec. 3.1 discusses simple linear regression as the
//! maximally interpretable (but inflexible) alternative to a GAM
//! surrogate; this module provides it as a comparison point: a ridge
//! least-squares fit of the forest's outputs on the synthetic dataset.

use gef_linalg::{Cholesky, Matrix};

/// A fitted linear surrogate `ŷ = β₀ + Σ β_j x_j`.
#[derive(Debug, Clone)]
pub struct LinearSurrogate {
    /// Intercept β₀.
    pub intercept: f64,
    /// Slope per feature.
    pub coefficients: Vec<f64>,
}

impl LinearSurrogate {
    /// Fit by ridge least squares (`ridge = 0` gives plain OLS on
    /// non-degenerate data).
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], ridge: f64) -> Result<Self, String> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(format!(
                "invalid shapes: {} rows, {} targets",
                xs.len(),
                ys.len()
            ));
        }
        let d = xs[0].len();
        let p = d + 1;
        let mut g = Matrix::zeros(p, p);
        let mut b = vec![0.0; p];
        let mut row = vec![0.0; p];
        for (x, &y) in xs.iter().zip(ys) {
            row[0] = 1.0;
            row[1..].copy_from_slice(x);
            g.syr_upper(&row, 1.0);
            for (c, &v) in row.iter().enumerate() {
                b[c] += v * y;
            }
        }
        g.mirror_upper();
        for i in 1..p {
            g[(i, i)] += ridge;
        }
        let beta = Cholesky::factor_jittered(&g, 1e-9, 12)
            .map_err(|e| e.to_string())?
            .solve(&b)
            .map_err(|e| e.to_string())?;
        Ok(LinearSurrogate {
            intercept: beta[0],
            coefficients: beta[1..].to_vec(),
        })
    }

    /// Predict one instance.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(x)
                .map(|(c, v)| c * v)
                .sum::<f64>()
    }

    /// Predict a batch.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_function() {
        let xs: Vec<Vec<f64>> = (0..100)
            .map(|i| vec![i as f64 / 100.0, ((i * 7) % 13) as f64 / 13.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.5 + 2.0 * x[0] - 3.0 * x[1]).collect();
        let m = LinearSurrogate::fit(&xs, &ys, 0.0).unwrap();
        assert!((m.intercept - 1.5).abs() < 1e-8);
        assert!((m.coefficients[0] - 2.0).abs() < 1e-8);
        assert!((m.coefficients[1] + 3.0).abs() < 1e-8);
        assert!((m.predict(&[0.5, 0.5]) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn cannot_fit_sine_well() {
        // The Sec. 3.1 point: a linear model cannot approximate the
        // nonlinear generator reasonably.
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 200.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 20.0).sin()).collect();
        let m = LinearSurrogate::fit(&xs, &ys, 0.0).unwrap();
        let preds = m.predict_batch(&xs);
        let r2 = gef_data::metrics::r2(&preds, &ys);
        assert!(r2 < 0.2, "a line should not fit sin(20x): r2={r2}");
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(LinearSurrogate::fit(&[], &[], 0.0).is_err());
        assert!(LinearSurrogate::fit(&[vec![1.0]], &[1.0, 2.0], 0.0).is_err());
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x[0]).collect();
        let ols = LinearSurrogate::fit(&xs, &ys, 0.0).unwrap();
        let ridge = LinearSurrogate::fit(&xs, &ys, 1e5).unwrap();
        assert!(ridge.coefficients[0].abs() < ols.coefficients[0].abs());
    }
}
