//! LIME for tabular data (Ribeiro et al. 2016).
//!
//! Explains a single prediction by (i) perturbing the instance with
//! Gaussian noise scaled to per-feature standard deviations, (ii)
//! querying the black box on the perturbations, (iii) weighting the
//! perturbations with an exponential kernel on standardized distance,
//! and (iv) fitting a weighted ridge regression whose coefficients are
//! the explanation — the same default pipeline as the reference
//! implementation the paper uses.

use gef_forest::Forest;
use gef_linalg::{Cholesky, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// LIME configuration (defaults mirror the reference implementation).
#[derive(Debug, Clone)]
pub struct LimeConfig {
    /// Number of perturbed samples.
    pub num_samples: usize,
    /// Kernel width; `None` = `0.75 · √d` (the LIME default).
    pub kernel_width: Option<f64>,
    /// Ridge regularization strength.
    pub ridge: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LimeConfig {
    fn default() -> Self {
        LimeConfig {
            num_samples: 5000,
            kernel_width: None,
            ridge: 1.0,
            seed: 0,
        }
    }
}

/// A LIME explanation: the local linear model around the instance.
#[derive(Debug, Clone)]
pub struct LimeExplanation {
    /// Intercept of the local ridge model.
    pub intercept: f64,
    /// One coefficient per feature, on the *standardized* feature scale
    /// (so magnitudes are comparable across features, as in the LIME
    /// package's bar plots).
    pub coefficients: Vec<f64>,
    /// The local model's prediction at the instance itself.
    pub local_prediction: f64,
    /// The black box's prediction at the instance.
    pub black_box_prediction: f64,
}

impl LimeExplanation {
    /// Features ranked by absolute coefficient, descending.
    pub fn ranked_features(&self) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = self.coefficients.iter().copied().enumerate().collect();
        v.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).expect("finite coefs"));
        v
    }
}

/// Explain one forest prediction with LIME.
///
/// `feature_scales` gives the perturbation standard deviation per
/// feature (zero-scale features are left unperturbed and get a zero
/// coefficient). In the paper's data-free setting these scales are
/// derived from the forest's threshold spans; with data they are the
/// training-set standard deviations.
pub fn explain(
    forest: &Forest,
    x: &[f64],
    feature_scales: &[f64],
    config: &LimeConfig,
) -> LimeExplanation {
    let d = forest.num_features;
    assert_eq!(x.len(), d, "instance width mismatch");
    assert_eq!(feature_scales.len(), d, "scales width mismatch");
    assert!(config.num_samples >= d + 2, "too few samples");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let kw = config.kernel_width.unwrap_or(0.75 * (d as f64).sqrt());
    let active: Vec<usize> = (0..d).filter(|&f| feature_scales[f] > 0.0).collect();
    let p = active.len();

    // Perturb (first sample is the instance itself, LIME-style), build
    // the standardized local design and kernel weights.
    let n = config.num_samples;
    let mut z = Matrix::zeros(n, p + 1); // [1, standardized features]
    let mut y = Vec::with_capacity(n);
    let mut w = Vec::with_capacity(n);
    let mut xp = x.to_vec();
    for s in 0..n {
        let mut dist2 = 0.0;
        for (col, &f) in active.iter().enumerate() {
            let std_val = if s == 0 {
                0.0
            } else {
                gef_data::sample_normal(&mut rng)
            };
            xp[f] = x[f] + std_val * feature_scales[f];
            z[(s, col + 1)] = std_val;
            dist2 += std_val * std_val;
        }
        z[(s, 0)] = 1.0;
        y.push(forest.predict(&xp));
        w.push((-dist2 / (kw * kw)).exp());
    }

    // Weighted ridge: (ZᵀWZ + αI)β = ZᵀWy (intercept unpenalized).
    let mut g = Matrix::zeros(p + 1, p + 1);
    let mut b = vec![0.0; p + 1];
    for s in 0..n {
        let row = z.row(s).to_vec();
        g.syr_upper(&row, w[s]);
        for (c, &v) in row.iter().enumerate() {
            b[c] += w[s] * v * y[s];
        }
    }
    g.mirror_upper();
    for i in 1..=p {
        g[(i, i)] += config.ridge;
    }
    let beta = Cholesky::factor_jittered(&g, 1e-10, 12)
        .expect("ridge system is positive definite")
        .solve(&b)
        .expect("dimensions match");

    let mut coefficients = vec![0.0; d];
    for (col, &f) in active.iter().enumerate() {
        coefficients[f] = beta[col + 1];
    }
    LimeExplanation {
        intercept: beta[0],
        coefficients,
        local_prediction: beta[0], // standardized coords: instance = 0
        black_box_prediction: forest.predict(x),
    }
}

/// Derive perturbation scales from a forest's threshold spans — the
/// data-free analogue of training-set standard deviations: a quarter of
/// the ε-extended threshold span (features the forest never splits on
/// get scale 0).
pub fn scales_from_forest(forest: &Forest) -> Vec<f64> {
    let stats = gef_forest::importance::FeatureStats::collect(forest);
    stats
        .thresholds
        .iter()
        .map(|v| {
            if v.len() < 2 {
                0.0
            } else {
                0.25 * (v[v.len() - 1] - v[0])
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gef_forest::{GbdtParams, GbdtTrainer};

    fn linear_forest() -> Forest {
        let mut state = 91u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let xs: Vec<Vec<f64>> = (0..1200).map(|_| vec![next(), next(), next()]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * x[0] - 2.0 * x[1]).collect();
        GbdtTrainer::new(GbdtParams {
            num_trees: 80,
            num_leaves: 16,
            learning_rate: 0.15,
            min_data_in_leaf: 5,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap()
    }

    #[test]
    fn recovers_local_slopes() {
        let forest = linear_forest();
        let scales = vec![0.1, 0.1, 0.1];
        let exp = explain(
            &forest,
            &[0.5, 0.5, 0.5],
            &scales,
            &LimeConfig {
                num_samples: 4000,
                ..Default::default()
            },
        );
        // Standardized coefficients ≈ slope · scale.
        assert!(
            (exp.coefficients[0] - 0.5).abs() < 0.12,
            "c0={}",
            exp.coefficients[0]
        );
        assert!(
            (exp.coefficients[1] + 0.2).abs() < 0.12,
            "c1={}",
            exp.coefficients[1]
        );
        assert!(
            exp.coefficients[2].abs() < 0.08,
            "c2={}",
            exp.coefficients[2]
        );
        // Ranking puts the strong feature first.
        assert_eq!(exp.ranked_features()[0].0, 0);
    }

    #[test]
    fn intercept_close_to_black_box() {
        let forest = linear_forest();
        let exp = explain(
            &forest,
            &[0.3, 0.7, 0.5],
            &[0.05, 0.05, 0.05],
            &LimeConfig::default(),
        );
        assert!(
            (exp.intercept - exp.black_box_prediction).abs() < 0.3,
            "intercept {} vs bb {}",
            exp.intercept,
            exp.black_box_prediction
        );
        assert_eq!(exp.local_prediction, exp.intercept);
    }

    #[test]
    fn zero_scale_features_excluded() {
        let forest = linear_forest();
        let exp = explain(
            &forest,
            &[0.5, 0.5, 0.5],
            &[0.1, 0.0, 0.1],
            &LimeConfig::default(),
        );
        assert_eq!(exp.coefficients[1], 0.0);
    }

    #[test]
    fn deterministic_by_seed() {
        let forest = linear_forest();
        let cfg = LimeConfig {
            num_samples: 500,
            seed: 9,
            ..Default::default()
        };
        let a = explain(&forest, &[0.5, 0.5, 0.5], &[0.1, 0.1, 0.1], &cfg);
        let b = explain(&forest, &[0.5, 0.5, 0.5], &[0.1, 0.1, 0.1], &cfg);
        assert_eq!(a.coefficients, b.coefficients);
    }

    #[test]
    fn scales_from_forest_sensible() {
        let forest = linear_forest();
        let scales = scales_from_forest(&forest);
        assert_eq!(scales.len(), 3);
        // Features 0 and 1 are split on over ~[0,1]: scale ≈ 0.25.
        assert!(scales[0] > 0.1 && scales[0] < 0.3, "{scales:?}");
    }
}
