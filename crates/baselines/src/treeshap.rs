//! Path-dependent TreeSHAP (Lundberg, Erion & Lee).
//!
//! Computes exact Shapley values for a tree ensemble in
//! `O(T · L · D²)` time, where the conditional expectation of a feature
//! coalition is defined path-dependently: when a split feature is
//! missing, both branches are followed weighted by their training
//! cover. This matches `shap.TreeExplainer(..., feature_perturbation=
//! "tree_path_dependent")`, the variant the paper uses (it requires no
//! background dataset — fitting GEF's data-free setting).
//!
//! [`expected_value_subset`] implements the naive conditional
//! expectation (Algorithm 1), and [`brute_force_shap`] the exponential
//! Shapley summation — both kept as test oracles for the fast
//! algorithm.

use gef_forest::tree::Tree;
use gef_forest::Forest;

/// One element of the feature path maintained by the algorithm.
#[derive(Debug, Clone, Copy)]
struct PathElement {
    /// Feature index of this path segment (usize::MAX for the dummy
    /// root element).
    d: usize,
    /// Fraction of "zero" (missing-feature) paths flowing through.
    z: f64,
    /// Fraction of "one" (present-feature) paths flowing through.
    o: f64,
    /// Proportion of feature subsets of each cardinality.
    w: f64,
}

/// SHAP values of a single tree for instance `x`; `phi` has one slot
/// per feature and is accumulated into.
fn tree_shap(tree: &Tree, x: &[f64], phi: &mut [f64]) {
    let mut path: Vec<PathElement> = Vec::with_capacity(16);
    recurse(tree, 0, x, &mut path, 1.0, 1.0, usize::MAX, phi);
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    tree: &Tree,
    node_idx: usize,
    x: &[f64],
    path: &mut [PathElement],
    p_zero: f64,
    p_one: f64,
    p_index: usize,
    phi: &mut [f64],
) {
    // Work on a private copy of the path (the algorithm's EXTEND makes
    // a copy; recursion depth is bounded by tree depth so the clone
    // cost is negligible next to the O(D²) arithmetic).
    let mut m = path.to_vec();
    extend(&mut m, p_zero, p_one, p_index);
    let node = &tree.nodes[node_idx];
    if node.is_leaf() {
        // Skip the dummy element at index 0.
        for i in 1..m.len() {
            let w: f64 = unwound_sum(&m, i);
            let el = m[i];
            phi[el.d] += w * (el.o - el.z) * node.value;
        }
        return;
    }
    let f = node.feature as usize;
    let (hot, cold) = if x[f] <= node.threshold {
        (node.left as usize, node.right as usize)
    } else {
        (node.right as usize, node.left as usize)
    };
    let r_j = tree.nodes[node_idx].count as f64;
    let r_h = tree.nodes[hot].count as f64;
    let r_c = tree.nodes[cold].count as f64;
    debug_assert!(r_j > 0.0, "TreeSHAP needs positive node covers");
    let (mut i_z, mut i_o) = (1.0, 1.0);
    if let Some(k) = m.iter().position(|e| e.d == f) {
        i_z = m[k].z;
        i_o = m[k].o;
        unwind(&mut m, k);
    }
    recurse(tree, hot, x, &mut m, i_z * r_h / r_j, i_o, f, phi);
    recurse(tree, cold, x, &mut m, i_z * r_c / r_j, 0.0, f, phi);
}

/// EXTEND: grow the path by one segment, updating the subset weights.
fn extend(m: &mut Vec<PathElement>, p_zero: f64, p_one: f64, p_index: usize) {
    let l = m.len();
    m.push(PathElement {
        d: p_index,
        z: p_zero,
        o: p_one,
        w: if l == 0 { 1.0 } else { 0.0 },
    });
    // 0-indexed translation of "for i ← l to 1".
    for i in (0..l).rev() {
        m[i + 1].w += p_one * m[i].w * (i + 1) as f64 / (l + 1) as f64;
        m[i].w = p_zero * m[i].w * (l - i) as f64 / (l + 1) as f64;
    }
}

/// UNWIND: remove path segment `i`, restoring the subset weights.
///
/// In the paper's 1-indexed notation `l` is the path *length*; here
/// `len = m.len()` plays that role and `last = len − 1` is the index
/// of the final element.
fn unwind(m: &mut Vec<PathElement>, i: usize) {
    let len = m.len() as f64;
    let last = m.len() - 1;
    let (o, z) = (m[i].o, m[i].z);
    let mut n = m[last].w;
    for j in (0..last).rev() {
        if o != 0.0 {
            let t = m[j].w;
            m[j].w = n * len / ((j + 1) as f64 * o);
            n = t - m[j].w * z * (last - j) as f64 / len;
        } else {
            m[j].w = m[j].w * len / (z * (last - j) as f64);
        }
    }
    for j in i..last {
        let next = m[j + 1];
        m[j].d = next.d;
        m[j].z = next.z;
        m[j].o = next.o;
    }
    m.pop();
}

/// Sum of the path weights after notionally unwinding segment `i`
/// (the quantity the leaf step needs), without mutating the path.
fn unwound_sum(m: &[PathElement], i: usize) -> f64 {
    let len = m.len() as f64;
    let last = m.len() - 1;
    let (o, z) = (m[i].o, m[i].z);
    let mut total = 0.0;
    let mut n = m[last].w;
    for j in (0..last).rev() {
        if o != 0.0 {
            let t = n * len / ((j + 1) as f64 * o);
            total += t;
            n = m[j].w - t * z * (last - j) as f64 / len;
        } else if z != 0.0 {
            total += m[j].w * len / (z * (last - j) as f64);
        }
    }
    total
}

/// SHAP values of a forest for one instance, on the raw-margin scale.
///
/// Returns `(phi, base)` where `phi[f]` is feature `f`'s contribution
/// and `base` is the cover-weighted expected raw prediction;
/// `base + Σ phi = predict_raw(x)` (local accuracy).
pub fn shap_values(forest: &Forest, x: &[f64]) -> (Vec<f64>, f64) {
    let mut phi = vec![0.0; forest.num_features];
    let mut base = forest.base_score;
    for tree in &forest.trees {
        let mut tree_phi = vec![0.0; forest.num_features];
        tree_shap(tree, x, &mut tree_phi);
        for (p, t) in phi.iter_mut().zip(&tree_phi) {
            *p += forest.scale * t;
        }
        base += forest.scale * cover_weighted_mean(tree, 0);
    }
    (phi, base)
}

/// SHAP values for a batch of instances (rows of `phi` per instance).
pub fn shap_values_batch(forest: &Forest, xs: &[Vec<f64>]) -> (Vec<Vec<f64>>, f64) {
    let base = expected_raw(forest);
    let phis = xs.iter().map(|x| shap_values(forest, x).0).collect();
    (phis, base)
}

/// Cover-weighted mean prediction of a subtree (the path-dependent
/// E[f(x)]).
fn cover_weighted_mean(tree: &Tree, idx: usize) -> f64 {
    let node = &tree.nodes[idx];
    if node.is_leaf() {
        return node.value;
    }
    let l = node.left as usize;
    let r = node.right as usize;
    let (cl, cr) = (tree.nodes[l].count as f64, tree.nodes[r].count as f64);
    let total = cl + cr;
    debug_assert!(total > 0.0);
    (cover_weighted_mean(tree, l) * cl + cover_weighted_mean(tree, r) * cr) / total
}

/// Path-dependent expected raw prediction of the whole forest.
pub fn expected_raw(forest: &Forest) -> f64 {
    forest.base_score
        + forest.scale
            * forest
                .trees
                .iter()
                .map(|t| cover_weighted_mean(t, 0))
                .sum::<f64>()
}

/// Algorithm 1 (EXPVALUE): conditional expectation of a tree with only
/// the features in `present` known, path-dependent weighting for the
/// rest. Exposed for testing and for the H-statistic cross-checks.
pub fn expected_value_subset(tree: &Tree, x: &[f64], present: &[bool]) -> f64 {
    fn g(tree: &Tree, idx: usize, x: &[f64], present: &[bool]) -> f64 {
        let node = &tree.nodes[idx];
        if node.is_leaf() {
            return node.value;
        }
        let f = node.feature as usize;
        let (l, r) = (node.left as usize, node.right as usize);
        if present[f] {
            if x[f] <= node.threshold {
                g(tree, l, x, present)
            } else {
                g(tree, r, x, present)
            }
        } else {
            let (cl, cr) = (tree.nodes[l].count as f64, tree.nodes[r].count as f64);
            (g(tree, l, x, present) * cl + g(tree, r, x, present) * cr) / (cl + cr)
        }
    }
    g(tree, 0, x, present)
}

/// Exponential-time Shapley values for one tree (test oracle; use only
/// for small feature counts).
pub fn brute_force_shap(tree: &Tree, x: &[f64], num_features: usize) -> Vec<f64> {
    assert!(num_features <= 20, "brute force is exponential");
    let mut phi = vec![0.0; num_features];
    let m = num_features;
    // Precompute factorials.
    let fact: Vec<f64> = (0..=m)
        .scan(1.0, |acc, k| {
            if k > 0 {
                *acc *= k as f64;
            }
            Some(*acc)
        })
        .collect();
    for i in 0..m {
        for mask in 0..(1u32 << m) {
            if mask & (1 << i) != 0 {
                continue;
            }
            let s = mask.count_ones() as usize;
            let weight = fact[s] * fact[m - s - 1] / fact[m];
            let mut present = vec![false; m];
            for (j, p) in present.iter_mut().enumerate() {
                *p = mask & (1 << j) != 0;
            }
            let without = expected_value_subset(tree, x, &present);
            present[i] = true;
            let with = expected_value_subset(tree, x, &present);
            phi[i] += weight * (with - without);
        }
    }
    phi
}

#[cfg(test)]
mod tests {
    use super::*;
    use gef_forest::tree::Node;
    use gef_forest::{GbdtParams, GbdtTrainer, Objective};

    fn training_forest(num_trees: usize, d: usize) -> (Forest, Vec<Vec<f64>>) {
        let mut state = 3u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let xs: Vec<Vec<f64>> = (0..800).map(|_| (0..d).map(|_| next()).collect()).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| x[0] * 3.0 + (x[1] * 5.0).sin() + x.get(2).map_or(0.0, |v| v * v))
            .collect();
        let f = GbdtTrainer::new(GbdtParams {
            num_trees,
            num_leaves: 12,
            learning_rate: 0.2,
            min_data_in_leaf: 5,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        (f, xs)
    }

    #[test]
    fn local_accuracy_single_tree() {
        let (forest, xs) = training_forest(1, 3);
        for x in xs.iter().take(30) {
            let (phi, base) = shap_values(&forest, x);
            let sum: f64 = phi.iter().sum();
            let pred = forest.predict_raw(x);
            assert!(
                (base + sum - pred).abs() < 1e-9,
                "local accuracy violated: {} vs {}",
                base + sum,
                pred
            );
        }
    }

    #[test]
    fn local_accuracy_full_forest() {
        let (forest, xs) = training_forest(40, 3);
        for x in xs.iter().take(10) {
            let (phi, base) = shap_values(&forest, x);
            let sum: f64 = phi.iter().sum();
            assert!((base + sum - forest.predict_raw(x)).abs() < 1e-8);
        }
    }

    #[test]
    fn matches_brute_force_on_trained_trees() {
        let (forest, xs) = training_forest(3, 3);
        for x in xs.iter().take(5) {
            for tree in &forest.trees {
                let fast = {
                    let mut phi = vec![0.0; 3];
                    tree_shap(tree, x, &mut phi);
                    phi
                };
                let slow = brute_force_shap(tree, x, 3);
                for (a, b) in fast.iter().zip(&slow) {
                    assert!((a - b).abs() < 1e-9, "fast={fast:?} slow={slow:?}");
                }
            }
        }
    }

    #[test]
    fn matches_brute_force_repeated_feature_path() {
        // A tree that tests the same feature twice along one path —
        // the case the UNWIND machinery exists for.
        let tree = Tree {
            nodes: vec![
                Node::split(0, 0.5, 1, 2, 1.0, 100),
                Node::split(0, 0.25, 3, 4, 1.0, 60),
                Node::split(1, 0.7, 5, 6, 1.0, 40),
                Node::leaf(1.0, 20),
                Node::leaf(2.0, 40),
                Node::leaf(-1.0, 25),
                Node::leaf(3.0, 15),
            ],
        };
        for x in [[0.1, 0.9], [0.3, 0.1], [0.9, 0.9], [0.6, 0.5]] {
            let mut fast = vec![0.0; 2];
            tree_shap(&tree, &x, &mut fast);
            let slow = brute_force_shap(&tree, &x, 2);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((a - b).abs() < 1e-9, "x={x:?} fast={fast:?} slow={slow:?}");
            }
        }
    }

    #[test]
    fn irrelevant_feature_gets_zero() {
        let (forest, xs) = training_forest(20, 4); // feature 3 unused by y
        let mut max_abs3 = 0.0f64;
        let mut max_abs0 = 0.0f64;
        for x in xs.iter().take(20) {
            let (phi, _) = shap_values(&forest, x);
            max_abs3 = max_abs3.max(phi[3].abs());
            max_abs0 = max_abs0.max(phi[0].abs());
        }
        assert!(
            max_abs3 < 0.15 * max_abs0,
            "noise feature attribution {max_abs3} vs signal {max_abs0}"
        );
    }

    #[test]
    fn base_value_is_cover_weighted_mean() {
        let tree = Tree {
            nodes: vec![
                Node::split(0, 0.0, 1, 2, 1.0, 10),
                Node::leaf(1.0, 4),
                Node::leaf(6.0, 6),
            ],
        };
        let forest = Forest::new(vec![tree], 0.5, 1.0, Objective::RegressionL2, 1);
        // E = 0.5 + (1*4 + 6*6)/10 = 0.5 + 4 = 4.5
        assert!((expected_raw(&forest) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn expected_value_subset_cases() {
        let tree = Tree {
            nodes: vec![
                Node::split(0, 0.5, 1, 2, 1.0, 10),
                Node::leaf(-1.0, 5),
                Node::leaf(1.0, 5),
            ],
        };
        // Feature present: follows the split.
        assert_eq!(expected_value_subset(&tree, &[0.2], &[true]), -1.0);
        assert_eq!(expected_value_subset(&tree, &[0.8], &[true]), 1.0);
        // Feature absent: cover average = 0.
        assert_eq!(expected_value_subset(&tree, &[0.2], &[false]), 0.0);
    }

    #[test]
    fn batch_matches_single() {
        let (forest, xs) = training_forest(10, 3);
        let batch: Vec<Vec<f64>> = xs[..5].to_vec();
        let (phis, base) = shap_values_batch(&forest, &batch);
        for (x, phi) in batch.iter().zip(&phis) {
            let (single, sbase) = shap_values(&forest, x);
            assert_eq!(phi, &single);
            assert!((base - sbase).abs() < 1e-12);
        }
    }

    #[test]
    fn local_accuracy_on_scaled_random_forest() {
        // RF forests average trees (scale = 1/T); SHAP must respect it.
        let mut state = 9u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let xs: Vec<Vec<f64>> = (0..300).map(|_| vec![next(), next()]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * 4.0 - x[1]).collect();
        let rf = gef_forest::RandomForestTrainer::new(gef_forest::RandomForestParams {
            num_trees: 12,
            max_depth: Some(6),
            min_samples_leaf: 3,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        assert!(rf.scale < 1.0);
        for x in xs.iter().take(10) {
            let (phi, base) = shap_values(&rf, x);
            let total = base + phi.iter().sum::<f64>();
            assert!((total - rf.predict_raw(x)).abs() < 1e-8);
        }
    }

    #[test]
    fn symmetry_for_symmetric_tree() {
        // f(x) = [x0 > .5] + [x1 > .5] with equal covers: by symmetry
        // phi_0 and phi_1 must be equal when x0 and x1 fall on the same
        // sides.
        let tree = Tree {
            nodes: vec![
                Node::split(0, 0.5, 1, 2, 1.0, 100),
                Node::split(1, 0.5, 3, 4, 1.0, 50),
                Node::split(1, 0.5, 5, 6, 1.0, 50),
                Node::leaf(0.0, 25),
                Node::leaf(1.0, 25),
                Node::leaf(1.0, 25),
                Node::leaf(2.0, 25),
            ],
        };
        let mut phi = vec![0.0; 2];
        tree_shap(&tree, &[0.9, 0.9], &mut phi);
        assert!((phi[0] - phi[1]).abs() < 1e-12, "phi={phi:?}");
        assert!((phi[0] - 0.5).abs() < 1e-12); // each contributes 0.5
    }
}
