//! Partial dependence and Individual Conditional Expectation curves.
//!
//! The SHAP partial-dependence panels of the paper's Figs. 9–10 are
//! scatter plots of per-instance SHAP values against feature values;
//! [`shap_dependence`] produces exactly that series. Classic
//! [`partial_dependence_1d`] / [`partial_dependence_2d`] (Friedman
//! 2001) and [`ice_curves`] (Goldstein et al. 2015) are provided as the
//! standard global-visualization baselines discussed in the related
//! work.

use crate::treeshap::shap_values;
use gef_forest::Forest;

/// 1-D partial dependence of `feature` at `grid` values, averaging the
/// forest's raw predictions over the `background` instances.
pub fn partial_dependence_1d(
    forest: &Forest,
    background: &[Vec<f64>],
    feature: usize,
    grid: &[f64],
) -> Vec<f64> {
    assert!(!background.is_empty(), "empty background");
    let mut buf = background.to_vec();
    grid.iter()
        .map(|&v| {
            for (row, orig) in buf.iter_mut().zip(background) {
                row.clone_from(orig);
                row[feature] = v;
            }
            buf.iter().map(|r| forest.predict_raw(r)).sum::<f64>() / buf.len() as f64
        })
        .collect()
}

/// 2-D partial dependence over `grid_a × grid_b` (row-major result).
pub fn partial_dependence_2d(
    forest: &Forest,
    background: &[Vec<f64>],
    features: (usize, usize),
    grid_a: &[f64],
    grid_b: &[f64],
) -> Vec<Vec<f64>> {
    assert!(!background.is_empty(), "empty background");
    let mut buf = background.to_vec();
    grid_a
        .iter()
        .map(|&a| {
            grid_b
                .iter()
                .map(|&b| {
                    for (row, orig) in buf.iter_mut().zip(background) {
                        row.clone_from(orig);
                        row[features.0] = a;
                        row[features.1] = b;
                    }
                    buf.iter().map(|r| forest.predict_raw(r)).sum::<f64>() / buf.len() as f64
                })
                .collect()
        })
        .collect()
}

/// ICE curves: one prediction series per background instance (rows) at
/// each grid value (columns).
pub fn ice_curves(
    forest: &Forest,
    background: &[Vec<f64>],
    feature: usize,
    grid: &[f64],
) -> Vec<Vec<f64>> {
    background
        .iter()
        .map(|orig| {
            let mut buf = orig.clone();
            grid.iter()
                .map(|&v| {
                    buf[feature] = v;
                    forest.predict_raw(&buf)
                })
                .collect()
        })
        .collect()
}

/// SHAP dependence series for one feature: `(feature value, SHAP value)`
/// per instance — the scatter the paper plots next to GEF's splines.
pub fn shap_dependence(forest: &Forest, instances: &[Vec<f64>], feature: usize) -> Vec<(f64, f64)> {
    instances
        .iter()
        .map(|x| {
            let (phi, _) = shap_values(forest, x);
            (x[feature], phi[feature])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gef_forest::{GbdtParams, GbdtTrainer};

    fn forest_and_data() -> (Forest, Vec<Vec<f64>>) {
        let mut state = 13u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let xs: Vec<Vec<f64>> = (0..900).map(|_| vec![next(), next()]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] + 0.5 * x[1]).collect();
        let f = GbdtTrainer::new(GbdtParams {
            num_trees: 60,
            num_leaves: 8,
            learning_rate: 0.2,
            min_data_in_leaf: 5,
            ..Default::default()
        })
        .fit(&xs, &ys)
        .unwrap();
        (f, xs)
    }

    #[test]
    fn pd_tracks_monotone_effect() {
        let (forest, xs) = forest_and_data();
        let grid = [0.1, 0.5, 0.9];
        let pd = partial_dependence_1d(&forest, &xs[..200], 0, &grid);
        assert!(pd[0] < pd[1] && pd[1] < pd[2], "pd={pd:?}");
        // Slope ≈ 3 per unit.
        assert!(((pd[2] - pd[0]) / 0.8 - 3.0).abs() < 0.5);
    }

    #[test]
    fn pd_2d_additive_function_is_additive() {
        let (forest, xs) = forest_and_data();
        let ga = [0.2, 0.8];
        let gb = [0.3, 0.7];
        let pd2 = partial_dependence_2d(&forest, &xs[..150], (0, 1), &ga, &gb);
        // For an additive function: pd2[a][b] + pd2[a'][b'] ≈
        // pd2[a][b'] + pd2[a'][b].
        let cross = (pd2[0][0] + pd2[1][1]) - (pd2[0][1] + pd2[1][0]);
        assert!(cross.abs() < 0.15, "cross={cross}");
    }

    #[test]
    fn ice_shape_and_mean_matches_pd() {
        let (forest, xs) = forest_and_data();
        let grid = [0.25, 0.75];
        let ice = ice_curves(&forest, &xs[..100], 0, &grid);
        assert_eq!(ice.len(), 100);
        assert_eq!(ice[0].len(), 2);
        let pd = partial_dependence_1d(&forest, &xs[..100], 0, &grid);
        for (g, &pdv) in grid.iter().enumerate() {
            let _ = g;
            let _ = pdv;
        }
        for (j, &pdv) in pd.iter().enumerate() {
            let mean: f64 = ice.iter().map(|c| c[j]).sum::<f64>() / ice.len() as f64;
            assert!((mean - pdv).abs() < 1e-9);
        }
    }

    #[test]
    fn shap_dependence_correlates_with_feature() {
        let (forest, xs) = forest_and_data();
        let dep = shap_dependence(&forest, &xs[..120], 0);
        let (vals, phis): (Vec<f64>, Vec<f64>) = dep.into_iter().unzip();
        let corr = gef_linalg::stats::pearson(&vals, &phis);
        assert!(corr > 0.95, "corr={corr}");
    }
}
