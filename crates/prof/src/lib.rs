//! # gef-prof
//!
//! Profiling front-end for the GEF workspace, on top of the recording
//! primitives in `gef-trace`:
//!
//! * **Timeline profiles** — re-exports [`gef_trace::timeline`] and adds
//!   the [`profile_run`] convenience: run a closure, then (only when
//!   `GEF_PROF` is on) export the merged per-thread timeline as a Chrome
//!   Trace Event Format JSON under `results/profiles/`. Load the file in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev) to see
//!   per-worker gantt tracks for every span and gef-par task.
//! * **Per-request fragments** — [`request_fragment`] slices the merged
//!   timeline down to one request's trace id (see [`gef_trace::ctx`]),
//!   which is how `gef-serve` answers `/explain?profile=1`.
//! * **Allocation tracking** (`alloc-track` feature) — `TrackingAlloc`,
//!   an instrumented global allocator wrapping [`std::alloc::System`]
//!   that feeds the [`gef_trace::mem`] counters. Binaries opt in with:
//!
//!   ```ignore
//!   #[global_allocator]
//!   static ALLOC: gef_prof::TrackingAlloc = gef_prof::TrackingAlloc;
//!   ```
//!
//!   Once installed, spans attribute allocation/byte deltas to their
//!   paths, `TelemetryReport` gains `mem.*` gauges, and profiled runs
//!   get a `heap.in_use_bytes` counter track in the chrome trace.
//!
//! Everything is opt-in and zero-cost when off: with `GEF_PROF` unset
//! and no tracking allocator installed, the workspace's outputs are
//! bit-identical to a build without this crate.

#![deny(missing_docs)]

pub use gef_trace::ctx;
pub use gef_trace::mem;
pub use gef_trace::timeline;

/// Whether timeline profiling is on (`GEF_PROF`; see
/// [`timeline::prof_enabled`]).
#[inline]
pub fn profiling() -> bool {
    timeline::prof_enabled()
}

/// The Chrome-trace fragment for one request: every timeline event
/// stamped with `trace` (see [`ctx`]), across all threads — the
/// per-request flame view behind `gef-serve`'s `/explain?profile=1`.
/// Returns `None` while profiling is off (nothing was recorded).
pub fn request_fragment(trace: u64) -> Option<String> {
    if !timeline::prof_enabled() {
        return None;
    }
    Some(timeline::chrome_trace_fragment(trace))
}

/// Run `f`, then — if profiling is on — export the recorded timeline
/// under `results/profiles/<label>.trace.json` and return its path.
///
/// The timeline is *not* reset first: in the common pattern (one
/// profiled run per process) the trace also shows pool start-up and
/// data preparation, which is usually what you want. Call
/// [`timeline::reset`] beforehand to scope the export to `f` alone.
pub fn profile_run<T>(label: &str, f: impl FnOnce() -> T) -> (T, Option<std::path::PathBuf>) {
    let out = f();
    let path = timeline::emit(label);
    (out, path)
}

#[cfg(feature = "alloc-track")]
mod alloc_track {
    use std::alloc::{GlobalAlloc, Layout, System};

    /// Instrumented global allocator: forwards to [`System`] and counts
    /// every allocation into [`gef_trace::mem`].
    ///
    /// Install per binary (see the crate docs). Overhead is a handful of
    /// relaxed atomic adds per alloc/dealloc — measurable on
    /// allocation-heavy hot loops, which is exactly what the counters
    /// are for; leave the feature off for production-timing runs.
    pub struct TrackingAlloc;

    // SAFETY: delegates every operation to System and only adds
    // allocation-free, lock-free counter updates around the calls.
    unsafe impl GlobalAlloc for TrackingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                gef_trace::mem::on_alloc(layout.size());
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc_zeroed(layout) };
            if !p.is_null() {
                gef_trace::mem::on_alloc(layout.size());
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) };
            gef_trace::mem::on_dealloc(layout.size());
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                // Count as free(old) + alloc(new) so byte totals and the
                // in-use gauge stay exact.
                gef_trace::mem::on_dealloc(layout.size());
                gef_trace::mem::on_alloc(new_size);
            }
            p
        }
    }
}

#[cfg(feature = "alloc-track")]
pub use alloc_track::TrackingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiling_resolves_without_panicking() {
        // Whatever GEF_PROF says, the gate must resolve to a bool and
        // profile_run must pass values through.
        let was = profiling();
        timeline::set_prof_enabled(false);
        let (v, path) = profile_run("gef_prof_unit", || 42);
        assert_eq!(v, 42);
        assert_eq!(path, None, "disabled profiling must not write");
        timeline::set_prof_enabled(was);
    }
}

// With alloc-track on, this test binary runs under the tracking
// allocator, exercising the full hook path end to end.
#[cfg(all(test, feature = "alloc-track"))]
mod alloc_tests {
    use super::*;

    #[global_allocator]
    static ALLOC: TrackingAlloc = TrackingAlloc;

    #[test]
    fn tracking_allocator_feeds_counters() {
        assert!(mem::tracking());
        let before = mem::stats();
        let v: Vec<u8> = Vec::with_capacity(1 << 20);
        let after = mem::stats();
        drop(v);
        assert!(after.allocs > before.allocs);
        assert!(after.bytes_allocated - before.bytes_allocated >= 1 << 20);
        assert!(after.peak_bytes >= after.in_use_bytes);
        let freed = mem::stats();
        assert!(freed.bytes_freed - before.bytes_freed >= 1 << 20);
    }
}
