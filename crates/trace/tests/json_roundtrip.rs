//! Property-based round-trip tests for the dependency-free JSON
//! support: any value tree emitted by [`gef_trace::json::JsonWriter`]
//! must [`gef_trace::json::validate`] and [`gef_trace::json::parse`]
//! back to a structurally equal [`gef_trace::json::JsonValue`].

use gef_trace::json::{number, parse, validate, JsonValue, JsonWriter};
use proptest::prelude::*;

/// Strategy over arbitrary JSON value trees: every scalar kind, strings
/// exercising the escape table (quotes, backslashes, control chars,
/// non-ASCII), and nested arrays/objects up to depth 4.
fn arb_json() -> impl Strategy<Value = JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        // Finite numbers only: JSON has no NaN/Infinity (see the
        // non-finite tests below for how the writer handles those).
        (-1e12f64..1e12).prop_map(JsonValue::Number),
        "[ -~\\t\\n\\r\\x01\\x19äß日]{0,12}".prop_map(JsonValue::String),
    ];
    leaf.prop_recursive(4, 32, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(JsonValue::Array),
            proptest::collection::vec(("[a-z\"\\\\]{0,6}", inner), 0..6)
                .prop_map(JsonValue::Object),
        ]
    })
}

/// Emit a value through the incremental writer, the only way production
/// code produces JSON.
fn write_value(w: &mut JsonWriter, v: &JsonValue) {
    match v {
        JsonValue::Null => w.value_raw("null"),
        JsonValue::Bool(b) => w.value_raw(if *b { "true" } else { "false" }),
        JsonValue::Number(n) => w.value_f64(*n),
        JsonValue::String(s) => w.value_str(s),
        JsonValue::Array(items) => {
            w.begin_array();
            for item in items {
                write_value(w, item);
            }
            w.end_array();
        }
        JsonValue::Object(pairs) => {
            w.begin_object();
            for (k, item) in pairs {
                w.key(k);
                write_value(w, item);
            }
            w.end_object();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn writer_output_parses_back_structurally_equal(v in arb_json()) {
        // Wrap in an object so every document has the report shape.
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("root");
        write_value(&mut w, &v);
        w.end_object();
        let doc = w.finish();
        prop_assert!(validate(&doc).is_ok(), "writer emitted invalid JSON: {doc}");
        let parsed = parse(&doc).unwrap();
        prop_assert_eq!(parsed.get("root"), Some(&v));
    }

    #[test]
    fn escaped_strings_round_trip(s in "[ -~\\x00-\\x1färß日𝄞]{0,40}") {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("s", &s);
        w.end_object();
        let doc = w.finish();
        prop_assert!(validate(&doc).is_ok());
        let parsed = parse(&doc).unwrap();
        prop_assert_eq!(
            parsed.get("s").and_then(JsonValue::as_str),
            Some(s.as_str())
        );
    }

    #[test]
    fn numbers_round_trip_exactly(
        n in proptest::num::f64::POSITIVE
            | proptest::num::f64::NEGATIVE
            | proptest::num::f64::NORMAL
            | proptest::num::f64::ZERO
            | proptest::num::f64::SUBNORMAL
    ) {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_f64("n", n);
        w.end_object();
        let parsed = parse(&w.finish()).unwrap();
        let back = parsed.get("n").and_then(JsonValue::as_f64).unwrap();
        prop_assert_eq!(back.to_bits(), n.to_bits(), "f64 must round-trip bit-exactly");
    }

    #[test]
    fn non_finite_numbers_become_null(sign in any::<bool>(), which in 0usize..2) {
        // JSON has no NaN/Infinity: the writer must emit null, never an
        // unparseable token.
        let v = match which {
            0 => f64::NAN,
            _ => f64::INFINITY,
        } * if sign { 1.0 } else { -1.0 };
        prop_assert_eq!(number(v), "null");
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_f64("n", v);
        w.end_object();
        let doc = w.finish();
        prop_assert!(validate(&doc).is_ok());
        let parsed = parse(&doc).unwrap();
        prop_assert_eq!(parsed.get("n"), Some(&JsonValue::Null));
    }

    #[test]
    fn deep_nesting_round_trips(depth in 1usize..24) {
        let mut v = JsonValue::Number(1.0);
        for _ in 0..depth {
            v = JsonValue::Array(vec![v]);
        }
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("deep");
        write_value(&mut w, &v);
        w.end_object();
        let parsed = parse(&w.finish()).unwrap();
        prop_assert_eq!(parsed.get("deep"), Some(&v));
    }
}
