//! Process-global run budget: wall-clock deadlines, iteration caps, and
//! a cooperative cancellation flag.
//!
//! This is the low-level primitive behind `gef_core::budget::RunBudget`.
//! It lives here (rather than in gef-core) for the same reason as
//! [`crate::fault`]: the crates that must *check* the budget — gef-gam's
//! PIRLS loop, gef-forest's boosting loop, gef-par's worker dispatch —
//! sit below gef-core in the dependency graph. Unlike the fault
//! registry, the budget is **always compiled**: `GEF_DEADLINE_MS` is a
//! production knob, not a test hook.
//!
//! # Model
//!
//! * A **hard deadline** bounds the whole run's wall-clock. Once it
//!   passes, [`hard_exceeded`] (and therefore [`cancel_requested`])
//!   turns true and every cooperative checkpoint in the workspace
//!   returns a typed `DeadlineExceeded` error instead of continuing —
//!   never a hang, never a panic.
//! * A **soft deadline** (earlier than the hard one) signals budget
//!   pressure without aborting: the GAM recovery ladder reacts to
//!   [`soft_exceeded`] by descending to a cheaper spec, recorded as a
//!   degradation.
//! * A **cancellation flag** ([`cancel`]/[`cancel_requested`]) lets a
//!   caller abort cooperatively without any deadline; gef-par workers
//!   poll it between task claims so a trip takes effect mid-region.
//! * **Iteration caps** (boosting rounds, PIRLS iterations) are lazy
//!   process-wide limits resolved from `GEF_MAX_BOOST_ROUNDS` /
//!   `GEF_MAX_PIRLS_ITERS` on first read, overridable in-process.
//!
//! All checks are relaxed atomic loads plus (when a deadline is armed) a
//! monotonic clock read, so unarmed runs stay bit-identical to builds
//! without any budget code on the hot path.
//!
//! The state is process-global, exactly like the telemetry registry and
//! the fault registry: concurrent runs share one budget, and tests that
//! arm it must serialise and [`reset`] on exit.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Sentinel for "no cap configured" in the lazy cap cells.
const CAP_UNRESOLVED: u64 = u64::MAX;

// Absolute deadlines in nanoseconds since `epoch()`; 0 = unarmed.
static HARD_DEADLINE_NS: AtomicU64 = AtomicU64::new(0);
static SOFT_DEADLINE_NS: AtomicU64 = AtomicU64::new(0);
static CANCELLED: AtomicBool = AtomicBool::new(false);
// Fast path: true iff a deadline is armed or a cancel was requested, so
// the common (unbudgeted) case is a single relaxed load and no clock read.
static ACTIVE: AtomicBool = AtomicBool::new(false);
// Transition latches so the flight recorder sees each trip exactly once
// per arm, not once per checkpoint poll after the deadline passed.
static TRIPPED_HARD: AtomicBool = AtomicBool::new(false);
static TRIPPED_SOFT: AtomicBool = AtomicBool::new(false);

// u64::MAX = unresolved (read env on first use); 0 = unlimited.
static BOOST_ROUND_CAP: AtomicU64 = AtomicU64::new(CAP_UNRESOLVED);
static PIRLS_ITER_CAP: AtomicU64 = AtomicU64::new(CAP_UNRESOLVED);

/// Process-wide monotonic time origin (first use wins).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn to_deadline_ns(from_now: Duration) -> u64 {
    // Offset by 1 so a zero-duration deadline still reads as armed
    // (0 is the unarmed sentinel).
    now_ns().saturating_add(from_now.as_nanos() as u64).max(1)
}

/// Arm wall-clock deadlines measured from now. `hard` bounds the run
/// ([`hard_exceeded`] / typed `DeadlineExceeded` errors); `soft`
/// signals budget pressure ([`soft_exceeded`] / ladder descent).
/// Passing `None` leaves that deadline unarmed. Clears any pending
/// cancellation from a previous run.
pub fn arm(hard: Option<Duration>, soft: Option<Duration>) {
    CANCELLED.store(false, Ordering::Relaxed);
    TRIPPED_HARD.store(false, Ordering::Relaxed);
    TRIPPED_SOFT.store(false, Ordering::Relaxed);
    HARD_DEADLINE_NS.store(hard.map_or(0, to_deadline_ns), Ordering::Relaxed);
    SOFT_DEADLINE_NS.store(soft.map_or(0, to_deadline_ns), Ordering::Relaxed);
    ACTIVE.store(hard.is_some() || soft.is_some(), Ordering::Relaxed);
}

/// Disarm both deadlines and clear the cancellation flag.
pub fn reset() {
    HARD_DEADLINE_NS.store(0, Ordering::Relaxed);
    SOFT_DEADLINE_NS.store(0, Ordering::Relaxed);
    CANCELLED.store(false, Ordering::Relaxed);
    TRIPPED_HARD.store(false, Ordering::Relaxed);
    TRIPPED_SOFT.store(false, Ordering::Relaxed);
    ACTIVE.store(false, Ordering::Relaxed);
}

/// Whether any deadline is armed or a cancellation is pending (one
/// relaxed load — the checkpoint fast path).
#[inline(always)]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Whether the hard deadline is armed and has passed.
///
/// The first poll that observes the trip leaves a [`Kind::Budget`]
/// record in the flight recorder (once per [`arm`]).
///
/// [`Kind::Budget`]: crate::recorder::Kind::Budget
#[inline]
pub fn hard_exceeded() -> bool {
    if !active() {
        return false;
    }
    let d = HARD_DEADLINE_NS.load(Ordering::Relaxed);
    let tripped = d != 0 && now_ns() >= d;
    if tripped && !TRIPPED_HARD.swap(true, Ordering::Relaxed) {
        crate::recorder::record(crate::recorder::Kind::Budget, "budget.hard_exceeded", &[]);
    }
    tripped
}

/// Whether the soft deadline is armed and has passed (budget pressure;
/// degrade, don't abort). First observation of the trip is recorded in
/// the flight recorder, like [`hard_exceeded`].
#[inline]
pub fn soft_exceeded() -> bool {
    if !active() {
        return false;
    }
    let d = SOFT_DEADLINE_NS.load(Ordering::Relaxed);
    let tripped = d != 0 && now_ns() >= d;
    if tripped && !TRIPPED_SOFT.swap(true, Ordering::Relaxed) {
        crate::recorder::record(crate::recorder::Kind::Budget, "budget.soft_exceeded", &[]);
    }
    tripped
}

/// Whether the hard deadline has been observed tripped since the last
/// [`arm`]/[`reset`] (no clock read; incident dumps report this).
pub fn hard_tripped() -> bool {
    TRIPPED_HARD.load(Ordering::Relaxed)
}

/// Whether the soft deadline has been observed tripped since the last
/// [`arm`]/[`reset`] (no clock read; incident dumps and provenance
/// blocks report this).
pub fn soft_tripped() -> bool {
    TRIPPED_SOFT.load(Ordering::Relaxed)
}

/// Request cooperative cancellation: every [`cancel_requested`] poll —
/// including gef-par's between-task checks — turns true until [`reset`]
/// or the next [`arm`].
pub fn cancel() {
    CANCELLED.store(true, Ordering::Relaxed);
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Whether work should stop now: an explicit [`cancel`] or a passed
/// hard deadline. This is the poll gef-par workers issue between task
/// claims, so a deadline fires mid-region.
#[inline]
pub fn cancel_requested() -> bool {
    if !active() {
        return false;
    }
    CANCELLED.load(Ordering::Relaxed) || hard_exceeded()
}

/// Milliseconds left until the hard deadline (`None` when unarmed,
/// `Some(0)` once passed).
pub fn remaining_ms() -> Option<u64> {
    let d = HARD_DEADLINE_NS.load(Ordering::Relaxed);
    if d == 0 {
        return None;
    }
    Some(d.saturating_sub(now_ns()) / 1_000_000)
}

fn cap_from_env(var: &str) -> u64 {
    let Ok(raw) = std::env::var(var) else {
        return 0;
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return 0;
    }
    match trimmed.parse::<u64>() {
        Ok(n) => n,
        Err(_) => {
            // Same contract as GEF_THREADS in gef-par: never silently
            // ignore a malformed knob — warn on stderr with the raw
            // value and leave a trace event. Telemetry events carry
            // numeric fields only, so the raw text additionally goes
            // into the flight recorder as a free-text note (and from
            // there into any incident dump).
            eprintln!("gef-trace: invalid {var} value {raw:?}; ignoring it (no cap)");
            crate::recorder::note(
                crate::recorder::Kind::Event,
                "budget.invalid_env",
                &format!("{var}={raw:?}"),
            );
            crate::global().event(
                "budget.invalid_env",
                &[("parsed", -1.0), ("raw_len", raw.len() as f64)],
            );
            0
        }
    }
}

fn resolve_cap(cell: &AtomicU64, var: &str) -> u64 {
    match cell.load(Ordering::Relaxed) {
        CAP_UNRESOLVED => {
            let n = cap_from_env(var).min(CAP_UNRESOLVED - 1);
            cell.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

/// Boosting-round cap (`GEF_MAX_BOOST_ROUNDS`, resolved on first call);
/// 0 = unlimited. Forest trainers clamp their round count to this.
pub fn boost_round_cap() -> u64 {
    resolve_cap(&BOOST_ROUND_CAP, "GEF_MAX_BOOST_ROUNDS")
}

/// Override the boosting-round cap in-process (0 = unlimited).
pub fn set_boost_round_cap(n: u64) {
    BOOST_ROUND_CAP.store(n.min(CAP_UNRESOLVED - 1), Ordering::Relaxed);
}

/// PIRLS-iteration cap (`GEF_MAX_PIRLS_ITERS`, resolved on first call);
/// 0 = unlimited. The PIRLS loop clamps `max_pirls_iter` to this.
pub fn pirls_iter_cap() -> u64 {
    resolve_cap(&PIRLS_ITER_CAP, "GEF_MAX_PIRLS_ITERS")
}

/// Override the PIRLS-iteration cap in-process (0 = unlimited).
pub fn set_pirls_iter_cap(n: u64) {
    PIRLS_ITER_CAP.store(n.min(CAP_UNRESOLVED - 1), Ordering::Relaxed);
}

/// RAII guard that [`reset`]s the budget on drop. [`scoped`] is the
/// intended way for a pipeline run to arm deadlines.
#[must_use = "the budget disarms when this guard drops"]
pub struct BudgetGuard {
    _private: (),
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        reset();
    }
}

/// Arm deadlines for the duration of a scope: the returned guard
/// disarms everything (and clears any cancellation) when dropped.
pub fn scoped(hard: Option<Duration>, soft: Option<Duration>) -> BudgetGuard {
    arm(hard, soft);
    BudgetGuard { _private: () }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // Budget state is process-global; tests serialise and reset.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked<T>(f: impl FnOnce() -> T) -> T {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        let out = f();
        reset();
        out
    }

    #[test]
    fn unarmed_budget_never_trips() {
        locked(|| {
            assert!(!active());
            assert!(!hard_exceeded());
            assert!(!soft_exceeded());
            assert!(!cancel_requested());
            assert_eq!(remaining_ms(), None);
        });
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        locked(|| {
            let _guard = scoped(Some(Duration::ZERO), None);
            assert!(active());
            assert!(hard_exceeded());
            assert!(cancel_requested());
            assert!(!soft_exceeded(), "soft left unarmed");
            assert_eq!(remaining_ms(), Some(0));
        });
        assert!(!active(), "guard drop disarms");
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        locked(|| {
            let _guard = scoped(Some(Duration::from_secs(3600)), Some(Duration::ZERO));
            assert!(!hard_exceeded());
            assert!(soft_exceeded(), "soft deadline trips independently");
            assert!(!cancel_requested(), "soft pressure is not cancellation");
            assert!(remaining_ms().unwrap() > 3_000_000);
        });
    }

    #[test]
    fn cancel_flag_requests_stop_without_deadline() {
        locked(|| {
            cancel();
            assert!(cancel_requested());
            assert!(!hard_exceeded());
            reset();
            assert!(!cancel_requested());
        });
    }

    #[test]
    fn rearming_clears_previous_cancellation() {
        locked(|| {
            cancel();
            arm(Some(Duration::from_secs(3600)), None);
            assert!(!cancel_requested());
        });
    }

    #[test]
    fn trip_latches_set_on_observation_and_clear_on_rearm() {
        locked(|| {
            assert!(!hard_tripped() && !soft_tripped());
            arm(Some(Duration::ZERO), Some(Duration::ZERO));
            assert!(hard_exceeded() && soft_exceeded());
            assert!(hard_tripped() && soft_tripped());
            arm(Some(Duration::from_secs(3600)), None);
            assert!(!hard_tripped() && !soft_tripped());
            reset();
            assert!(!hard_tripped() && !soft_tripped());
        });
    }

    #[test]
    fn caps_are_overridable() {
        locked(|| {
            set_boost_round_cap(7);
            assert_eq!(boost_round_cap(), 7);
            set_pirls_iter_cap(3);
            assert_eq!(pirls_iter_cap(), 3);
            set_boost_round_cap(0);
            set_pirls_iter_cap(0);
            assert_eq!(boost_round_cap(), 0);
            assert_eq!(pirls_iter_cap(), 0);
        });
    }
}
