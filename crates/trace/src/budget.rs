//! Run budgets: wall-clock deadlines, iteration caps, and a cooperative
//! cancellation flag — **scoped per handle**, with a process-global
//! compatibility shim.
//!
//! This is the low-level primitive behind `gef_core::budget::RunBudget`.
//! It lives here (rather than in gef-core) for the same reason as
//! [`crate::fault`]: the crates that must *check* the budget — gef-gam's
//! PIRLS loop, gef-forest's boosting loop, gef-par's worker dispatch —
//! sit below gef-core in the dependency graph. Unlike the fault
//! registry, the budget is **always compiled**: `GEF_DEADLINE_MS` is a
//! production knob, not a test hook.
//!
//! # Model
//!
//! A [`Budget`] is a cheaply clonable handle to one run's limits:
//!
//! * A **hard deadline** bounds the run's wall-clock. Once it passes,
//!   [`Budget::hard_exceeded`] (and therefore
//!   [`Budget::cancel_requested`]) turns true and every cooperative
//!   checkpoint in the workspace returns a typed `DeadlineExceeded`
//!   error instead of continuing — never a hang, never a panic.
//! * A **soft deadline** (earlier than the hard one) signals budget
//!   pressure without aborting: the GAM recovery ladder reacts to
//!   [`Budget::soft_exceeded`] by descending to a cheaper spec,
//!   recorded as a degradation.
//! * A **cancellation flag** lets a caller abort cooperatively without
//!   any deadline; gef-par workers poll it between task claims so a
//!   trip takes effect mid-region.
//! * **Iteration caps** (boosting rounds, PIRLS iterations). A handle
//!   that never set a cap *inherits* the process-wide caps resolved
//!   lazily from `GEF_MAX_BOOST_ROUNDS` / `GEF_MAX_PIRLS_ITERS`.
//!
//! # Scoping
//!
//! The workspace's cooperative checkpoints are module-level functions
//! ([`hard_exceeded`], [`soft_exceeded`], [`cancel_requested`], …)
//! called from deep inside the GAM/forest/parallel layers, far from any
//! place a handle could be threaded through. They resolve the **current
//! budget** of the calling thread:
//!
//! 1. the innermost [`Budget`] installed on this thread via
//!    [`Budget::enter`] (a thread-local scope stack), else
//! 2. the **process-global budget** — the pre-scoping behaviour, kept
//!    as a compatibility shim behind the module-level [`arm`]/[`reset`]/
//!    [`scoped`] functions that the `xp_*` binaries drive.
//!
//! Concurrent runs therefore stop sharing one deadline the moment each
//! of them enters its own handle: `gef-serve` enters a fresh `Budget`
//! per request, and gef-par propagates the dispatching thread's current
//! budget onto its pool workers so a region's tasks observe the same
//! deadline as the coordinator that launched it.
//!
//! All checks are relaxed atomic loads plus (when a deadline is armed) a
//! monotonic clock read, so unarmed runs stay bit-identical to builds
//! without any budget code on the hot path.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Sentinel for "no cap configured" in the lazy cap cells.
const CAP_UNRESOLVED: u64 = u64::MAX;

/// Process-wide monotonic time origin (first use wins).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn to_deadline_ns(from_now: Duration) -> u64 {
    // Offset by 1 so a zero-duration deadline still reads as armed
    // (0 is the unarmed sentinel).
    now_ns().saturating_add(from_now.as_nanos() as u64).max(1)
}

/// Shared state behind one [`Budget`] handle.
struct State {
    // Absolute deadlines in nanoseconds since `epoch()`; 0 = unarmed.
    hard_deadline_ns: AtomicU64,
    soft_deadline_ns: AtomicU64,
    cancelled: AtomicBool,
    // Fast path: true iff a deadline is armed or a cancel was requested,
    // so the common (unbudgeted) case is a single relaxed load and no
    // clock read.
    active: AtomicBool,
    // Transition latches so the flight recorder sees each trip exactly
    // once per arm, not once per checkpoint poll after the deadline
    // passed.
    tripped_hard: AtomicBool,
    tripped_soft: AtomicBool,
    // u64::MAX = unset: inherit the process-wide (env-resolved) cap.
    boost_round_cap: AtomicU64,
    pirls_iter_cap: AtomicU64,
}

impl State {
    const fn unarmed() -> State {
        State {
            hard_deadline_ns: AtomicU64::new(0),
            soft_deadline_ns: AtomicU64::new(0),
            cancelled: AtomicBool::new(false),
            active: AtomicBool::new(false),
            tripped_hard: AtomicBool::new(false),
            tripped_soft: AtomicBool::new(false),
            boost_round_cap: AtomicU64::new(CAP_UNRESOLVED),
            pirls_iter_cap: AtomicU64::new(CAP_UNRESOLVED),
        }
    }
}

/// A clonable handle to one run's wall-clock deadlines, iteration caps,
/// and cancellation flag. Clones share state — arm/cancel through any
/// clone and every holder (including gef-par workers the handle was
/// propagated to) observes it.
#[derive(Clone)]
pub struct Budget {
    state: Arc<State>,
}

impl std::fmt::Debug for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Budget")
            .field("active", &self.active())
            .field("remaining_ms", &self.remaining_ms())
            .finish()
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unarmed()
    }
}

impl Budget {
    /// A fresh, unarmed budget (nothing trips, caps inherited from the
    /// process-wide env caps).
    pub fn unarmed() -> Budget {
        Budget {
            state: Arc::new(State::unarmed()),
        }
    }

    /// A fresh budget with deadlines armed from now (see [`Budget::arm`]).
    pub fn armed(hard: Option<Duration>, soft: Option<Duration>) -> Budget {
        let b = Budget::unarmed();
        b.arm(hard, soft);
        b
    }

    /// Arm wall-clock deadlines measured from now. `hard` bounds the
    /// run ([`Budget::hard_exceeded`] / typed `DeadlineExceeded`
    /// errors); `soft` signals budget pressure ([`Budget::soft_exceeded`]
    /// / ladder descent). Passing `None` leaves that deadline unarmed.
    /// Clears any pending cancellation and trip latches.
    pub fn arm(&self, hard: Option<Duration>, soft: Option<Duration>) {
        let s = &self.state;
        s.cancelled.store(false, Ordering::Relaxed);
        s.tripped_hard.store(false, Ordering::Relaxed);
        s.tripped_soft.store(false, Ordering::Relaxed);
        s.hard_deadline_ns
            .store(hard.map_or(0, to_deadline_ns), Ordering::Relaxed);
        s.soft_deadline_ns
            .store(soft.map_or(0, to_deadline_ns), Ordering::Relaxed);
        s.active
            .store(hard.is_some() || soft.is_some(), Ordering::Relaxed);
    }

    /// Disarm both deadlines and clear the cancellation flag and trip
    /// latches. Caps are left as set (they are configuration, not
    /// per-arm state).
    pub fn reset(&self) {
        let s = &self.state;
        s.hard_deadline_ns.store(0, Ordering::Relaxed);
        s.soft_deadline_ns.store(0, Ordering::Relaxed);
        s.cancelled.store(false, Ordering::Relaxed);
        s.tripped_hard.store(false, Ordering::Relaxed);
        s.tripped_soft.store(false, Ordering::Relaxed);
        s.active.store(false, Ordering::Relaxed);
    }

    /// Whether any deadline is armed or a cancellation is pending (one
    /// relaxed load — the checkpoint fast path).
    #[inline(always)]
    pub fn active(&self) -> bool {
        self.state.active.load(Ordering::Relaxed)
    }

    /// Whether the hard deadline is armed and has passed.
    ///
    /// The first poll that observes the trip leaves a [`Kind::Budget`]
    /// record in the flight recorder (once per [`Budget::arm`]).
    ///
    /// [`Kind::Budget`]: crate::recorder::Kind::Budget
    #[inline]
    pub fn hard_exceeded(&self) -> bool {
        if !self.active() {
            return false;
        }
        let d = self.state.hard_deadline_ns.load(Ordering::Relaxed);
        let tripped = d != 0 && now_ns() >= d;
        if tripped && !self.state.tripped_hard.swap(true, Ordering::Relaxed) {
            crate::recorder::record(crate::recorder::Kind::Budget, "budget.hard_exceeded", &[]);
        }
        tripped
    }

    /// Whether the soft deadline is armed and has passed (budget
    /// pressure; degrade, don't abort). First observation of the trip
    /// is recorded in the flight recorder, like [`Budget::hard_exceeded`].
    #[inline]
    pub fn soft_exceeded(&self) -> bool {
        if !self.active() {
            return false;
        }
        let d = self.state.soft_deadline_ns.load(Ordering::Relaxed);
        let tripped = d != 0 && now_ns() >= d;
        if tripped && !self.state.tripped_soft.swap(true, Ordering::Relaxed) {
            crate::recorder::record(crate::recorder::Kind::Budget, "budget.soft_exceeded", &[]);
        }
        tripped
    }

    /// Whether the hard deadline has been observed tripped since the
    /// last [`Budget::arm`]/[`Budget::reset`] (no clock read; incident
    /// dumps report this).
    pub fn hard_tripped(&self) -> bool {
        self.state.tripped_hard.load(Ordering::Relaxed)
    }

    /// Whether the soft deadline has been observed tripped since the
    /// last [`Budget::arm`]/[`Budget::reset`].
    pub fn soft_tripped(&self) -> bool {
        self.state.tripped_soft.load(Ordering::Relaxed)
    }

    /// Request cooperative cancellation: every
    /// [`Budget::cancel_requested`] poll — including gef-par's
    /// between-task checks — turns true until [`Budget::reset`] or the
    /// next [`Budget::arm`].
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Relaxed);
        self.state.active.store(true, Ordering::Relaxed);
    }

    /// Whether work should stop now: an explicit [`Budget::cancel`] or
    /// a passed hard deadline. This is the poll gef-par workers issue
    /// between task claims, so a deadline fires mid-region.
    #[inline]
    pub fn cancel_requested(&self) -> bool {
        if !self.active() {
            return false;
        }
        self.state.cancelled.load(Ordering::Relaxed) || self.hard_exceeded()
    }

    /// Milliseconds left until the hard deadline (`None` when unarmed,
    /// `Some(0)` once passed).
    pub fn remaining_ms(&self) -> Option<u64> {
        let d = self.state.hard_deadline_ns.load(Ordering::Relaxed);
        if d == 0 {
            return None;
        }
        Some(d.saturating_sub(now_ns()) / 1_000_000)
    }

    /// This budget's boosting-round cap (0 = unlimited). A handle that
    /// never set one inherits the process-wide `GEF_MAX_BOOST_ROUNDS`
    /// cap.
    pub fn boost_round_cap(&self) -> u64 {
        match self.state.boost_round_cap.load(Ordering::Relaxed) {
            CAP_UNRESOLVED => {
                if self.is_global() {
                    resolve_cap(&self.state.boost_round_cap, "GEF_MAX_BOOST_ROUNDS")
                } else {
                    global_budget().boost_round_cap()
                }
            }
            n => n,
        }
    }

    /// Set this budget's boosting-round cap (0 = unlimited).
    pub fn set_boost_round_cap(&self, n: u64) {
        self.state
            .boost_round_cap
            .store(n.min(CAP_UNRESOLVED - 1), Ordering::Relaxed);
    }

    /// This budget's PIRLS-iteration cap (0 = unlimited); inherits the
    /// process-wide `GEF_MAX_PIRLS_ITERS` cap when unset.
    pub fn pirls_iter_cap(&self) -> u64 {
        match self.state.pirls_iter_cap.load(Ordering::Relaxed) {
            CAP_UNRESOLVED => {
                if self.is_global() {
                    resolve_cap(&self.state.pirls_iter_cap, "GEF_MAX_PIRLS_ITERS")
                } else {
                    global_budget().pirls_iter_cap()
                }
            }
            n => n,
        }
    }

    /// Set this budget's PIRLS-iteration cap (0 = unlimited).
    pub fn set_pirls_iter_cap(&self, n: u64) {
        self.state
            .pirls_iter_cap
            .store(n.min(CAP_UNRESOLVED - 1), Ordering::Relaxed);
    }

    /// Install this budget as the calling thread's **current** budget
    /// for the returned guard's lifetime. Every module-level checkpoint
    /// ([`hard_exceeded`] & co.) on this thread — and on gef-par
    /// workers running regions dispatched from it — resolves to this
    /// handle instead of the process-global budget. Scopes nest
    /// (innermost wins) and must drop on the entering thread.
    #[must_use = "the budget leaves scope when this guard drops"]
    pub fn enter(&self) -> BudgetScope {
        CURRENT.with(|c| c.borrow_mut().push(self.clone()));
        BudgetScope {
            _not_send: PhantomData,
        }
    }

    fn is_global(&self) -> bool {
        Arc::ptr_eq(&self.state, &global_budget().state)
    }
}

thread_local! {
    /// Stack of budgets entered on this thread (innermost last).
    static CURRENT: RefCell<Vec<Budget>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`Budget::enter`]; pops the thread's scope
/// stack on drop. Deliberately `!Send`: the scope belongs to the
/// entering thread.
#[must_use = "the budget leaves scope when this guard drops"]
pub struct BudgetScope {
    _not_send: PhantomData<*const ()>,
}

impl Drop for BudgetScope {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// The process-global budget — the pre-scoping compatibility target of
/// the module-level [`arm`]/[`reset`]/[`scoped`] shims, and the
/// fallback every checkpoint resolves to on threads with no entered
/// scope.
fn global_budget() -> &'static Budget {
    static GLOBAL: OnceLock<Budget> = OnceLock::new();
    GLOBAL.get_or_init(Budget::unarmed)
}

/// Run `f` against the calling thread's current budget: the innermost
/// [`Budget::enter`] scope, else the process-global budget.
#[inline]
fn with_current<T>(f: impl FnOnce(&Budget) -> T) -> T {
    CURRENT.with(|c| match c.borrow().last() {
        Some(b) => f(b),
        None => f(global_budget()),
    })
}

/// A clone of the calling thread's current budget (innermost entered
/// scope, else the process-global budget). gef-par captures this at
/// dispatch time to propagate the coordinator's budget onto pool
/// workers.
pub fn current() -> Budget {
    with_current(|b| b.clone())
}

/// Whether any deadline is armed or a cancellation is pending on the
/// current budget (the checkpoint fast path).
#[inline(always)]
pub fn active() -> bool {
    with_current(|b| b.active())
}

/// Whether the current budget's hard deadline is armed and has passed.
#[inline]
pub fn hard_exceeded() -> bool {
    with_current(|b| b.hard_exceeded())
}

/// Whether the current budget's soft deadline is armed and has passed
/// (budget pressure; degrade, don't abort).
#[inline]
pub fn soft_exceeded() -> bool {
    with_current(|b| b.soft_exceeded())
}

/// Whether the current budget's hard deadline has been observed tripped
/// since its last arm/reset (no clock read).
pub fn hard_tripped() -> bool {
    with_current(|b| b.hard_tripped())
}

/// Whether the current budget's soft deadline has been observed tripped
/// since its last arm/reset.
pub fn soft_tripped() -> bool {
    with_current(|b| b.soft_tripped())
}

/// Whether work on the current budget should stop now (explicit cancel
/// or passed hard deadline). This is the poll gef-par workers issue
/// between task claims.
#[inline]
pub fn cancel_requested() -> bool {
    with_current(|b| b.cancel_requested())
}

/// Milliseconds left until the current budget's hard deadline (`None`
/// when unarmed, `Some(0)` once passed).
pub fn remaining_ms() -> Option<u64> {
    with_current(|b| b.remaining_ms())
}

/// Boosting-round cap of the current budget (0 = unlimited; inherits
/// `GEF_MAX_BOOST_ROUNDS`). Forest trainers clamp their round count to
/// this.
pub fn boost_round_cap() -> u64 {
    with_current(|b| b.boost_round_cap())
}

/// PIRLS-iteration cap of the current budget (0 = unlimited; inherits
/// `GEF_MAX_PIRLS_ITERS`). The PIRLS loop clamps `max_pirls_iter` to
/// this.
pub fn pirls_iter_cap() -> u64 {
    with_current(|b| b.pirls_iter_cap())
}

fn cap_from_env(var: &str) -> u64 {
    // Same contract as every GEF_* knob: never silently ignore a
    // malformed value — crate::env warns once on stderr with the raw
    // value and leaves an `env.invalid` flight-recorder note (and from
    // there it reaches any incident dump).
    crate::env::u64_var(var).unwrap_or(0)
}

fn resolve_cap(cell: &AtomicU64, var: &str) -> u64 {
    match cell.load(Ordering::Relaxed) {
        CAP_UNRESOLVED => {
            let n = cap_from_env(var).min(CAP_UNRESOLVED - 1);
            cell.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

// ---------------------------------------------------------------------
// Process-global compatibility shim (pre-scoping API). These operate on
// the global budget only; threads inside a `Budget::enter` scope do not
// observe them. The xp_* binaries and older tests drive this surface.
// ---------------------------------------------------------------------

/// Arm the **process-global** budget's deadlines measured from now
/// (compatibility shim; scoped runs use [`Budget::arm`] +
/// [`Budget::enter`]).
pub fn arm(hard: Option<Duration>, soft: Option<Duration>) {
    global_budget().arm(hard, soft);
}

/// Disarm the **process-global** budget and clear its cancellation
/// flag.
pub fn reset() {
    global_budget().reset();
}

/// Request cooperative cancellation on the **process-global** budget.
pub fn cancel() {
    global_budget().cancel();
}

/// Override the **process-global** boosting-round cap (0 = unlimited).
pub fn set_boost_round_cap(n: u64) {
    global_budget().set_boost_round_cap(n);
}

/// Override the **process-global** PIRLS-iteration cap (0 = unlimited).
pub fn set_pirls_iter_cap(n: u64) {
    global_budget().set_pirls_iter_cap(n);
}

/// RAII guard that [`reset`]s the process-global budget on drop.
/// [`scoped`] is the compatibility path for arming it around one run.
#[must_use = "the budget disarms when this guard drops"]
pub struct BudgetGuard {
    _private: (),
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        reset();
    }
}

/// Arm the **process-global** budget for the duration of a scope: the
/// returned guard disarms everything (and clears any cancellation)
/// when dropped. Concurrent runs share this one budget — a per-request
/// server must use [`Budget::enter`] instead.
pub fn scoped(hard: Option<Duration>, soft: Option<Duration>) -> BudgetGuard {
    arm(hard, soft);
    BudgetGuard { _private: () }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The global budget is process-wide; tests serialise and reset.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked<T>(f: impl FnOnce() -> T) -> T {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        let out = f();
        reset();
        out
    }

    #[test]
    fn unarmed_budget_never_trips() {
        locked(|| {
            assert!(!active());
            assert!(!hard_exceeded());
            assert!(!soft_exceeded());
            assert!(!cancel_requested());
            assert_eq!(remaining_ms(), None);
        });
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        locked(|| {
            let _guard = scoped(Some(Duration::ZERO), None);
            assert!(active());
            assert!(hard_exceeded());
            assert!(cancel_requested());
            assert!(!soft_exceeded(), "soft left unarmed");
            assert_eq!(remaining_ms(), Some(0));
        });
        assert!(!active(), "guard drop disarms");
    }

    #[test]
    fn generous_deadline_does_not_trip() {
        locked(|| {
            let _guard = scoped(Some(Duration::from_secs(3600)), Some(Duration::ZERO));
            assert!(!hard_exceeded());
            assert!(soft_exceeded(), "soft deadline trips independently");
            assert!(!cancel_requested(), "soft pressure is not cancellation");
            assert!(remaining_ms().unwrap() > 3_000_000);
        });
    }

    #[test]
    fn cancel_flag_requests_stop_without_deadline() {
        locked(|| {
            cancel();
            assert!(cancel_requested());
            assert!(!hard_exceeded());
            reset();
            assert!(!cancel_requested());
        });
    }

    #[test]
    fn rearming_clears_previous_cancellation() {
        locked(|| {
            cancel();
            arm(Some(Duration::from_secs(3600)), None);
            assert!(!cancel_requested());
        });
    }

    #[test]
    fn trip_latches_set_on_observation_and_clear_on_rearm() {
        locked(|| {
            assert!(!hard_tripped() && !soft_tripped());
            arm(Some(Duration::ZERO), Some(Duration::ZERO));
            assert!(hard_exceeded() && soft_exceeded());
            assert!(hard_tripped() && soft_tripped());
            arm(Some(Duration::from_secs(3600)), None);
            assert!(!hard_tripped() && !soft_tripped());
            reset();
            assert!(!hard_tripped() && !soft_tripped());
        });
    }

    #[test]
    fn caps_are_overridable() {
        locked(|| {
            set_boost_round_cap(7);
            assert_eq!(boost_round_cap(), 7);
            set_pirls_iter_cap(3);
            assert_eq!(pirls_iter_cap(), 3);
            set_boost_round_cap(0);
            set_pirls_iter_cap(0);
            assert_eq!(boost_round_cap(), 0);
            assert_eq!(pirls_iter_cap(), 0);
        });
    }

    #[test]
    fn entered_scope_shadows_the_global_budget() {
        locked(|| {
            // Global armed with an expired deadline…
            arm(Some(Duration::ZERO), None);
            assert!(hard_exceeded());
            // …but a thread inside a generous scoped budget is clean.
            let b = Budget::armed(Some(Duration::from_secs(3600)), None);
            {
                let _scope = b.enter();
                assert!(active());
                assert!(!hard_exceeded(), "scope shadows the tripped global");
                assert!(!cancel_requested());
                assert!(remaining_ms().unwrap() > 3_000_000);
            }
            // Scope dropped: the tripped global is visible again.
            assert!(hard_exceeded());
        });
    }

    #[test]
    fn scopes_nest_innermost_wins() {
        locked(|| {
            let outer = Budget::armed(Some(Duration::from_secs(3600)), None);
            let inner = Budget::armed(Some(Duration::ZERO), None);
            let _o = outer.enter();
            assert!(!hard_exceeded());
            {
                let _i = inner.enter();
                assert!(hard_exceeded(), "innermost budget wins");
            }
            assert!(!hard_exceeded(), "outer budget restored");
        });
    }

    #[test]
    fn concurrent_threads_hold_independent_deadlines() {
        locked(|| {
            let tight = Budget::armed(Some(Duration::ZERO), None);
            let roomy = Budget::armed(Some(Duration::from_secs(3600)), None);
            let t1 = std::thread::spawn(move || {
                let _s = tight.enter();
                hard_exceeded()
            });
            let t2 = std::thread::spawn(move || {
                let _s = roomy.enter();
                hard_exceeded()
            });
            assert!(t1.join().unwrap(), "tight thread must trip");
            assert!(!t2.join().unwrap(), "roomy thread must not trip");
        });
    }

    #[test]
    fn clones_share_state_for_cross_thread_cancel() {
        locked(|| {
            let b = Budget::unarmed();
            let remote = b.clone();
            assert!(!b.cancel_requested());
            remote.cancel();
            assert!(b.cancel_requested(), "cancel through a clone is seen");
            b.reset();
            assert!(!remote.cancel_requested());
        });
    }

    #[test]
    fn scoped_caps_inherit_global_until_set() {
        locked(|| {
            set_boost_round_cap(11);
            let b = Budget::unarmed();
            assert_eq!(b.boost_round_cap(), 11, "unset handle cap inherits");
            b.set_boost_round_cap(3);
            assert_eq!(b.boost_round_cap(), 3, "own cap wins once set");
            {
                let _s = b.enter();
                assert_eq!(boost_round_cap(), 3);
            }
            set_boost_round_cap(0);
        });
    }
}
