//! Request-scoped trace context: a thread-local stack of trace ids.
//!
//! A trace id is a nonzero `u64`, conventionally rendered as 16 hex
//! digits (the [`crate::hash::to_hex`] form). The serve layer mints one
//! per request (or honors a client-supplied `X-Gef-Trace-Id`), enters
//! it on the worker thread handling the request, and every telemetry
//! sink that runs under that scope — flight-recorder events, timeline
//! events, incident dumps, the `Provenance` block — stamps the current
//! id so one request's telemetry can be sliced out of process-wide
//! rings after the fact.
//!
//! Propagation follows the same discipline as [`crate::budget`]: the
//! context is **explicitly captured** where work is dispatched
//! ([`current`]) and **explicitly entered** where work runs
//! ([`TraceCtx::enter`]). `gef-par` captures the dispatching thread's
//! context when a region is built and enters it inside each worker, so
//! task events on worker threads attribute to the request that
//! dispatched them. Nothing is ambient across threads; a thread with no
//! entered scope reads id `0` ("no context") and sinks skip the stamp.
//!
//! ```
//! use gef_trace::ctx;
//! let id = ctx::new_id();
//! assert_eq!(ctx::current_id(), 0);
//! {
//!     let _scope = ctx::TraceCtx::with_id(id).enter();
//!     assert_eq!(ctx::current_id(), id);
//! }
//! assert_eq!(ctx::current_id(), 0);
//! ```

use crate::hash;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

thread_local! {
    /// Innermost-wins stack of entered trace ids for this thread.
    static CURRENT: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Monotonic sequence mixed into every minted id.
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);
/// Lazily initialised per-process salt so ids differ across restarts.
static PROCESS_SALT: AtomicU64 = AtomicU64::new(0);

fn process_salt() -> u64 {
    let salt = PROCESS_SALT.load(Ordering::Relaxed);
    if salt != 0 {
        return salt;
    }
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9e37_79b9_7f4a_7c15);
    let mixed = hash::splitmix64(nanos) | 1; // nonzero so init runs once
    let _ = PROCESS_SALT.compare_exchange(0, mixed, Ordering::Relaxed, Ordering::Relaxed);
    PROCESS_SALT.load(Ordering::Relaxed)
}

/// Mint a fresh nonzero trace id (splitmix of a per-process salt and a
/// monotonic sequence — unique within a process, unlikely to collide
/// across them).
pub fn new_id() -> u64 {
    let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
    let id = hash::splitmix64(process_salt() ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    if id == 0 {
        0x6765_665f_7472_6163 // "gef_trac": splitmix64 hit its fixed zero
    } else {
        id
    }
}

/// Parse a 16-hex-digit trace id (the wire form). Returns `None` for
/// anything else — wrong length, non-hex, or the reserved zero id — so
/// callers fall back to minting a fresh id instead of trusting junk.
pub fn parse_hex(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    match u64::from_str_radix(s, 16) {
        Ok(0) | Err(_) => None,
        Ok(v) => Some(v),
    }
}

/// A capturable, re-enterable trace-context handle. Cheap to clone and
/// `Send`: capture it with [`current`] where work is dispatched, move
/// it to the worker, and [`enter`](TraceCtx::enter) it there.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceCtx {
    id: u64,
}

impl TraceCtx {
    /// The empty context (id `0`): entering it is a real push, so a
    /// worker that enters a dispatcher's empty context still shadows
    /// any id left on its own stack.
    pub fn none() -> TraceCtx {
        TraceCtx { id: 0 }
    }

    /// A context carrying `id` (pass `0` for the empty context).
    pub fn with_id(id: u64) -> TraceCtx {
        TraceCtx { id }
    }

    /// The raw id (`0` = no context).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// True when this handle carries a real id.
    pub fn is_set(&self) -> bool {
        self.id != 0
    }

    /// The 16-hex wire form of the id.
    pub fn hex(&self) -> String {
        hash::to_hex(self.id)
    }

    /// Push this context onto the calling thread's stack; the returned
    /// guard pops it on drop. Guards are `!Send` and must drop in LIFO
    /// order (guaranteed by normal scoping).
    pub fn enter(&self) -> CtxScope {
        CURRENT.with(|c| c.borrow_mut().push(self.id));
        CtxScope {
            _not_send: PhantomData,
        }
    }
}

/// Guard returned by [`TraceCtx::enter`]; pops the entered id on drop.
pub struct CtxScope {
    _not_send: PhantomData<*const ()>,
}

impl Drop for CtxScope {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// The calling thread's innermost entered context ([`TraceCtx::none`]
/// when no scope is active) — the capture point for dispatchers.
pub fn current() -> TraceCtx {
    TraceCtx { id: current_id() }
}

/// The calling thread's innermost entered trace id (`0` = none). This
/// is the fast path telemetry sinks use to stamp events.
pub fn current_id() -> u64 {
    CURRENT.with(|c| c.borrow().last().copied().unwrap_or(0))
}

/// The 16-hex form of [`current_id`], or `None` outside any scope.
pub fn current_hex() -> Option<String> {
    match current_id() {
        0 => None,
        id => Some(hash::to_hex(id)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_nonzero_and_distinct() {
        let a = new_id();
        let b = new_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn scopes_nest_and_unwind() {
        assert_eq!(current_id(), 0);
        let outer = TraceCtx::with_id(0x11);
        let _o = outer.enter();
        assert_eq!(current_id(), 0x11);
        {
            let _i = TraceCtx::with_id(0x22).enter();
            assert_eq!(current_id(), 0x22);
        }
        assert_eq!(current_id(), 0x11);
    }

    #[test]
    fn empty_context_shadows() {
        let _o = TraceCtx::with_id(0x33).enter();
        {
            let _i = TraceCtx::none().enter();
            assert_eq!(current_id(), 0);
            assert!(current_hex().is_none());
        }
        assert_eq!(current_id(), 0x33);
    }

    #[test]
    fn capture_and_reenter_across_threads() {
        let ctx = TraceCtx::with_id(0x44);
        let _s = ctx.enter();
        let captured = current();
        let seen = std::thread::spawn(move || {
            assert_eq!(current_id(), 0, "fresh thread starts without a context");
            let _w = captured.enter();
            current_id()
        })
        .join()
        .expect("worker join");
        assert_eq!(seen, 0x44);
    }

    #[test]
    fn hex_roundtrip_and_rejection() {
        let id = 0xdead_beef_0012_3456u64;
        let hex = TraceCtx::with_id(id).hex();
        assert_eq!(hex.len(), 16);
        assert_eq!(parse_hex(&hex), Some(id));
        assert_eq!(parse_hex("0000000000000000"), None);
        assert_eq!(parse_hex("abc"), None);
        assert_eq!(parse_hex("zzzzzzzzzzzzzzzz"), None);
        assert_eq!(parse_hex("deadbeef001234567"), None);
    }
}
