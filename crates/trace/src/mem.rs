//! Allocation counters fed by the `gef-prof` instrumented allocator.
//!
//! This module is the *sink* side of the workspace's memory
//! observability: it holds four relaxed atomics (allocation count,
//! bytes allocated, bytes currently in use, peak in use) that the
//! `gef-prof` crate's `TrackingAlloc` global allocator increments from
//! its `alloc`/`dealloc` hooks. It lives here — below every other
//! crate — so [`crate::Span`] can attribute allocation deltas to span
//! paths and [`crate::Telemetry::snapshot`] can surface totals as
//! gauges without `gef-trace` depending on anything.
//!
//! Without the allocator installed (the default: `alloc-track` is a
//! feature of `gef-prof`, off unless a binary opts in), every counter
//! stays zero, [`tracking`] reports `false`, and no span or snapshot
//! records any `mem.*` metric — the module is dormant.
//!
//! The hooks themselves never allocate and never lock: they are safe to
//! call from inside a global allocator.

use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);
static BYTES_FREED: AtomicU64 = AtomicU64::new(0);
static IN_USE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

/// Point-in-time view of the allocation counters (all process-wide,
/// counted since the tracking allocator was installed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemStats {
    /// Number of allocations.
    pub allocs: u64,
    /// Number of deallocations.
    pub frees: u64,
    /// Total bytes ever allocated.
    pub bytes_allocated: u64,
    /// Total bytes ever freed.
    pub bytes_freed: u64,
    /// Bytes currently allocated and not yet freed.
    pub in_use_bytes: u64,
    /// High-water mark of [`MemStats::in_use_bytes`].
    pub peak_bytes: u64,
}

/// Record one allocation of `size` bytes. Called by the `gef-prof`
/// tracking allocator; allocation-free and lock-free.
#[inline]
pub fn on_alloc(size: usize) {
    let size = size as u64;
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    BYTES_ALLOCATED.fetch_add(size, Ordering::Relaxed);
    let now = IN_USE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

/// Record one deallocation of `size` bytes. Called by the `gef-prof`
/// tracking allocator; allocation-free and lock-free.
#[inline]
pub fn on_dealloc(size: usize) {
    let size = size as u64;
    FREES.fetch_add(1, Ordering::Relaxed);
    BYTES_FREED.fetch_add(size, Ordering::Relaxed);
    // With the allocator installed from process start every dealloc
    // matches a counted alloc; saturate anyway so a mismatch can never
    // wrap the gauge.
    let _ = IN_USE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_sub(size))
    });
}

/// Whether an instrumented allocator is feeding these counters.
///
/// Heuristic but exact in practice: the Rust runtime allocates before
/// `main`, so a process with the tracking allocator installed has a
/// nonzero allocation count by the time any instrumentation runs.
#[inline]
pub fn tracking() -> bool {
    ALLOCS.load(Ordering::Relaxed) != 0
}

/// Current counter values.
pub fn stats() -> MemStats {
    MemStats {
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        bytes_allocated: BYTES_ALLOCATED.load(Ordering::Relaxed),
        bytes_freed: BYTES_FREED.load(Ordering::Relaxed),
        in_use_bytes: IN_USE.load(Ordering::Relaxed),
        peak_bytes: PEAK.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests share process-global counters with nothing else (no
    // tracking allocator is installed in the gef-trace test binary), so
    // they drive the hooks directly and only assert on deltas.

    #[test]
    fn hooks_accumulate_and_track_peak() {
        let before = stats();
        on_alloc(1000);
        on_alloc(500);
        on_dealloc(1000);
        let after = stats();
        assert_eq!(after.allocs - before.allocs, 2);
        assert_eq!(after.frees - before.frees, 1);
        assert_eq!(after.bytes_allocated - before.bytes_allocated, 1500);
        assert_eq!(after.bytes_freed - before.bytes_freed, 1000);
        assert!(after.peak_bytes >= before.in_use_bytes + 1500);
        assert!(tracking());
    }
}
