//! Dependency-free content hashing: FNV-1a and SplitMix64, plus a small
//! streaming [`Digest`] built from the two.
//!
//! These are the workspace's canonical mixers — the fault-injection
//! module derives its seeded trigger decisions from them, and incident
//! dumps / explanation provenance use [`Digest`] to fingerprint configs,
//! forests, and fitted GAMs (groundwork for a content-addressed artifact
//! store). They are **not** cryptographic: the goal is a cheap, stable,
//! well-mixed 64-bit identity, reproducible across runs and platforms.

/// FNV-1a over a byte string.
pub fn fnv1a(s: &str) -> u64 {
    fnv1a_bytes(s.as_bytes())
}

/// FNV-1a over raw bytes (offset basis `0xcbf29ce484222325`,
/// prime `0x100000001b3`).
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer — one well-mixed `u64` out per `u64` in.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Streaming 64-bit content digest.
///
/// Feed values in a fixed, documented order; [`Digest::finish`] runs the
/// accumulated FNV-1a state through SplitMix64 so short inputs still
/// produce well-spread digests. Floats are hashed by their IEEE-754 bit
/// patterns (so `-0.0 != 0.0` and NaN payloads are distinguished) —
/// bit-identical inputs, and only those, give equal digests.
///
/// ```
/// use gef_trace::hash::Digest;
/// let mut d = Digest::new("gef-core/config");
/// d.write_u64(3);
/// d.write_f64(0.25);
/// d.write_str("equi-size");
/// let a = d.finish();
/// assert_eq!(a, {
///     let mut d = Digest::new("gef-core/config");
///     d.write_u64(3);
///     d.write_f64(0.25);
///     d.write_str("equi-size");
///     d.finish()
/// });
/// ```
#[derive(Debug, Clone)]
pub struct Digest {
    state: u64,
}

impl Digest {
    /// Start a digest, mixing in a domain-separation tag (e.g.
    /// `"gef-forest/v1"`) so digests of different artifact kinds never
    /// collide by construction.
    pub fn new(domain: &str) -> Self {
        Digest {
            state: fnv1a(domain),
        }
    }

    fn mix(&mut self, word: u64) {
        // FNV-1a step over the 8 bytes, then a SplitMix64 stir so
        // field boundaries cannot cancel.
        let mut h = self.state;
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.state = splitmix64(h);
    }

    /// Mix in an unsigned integer.
    pub fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    /// Mix in a float by its exact bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.mix(v.to_bits());
    }

    /// Mix in a string (length-prefixed, so `"ab","c"` ≠ `"a","bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.mix(s.len() as u64);
        self.mix(fnv1a(s));
    }

    /// Mix in a slice of floats (length-prefixed).
    pub fn write_f64s(&mut self, vs: &[f64]) {
        self.mix(vs.len() as u64);
        for &v in vs {
            self.mix(v.to_bits());
        }
    }

    /// Finalize to the 64-bit digest value.
    pub fn finish(&self) -> u64 {
        splitmix64(self.state)
    }

    /// Finalize and render as the canonical 16-hex-digit form used in
    /// incident dumps and provenance blocks.
    pub fn finish_hex(&self) -> String {
        to_hex(self.finish())
    }
}

/// Canonical hex rendering of a digest value (16 lowercase hex digits).
pub fn to_hex(v: u64) -> String {
    format!("{v:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a("a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
    }

    #[test]
    fn digest_is_order_and_boundary_sensitive() {
        let mut a = Digest::new("t");
        a.write_str("ab");
        a.write_str("c");
        let mut b = Digest::new("t");
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());

        let mut c = Digest::new("t");
        c.write_u64(1);
        c.write_u64(2);
        let mut d = Digest::new("t");
        d.write_u64(2);
        d.write_u64(1);
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn digest_separates_domains() {
        let mut a = Digest::new("domain-a");
        a.write_u64(7);
        let mut b = Digest::new("domain-b");
        b.write_u64(7);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn digest_distinguishes_float_bit_patterns() {
        let mut a = Digest::new("t");
        a.write_f64(0.0);
        let mut b = Digest::new("t");
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(to_hex(0), "0000000000000000");
        assert_eq!(to_hex(u64::MAX), "ffffffffffffffff");
        assert_eq!(to_hex(0xabc), "0000000000000abc");
    }
}
