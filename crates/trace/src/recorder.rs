//! Always-on flight recorder: a bounded per-thread ring of recent
//! pipeline activity, kept so that a failure with all opt-in telemetry
//! **off** still leaves a black-box record to dump.
//!
//! Where [`crate::Telemetry`] aggregates (gated by `GEF_TRACE`) and
//! [`crate::timeline`] profiles (gated by `GEF_PROF`), the recorder is
//! **never off in normal builds and never grows**: each thread owns a
//! fixed [`RING_CAP`]-slot ring that overwrites its *oldest* entry on
//! overflow, so the memory cost is constant and what survives is always
//! the most recent window of activity — exactly what an incident dump
//! wants.
//!
//! # What gets recorded
//!
//! * span transitions ([`Kind::SpanBegin`] / [`Kind::SpanEnd`], hooked
//!   from [`crate::Span`]);
//! * every [`crate::Telemetry::event`] (mirrored before the `GEF_TRACE`
//!   gate, so cold-path events land here even untraced);
//! * degradation-ladder steps ([`Kind::Degradation`], from gef-core);
//! * budget trips ([`Kind::Budget`], transition-only — see
//!   [`crate::budget`]);
//! * fault-injection fires ([`Kind::Fault`]);
//! * worker panics ([`Kind::Panic`], from gef-par's containment paths).
//!
//! # Cost model
//!
//! The recorder is observation-only and lock-light: each append takes
//! the calling thread's own uncontended mutex, stamps a timestamp and a
//! global sequence number, and pushes into a pre-sized ring —
//! fixed cost, no growth, no I/O. The only cross-thread contention is
//! [`snapshot_last`] (incident time) and worker registration.
//!
//! # Disabling
//!
//! The `noop` cargo feature pins [`active`] to a constant `false`,
//! compiling every hook away (same contract as [`crate::enabled`]).
//! [`set_suppressed`] is a runtime kill switch used by tests to prove
//! that recording does not perturb pipeline outputs (recorder-on vs
//! suppressed runs must be bit-identical).
//!
//! # Thread ids
//!
//! Same logical scheme as [`crate::timeline`]: gef-par worker `k` is
//! `tid = k + 1` (via [`register_worker`]), the first unregistered
//! thread to record claims `tid = 0` (`main`), later unregistered
//! threads get `tid = 1000 + n`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Ring capacity per thread. On overflow the *oldest* record is
/// overwritten (and counted), so each thread always holds its most
/// recent `RING_CAP` records.
pub const RING_CAP: usize = 256;

/// What kind of activity a [`Record`] captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A [`crate::Telemetry::event`] mirror.
    Event,
    /// A [`crate::Span`] was entered.
    SpanBegin,
    /// A [`crate::Span`] closed.
    SpanEnd,
    /// A degradation-ladder step (gef-core recovery).
    Degradation,
    /// A budget transition (hard/soft deadline first exceeded).
    Budget,
    /// An armed fault-injection site fired.
    Fault,
    /// A contained worker/task panic.
    Panic,
    /// An artifact-store durability action (quarantine, recovery,
    /// cache eviction, incident pruning — from gef-store/gef-core).
    Store,
}

impl Kind {
    /// Stable lowercase label used in incident-dump JSON.
    pub fn label(&self) -> &'static str {
        match self {
            Kind::Event => "event",
            Kind::SpanBegin => "span_begin",
            Kind::SpanEnd => "span_end",
            Kind::Degradation => "degradation",
            Kind::Budget => "budget",
            Kind::Fault => "fault",
            Kind::Panic => "panic",
            Kind::Store => "store",
        }
    }
}

/// One recorded activity, as returned by [`snapshot_last`] (thread
/// identity attached at snapshot time).
#[derive(Debug, Clone)]
pub struct Record {
    /// Activity kind.
    pub kind: Kind,
    /// Logical thread id (see module docs).
    pub tid: u64,
    /// Logical thread name (`main`, `gef-par-0`, `thread-1`, …).
    pub thread: String,
    /// Nanoseconds since the recorder's process-wide epoch.
    pub ts_ns: u64,
    /// Global sequence number (total order tie-break).
    pub seq: u64,
    /// Record name (event name, span name, degradation action, site, …).
    pub name: String,
    /// Numeric fields, when the source carried any.
    pub fields: Vec<(String, f64)>,
    /// Free-text payload (degradation cause, panic message, …).
    pub detail: Option<String>,
    /// Trace id of the request context active when the record was
    /// appended ([`crate::ctx`]); `0` outside any request scope.
    pub trace: u64,
}

struct RecEvent {
    kind: Kind,
    ts_ns: u64,
    seq: u64,
    name: String,
    fields: Vec<(String, f64)>,
    detail: Option<String>,
    trace: u64,
}

struct Ring {
    tid: u64,
    name: String,
    events: VecDeque<RecEvent>,
    overwritten: u64,
}

impl Ring {
    fn push(&mut self, ev: RecEvent) {
        if self.events.len() >= RING_CAP {
            self.events.pop_front();
            self.overwritten += 1;
        }
        self.events.push_back(ev);
    }
}

type SharedRing = Arc<Mutex<Ring>>;

fn registry() -> &'static Mutex<Vec<SharedRing>> {
    static REGISTRY: OnceLock<Mutex<Vec<SharedRing>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

static SUPPRESSED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);

// First unregistered thread claims tid 0 ("main"); later unregistered
// threads get 1000, 1001, … — mirrors crate::timeline's scheme.
static MAIN_CLAIMED: AtomicBool = AtomicBool::new(false);
static EXTRA_TID: AtomicU64 = AtomicU64::new(1000);

/// Recorder's own monotonic origin (independent of the timeline and
/// budget clocks; first use wins).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

thread_local! {
    static REC_RING: RefCell<Option<SharedRing>> = const { RefCell::new(None) };
    // Names of spans currently open on this thread (innermost last) —
    // lets SpanEnd carry its name without the Span guard storing one.
    static OPEN_SPANS: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

fn new_ring(worker: Option<usize>) -> SharedRing {
    let (tid, name) = match worker {
        Some(k) => ((k as u64) + 1, format!("gef-par-{k}")),
        None => {
            if !MAIN_CLAIMED.swap(true, Ordering::Relaxed) {
                (0, "main".to_string())
            } else {
                let tid = EXTRA_TID.fetch_add(1, Ordering::Relaxed);
                (tid, format!("thread-{}", tid - 1000))
            }
        }
    };
    let ring = Arc::new(Mutex::new(Ring {
        tid,
        name,
        events: VecDeque::with_capacity(RING_CAP),
        overwritten: 0,
    }));
    registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Arc::clone(&ring));
    ring
}

fn with_ring(f: impl FnOnce(&mut Ring)) {
    REC_RING.with(|tl| {
        let mut slot = tl.borrow_mut();
        let arc = slot.get_or_insert_with(|| new_ring(None));
        let mut ring = arc.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut ring);
    });
}

/// Whether the recorder is currently recording.
///
/// Constant `false` under the `noop` cargo feature (hooks compile
/// away); otherwise `true` unless [`set_suppressed`] turned recording
/// off at runtime. One relaxed atomic load.
#[inline(always)]
pub fn active() -> bool {
    if cfg!(feature = "noop") {
        return false;
    }
    !SUPPRESSED.load(Ordering::Relaxed)
}

/// Runtime kill switch: `true` stops all recording (hooks become a
/// single atomic load) until re-enabled.
///
/// The recorder is meant to be always on; this exists so tests can
/// assert pipeline outputs are bit-identical with recording on vs off
/// within one binary.
pub fn set_suppressed(on: bool) {
    SUPPRESSED.store(on, Ordering::Relaxed);
}

fn append(kind: Kind, name: &str, fields: &[(&str, f64)], detail: Option<&str>) {
    let ev = RecEvent {
        kind,
        ts_ns: now_ns(),
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        name: name.to_string(),
        fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        detail: detail.map(str::to_string),
        trace: crate::ctx::current_id(),
    };
    with_ring(|r| r.push(ev));
}

/// Record an activity with numeric fields. No-op while [`active`] is
/// false.
#[inline]
pub fn record(kind: Kind, name: &str, fields: &[(&str, f64)]) {
    if active() {
        append(kind, name, fields, None);
    }
}

/// Record an activity with a free-text payload (degradation cause,
/// panic message, …). No-op while [`active`] is false.
#[inline]
pub fn note(kind: Kind, name: &str, detail: &str) {
    if active() {
        append(kind, name, &[], Some(detail));
    }
}

/// Record a span entry on this thread; pair with [`span_end`].
///
/// Returns whether the entry was recorded — callers must invoke
/// [`span_end`] on close exactly when this returned `true`, so the
/// recorder's per-thread open-span stack stays balanced.
#[inline]
#[must_use = "call span_end on close iff this returned true"]
pub fn span_begin(name: &str) -> bool {
    if !active() {
        return false;
    }
    OPEN_SPANS.with(|s| s.borrow_mut().push(name.to_string()));
    append(Kind::SpanBegin, name, &[], None);
    true
}

/// Record the close of the innermost span opened with [`span_begin`]
/// on this thread.
#[inline]
pub fn span_end() {
    let name = OPEN_SPANS.with(|s| s.borrow_mut().pop());
    if let Some(name) = name {
        append(Kind::SpanEnd, &name, &[], None);
    }
}

/// Bind the calling thread to logical worker id `index` (gef-par spawn
/// order): its ring records as `tid = index + 1`, named
/// `gef-par-<index>`. Called by the gef-par pool at worker spawn.
pub fn register_worker(index: usize) {
    REC_RING.with(|tl| {
        let mut slot = tl.borrow_mut();
        match slot.as_ref() {
            Some(arc) => {
                let mut ring = arc.lock().unwrap_or_else(|e| e.into_inner());
                ring.tid = (index as u64) + 1;
                ring.name = format!("gef-par-{index}");
            }
            None => {
                *slot = Some(new_ring(Some(index)));
            }
        }
    });
}

/// The most recent `n` records across all threads, merged into one
/// globally ordered view (by timestamp, tie-broken by sequence
/// number). This is the incident-dump drain.
pub fn snapshot_last(n: usize) -> Vec<Record> {
    snapshot_filtered(n, None)
}

/// Like [`snapshot_last`], but keeping only records stamped with
/// `trace` — the slice one request left across every thread's ring.
/// This is what slow-request captures drain.
pub fn snapshot_trace(n: usize, trace: u64) -> Vec<Record> {
    snapshot_filtered(n, Some(trace))
}

fn snapshot_filtered(n: usize, trace: Option<u64>) -> Vec<Record> {
    let mut merged: Vec<Record> = Vec::new();
    {
        let rings = registry().lock().unwrap_or_else(|e| e.into_inner());
        for ring in rings.iter() {
            let r = ring.lock().unwrap_or_else(|e| e.into_inner());
            merged.extend(
                r.events
                    .iter()
                    .filter(|e| trace.is_none_or(|t| e.trace == t))
                    .map(|e| Record {
                        kind: e.kind,
                        tid: r.tid,
                        thread: r.name.clone(),
                        ts_ns: e.ts_ns,
                        seq: e.seq,
                        name: e.name.clone(),
                        fields: e.fields.clone(),
                        detail: e.detail.clone(),
                        trace: e.trace,
                    }),
            );
        }
    }
    merged.sort_by_key(|r| (r.ts_ns, r.seq));
    if merged.len() > n {
        merged.drain(..merged.len() - n);
    }
    merged
}

/// Total records currently held across all threads.
pub fn event_count() -> usize {
    let rings = registry().lock().unwrap_or_else(|e| e.into_inner());
    rings
        .iter()
        .map(|r| r.lock().unwrap_or_else(|e| e.into_inner()).events.len())
        .sum()
}

/// Total records overwritten (rings at [`RING_CAP`]) across all
/// threads since the last [`reset`].
pub fn overwritten_total() -> u64 {
    let rings = registry().lock().unwrap_or_else(|e| e.into_inner());
    rings
        .iter()
        .map(|r| r.lock().unwrap_or_else(|e| e.into_inner()).overwritten)
        .sum()
}

/// Clear every thread's records and overwrite counts (thread/tid
/// registrations are kept). Used by tests and by sweeps that archive
/// one incident per schedule.
pub fn reset() {
    let rings = registry().lock().unwrap_or_else(|e| e.into_inner());
    for ring in rings.iter() {
        let mut r = ring.lock().unwrap_or_else(|e| e.into_inner());
        r.events.clear();
        r.overwritten = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // Rings are process-global and other in-crate tests record spans
    // and events into them; serialise on the crate-wide test lock.
    use crate::TEST_LOCK;

    fn with_recorder<T>(f: impl FnOnce() -> T) -> T {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_suppressed(false);
        reset();
        let out = f();
        reset();
        out
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        with_recorder(|| {
            for i in 0..(RING_CAP + 10) {
                record(Kind::Event, "flood", &[("i", i as f64)]);
            }
            let snap = snapshot_last(usize::MAX);
            let mine: Vec<&Record> = snap.iter().filter(|r| r.name == "flood").collect();
            assert_eq!(mine.len(), RING_CAP);
            assert!(overwritten_total() >= 10);
            // Drop-oldest: the first surviving record is number 10, the
            // last is the final append.
            assert_eq!(mine[0].fields[0].1, 10.0);
            assert_eq!(mine[mine.len() - 1].fields[0].1, (RING_CAP + 10 - 1) as f64);
        });
    }

    #[test]
    fn suppressed_records_nothing() {
        with_recorder(|| {
            set_suppressed(true);
            assert!(!active());
            record(Kind::Event, "ghost", &[]);
            note(Kind::Panic, "ghost.note", "boom");
            assert!(!span_begin("ghost.span"));
            span_end();
            set_suppressed(false);
            assert!(snapshot_last(usize::MAX)
                .iter()
                .all(|r| !r.name.starts_with("ghost")));
        });
    }

    #[test]
    fn span_transitions_carry_names() {
        with_recorder(|| {
            assert!(span_begin("outer"));
            assert!(span_begin("inner"));
            span_end();
            span_end();
            let names: Vec<(Kind, String)> = snapshot_last(usize::MAX)
                .into_iter()
                .filter(|r| r.name == "outer" || r.name == "inner")
                .map(|r| (r.kind, r.name))
                .collect();
            assert_eq!(
                names,
                vec![
                    (Kind::SpanBegin, "outer".to_string()),
                    (Kind::SpanBegin, "inner".to_string()),
                    (Kind::SpanEnd, "inner".to_string()),
                    (Kind::SpanEnd, "outer".to_string()),
                ]
            );
        });
    }

    #[test]
    fn concurrent_writers_merge_in_global_order() {
        with_recorder(|| {
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    std::thread::spawn(move || {
                        register_worker(w);
                        for i in 0..100 {
                            record(Kind::Event, "mt", &[("i", i as f64)]);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let snap = snapshot_last(usize::MAX);
            let mine: Vec<&Record> = snap.iter().filter(|r| r.name == "mt").collect();
            assert_eq!(mine.len(), 400);
            // Globally ordered and attributed to worker tids 1..=4.
            assert!(mine
                .windows(2)
                .all(|w| (w[0].ts_ns, w[0].seq) <= (w[1].ts_ns, w[1].seq)));
            for w in 0..4u64 {
                assert_eq!(
                    mine.iter().filter(|r| r.tid == w + 1).count(),
                    100,
                    "worker {w}"
                );
            }
        });
    }

    #[test]
    fn snapshot_last_truncates_to_most_recent() {
        with_recorder(|| {
            for i in 0..20 {
                record(Kind::Event, "trunc", &[("i", i as f64)]);
            }
            let snap = snapshot_last(5);
            assert_eq!(snap.len(), 5);
            assert_eq!(snap[snap.len() - 1].fields[0].1, 19.0);
        });
    }

    #[test]
    fn trace_context_stamps_and_filters() {
        with_recorder(|| {
            record(Kind::Event, "untraced", &[]);
            {
                let _s = crate::ctx::TraceCtx::with_id(0xabc).enter();
                record(Kind::Event, "traced", &[]);
            }
            let slice = snapshot_trace(usize::MAX, 0xabc);
            assert_eq!(slice.len(), 1);
            assert_eq!(slice[0].name, "traced");
            assert_eq!(slice[0].trace, 0xabc);
            // The unscoped record is stamped 0 and excluded.
            assert!(snapshot_last(usize::MAX)
                .iter()
                .any(|r| r.name == "untraced" && r.trace == 0));
        });
    }

    #[test]
    fn detail_and_kind_labels_survive() {
        with_recorder(|| {
            note(
                Kind::Degradation,
                "lambda_fixed",
                "gam_fit: NotPositiveDefinite",
            );
            let snap = snapshot_last(usize::MAX);
            let r = snap.iter().find(|r| r.name == "lambda_fixed").unwrap();
            assert_eq!(r.kind.label(), "degradation");
            assert_eq!(r.detail.as_deref(), Some("gam_fit: NotPositiveDefinite"));
        });
    }
}
