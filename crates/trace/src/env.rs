//! One shared, typed reader for `GEF_*` environment knobs.
//!
//! Numeric environment parsing used to be duplicated across the budget
//! caps (`GEF_MAX_BOOST_ROUNDS`, …), the gef-par pool size
//! (`GEF_THREADS`), and gef-core's deadline knobs — each with its own
//! stderr wording and telemetry event name. This module is the single
//! path all of them (and the `GEF_SERVE_*` family) now go through:
//!
//! * [`read_u64`] classifies a variable into [`EnvValue::Unset`],
//!   [`EnvValue::Parsed`], or [`EnvValue::Invalid`] (carrying the raw
//!   text) without deciding policy — callers that clamp or substitute
//!   defaults (gef-par) keep their policy and only route the *warning*
//!   here.
//! * [`u64_var`] is the common policy: unset/empty → `None`, invalid →
//!   warn and `None` (a malformed knob is never fatal and never
//!   silently ignored).
//! * [`warn_invalid`] is the one warning path: **stderr once per
//!   variable per process** (so a server handling thousands of requests
//!   does not spam its log), plus an `env.invalid` flight-recorder note
//!   naming the raw value on *every* rejection (bounded ring, feeds
//!   incident dumps) and — when tracing is on — an `env.invalid`
//!   telemetry event.

use std::collections::BTreeSet;
use std::sync::Mutex;

/// Classification of an environment variable's value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvValue {
    /// The variable is not set (or set to whitespace/empty).
    Unset,
    /// The variable parsed as a `u64`.
    Parsed(u64),
    /// The variable is set but does not parse; carries the raw text.
    Invalid(String),
}

/// Read and classify `var` as a `u64` without emitting any warning.
/// Callers with a substitution policy (clamping, fallbacks) match on
/// the result and route rejections through [`warn_invalid`].
pub fn read_u64(var: &str) -> EnvValue {
    let Ok(raw) = std::env::var(var) else {
        return EnvValue::Unset;
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return EnvValue::Unset;
    }
    match trimmed.parse::<u64>() {
        Ok(n) => EnvValue::Parsed(n),
        Err(_) => EnvValue::Invalid(raw),
    }
}

/// Read `var` as a `u64` with the standard policy: unset → `None`,
/// invalid → [`warn_invalid`] (describing the value as ignored) and
/// `None`. Never fatal.
pub fn u64_var(var: &str) -> Option<u64> {
    match read_u64(var) {
        EnvValue::Unset => None,
        EnvValue::Parsed(n) => Some(n),
        EnvValue::Invalid(raw) => {
            warn_invalid(var, &raw, "ignoring it");
            None
        }
    }
}

/// Like [`u64_var`] but substitutes `default` for unset/invalid values.
pub fn u64_var_or(var: &str, default: u64) -> u64 {
    u64_var(var).unwrap_or(default)
}

/// The single warning path for a rejected environment value.
///
/// `used` is a short clause describing the substitution (e.g.
/// `"ignoring it"`, `"using 8"`). Emits:
///
/// * stderr, **once per variable per process** — repeated rejections of
///   the same knob (e.g. per server request) stay quiet;
/// * an `env.invalid` flight-recorder note naming the raw value, every
///   time (bounded ring; surfaces in incident dumps);
/// * an `env.invalid` telemetry event (numeric fields only), every
///   time, when tracing is enabled.
pub fn warn_invalid(var: &str, raw: &str, used: &str) {
    static WARNED: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());
    let first = WARNED
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(var.to_string());
    if first {
        eprintln!("gef: invalid {var} value {raw:?}; {used}");
    }
    crate::recorder::note(
        crate::recorder::Kind::Event,
        "env.invalid",
        &format!("{var}={raw:?} ({used})"),
    );
    if crate::enabled() {
        crate::global().event("env.invalid", &[("raw_len", raw.len() as f64)]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // Env vars are process-global; serialise the tests that set them.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn classifies_unset_parsed_invalid() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::remove_var("GEF_TEST_ENV_A");
        assert_eq!(read_u64("GEF_TEST_ENV_A"), EnvValue::Unset);
        std::env::set_var("GEF_TEST_ENV_A", "  ");
        assert_eq!(read_u64("GEF_TEST_ENV_A"), EnvValue::Unset);
        std::env::set_var("GEF_TEST_ENV_A", " 42 ");
        assert_eq!(read_u64("GEF_TEST_ENV_A"), EnvValue::Parsed(42));
        std::env::set_var("GEF_TEST_ENV_A", "soon");
        assert_eq!(
            read_u64("GEF_TEST_ENV_A"),
            EnvValue::Invalid("soon".to_string())
        );
        std::env::remove_var("GEF_TEST_ENV_A");
    }

    #[test]
    fn invalid_value_warns_and_leaves_recorder_note() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var("GEF_TEST_ENV_B", "-3");
        assert_eq!(u64_var("GEF_TEST_ENV_B"), None);
        assert_eq!(u64_var_or("GEF_TEST_ENV_B", 7), 7);
        std::env::remove_var("GEF_TEST_ENV_B");
        let notes: Vec<String> = crate::recorder::snapshot_last(usize::MAX)
            .into_iter()
            .filter(|r| r.name == "env.invalid")
            .filter_map(|r| r.detail)
            .collect();
        assert!(
            notes
                .iter()
                .any(|d| d.contains("GEF_TEST_ENV_B") && d.contains("-3")),
            "no recorder note names the rejected value: {notes:?}"
        );
    }

    #[test]
    fn defaults_pass_through_for_valid_values() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var("GEF_TEST_ENV_C", "9");
        assert_eq!(u64_var_or("GEF_TEST_ENV_C", 7), 9);
        std::env::remove_var("GEF_TEST_ENV_C");
        assert_eq!(u64_var_or("GEF_TEST_ENV_C", 7), 7);
    }
}
