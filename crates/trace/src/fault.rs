//! Deterministic fault injection for robustness testing.
//!
//! A process-wide registry of named **injection sites**. Production code
//! guards a failure path with [`fires`]:
//!
//! ```ignore
//! if gef_trace::fault::fires("chol.factor") {
//!     return Err(LinalgError::NotPositiveDefinite { pivot: 0, value: f64::NAN });
//! }
//! ```
//!
//! Without the `fault-injection` cargo feature every function here is an
//! inlined no-op (`fires` is a constant `false`), so instrumented hot paths
//! carry zero cost in normal builds. With the feature enabled, tests [`arm`]
//! sites with a [`Trigger`] that decides deterministically — from the site
//! name, a per-site hit counter, and an optional seed or pipeline *stage* —
//! whether a given invocation fails.
//!
//! Triggers:
//!
//! * [`Trigger::Always`] — every hit fires.
//! * [`Trigger::Hits`] — fire on an explicit list of 0-based hit indices.
//! * [`Trigger::FirstN`] — fire on the first `n` hits.
//! * [`Trigger::StageBelow`] — fire while the global stage (see
//!   [`set_stage`]) is below `n`. The recovery ladder publishes its attempt
//!   index as the stage, so `StageBelow(r)` makes exactly the first `r`
//!   ladder attempts fail and lets attempt `r` succeed.
//! * [`Trigger::Seeded`] — fire pseudo-randomly with probability `prob`,
//!   derived deterministically from `seed ^ hash(site) ^ hit_index`.
//!
//! The registry is shared process state: tests that arm sites must
//! serialise (e.g. behind a mutex) and call [`reset`] when done.

/// Decides whether an armed site fires on a given hit.
#[derive(Debug, Clone, PartialEq)]
pub enum Trigger {
    /// Fire on every hit.
    Always,
    /// Fire on these 0-based hit indices.
    Hits(Vec<u64>),
    /// Fire on the first `n` hits.
    FirstN(u64),
    /// Fire while the global stage (see [`set_stage`]) is `< n`.
    StageBelow(u32),
    /// Fire with probability `prob`, deterministically derived from
    /// `seed`, the site name, and the hit index.
    Seeded {
        /// Seed mixed into the per-hit decision.
        seed: u64,
        /// Probability in `[0, 1]` that a hit fires.
        prob: f64,
    },
}

impl Trigger {
    /// Render this trigger in the `GEF_FAULTS` spec grammar
    /// (`always` / `first:N` / `hits:I|J` / `stage<N` /
    /// `seeded:SEED:PROB`), so an armed schedule can be serialized into
    /// a replayable `site=trigger` string (incident dumps do exactly
    /// that).
    pub fn to_spec(&self) -> String {
        match self {
            Trigger::Always => "always".to_string(),
            Trigger::Hits(hits) => {
                let parts: Vec<String> = hits.iter().map(u64::to_string).collect();
                format!("hits:{}", parts.join("|"))
            }
            Trigger::FirstN(n) => format!("first:{n}"),
            Trigger::StageBelow(n) => format!("stage<{n}"),
            Trigger::Seeded { seed, prob } => format!("seeded:{seed}:{prob}"),
        }
    }
}

#[cfg(feature = "fault-injection")]
mod imp {
    use super::Trigger;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
    use std::sync::{Mutex, OnceLock};

    struct SiteState {
        trigger: Trigger,
        hits: u64,
        fired: u64,
    }

    static ANY_ARMED: AtomicBool = AtomicBool::new(false);
    static STAGE: AtomicU32 = AtomicU32::new(0);
    static REGISTRY: OnceLock<Mutex<HashMap<String, SiteState>>> = OnceLock::new();

    fn registry() -> &'static Mutex<HashMap<String, SiteState>> {
        REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
    }

    fn lock() -> std::sync::MutexGuard<'static, HashMap<String, SiteState>> {
        registry().lock().unwrap_or_else(|e| e.into_inner())
    }

    // Seeded decisions mix via the workspace's canonical hashers.
    use crate::hash::{fnv1a, splitmix64};

    /// Arm `site` with `trigger`, resetting its hit/fired counters.
    pub fn arm(site: &str, trigger: Trigger) {
        let mut map = lock();
        map.insert(
            site.to_string(),
            SiteState {
                trigger,
                hits: 0,
                fired: 0,
            },
        );
        ANY_ARMED.store(true, Ordering::Release);
    }

    /// Disarm `site`; subsequent hits never fire and are not counted.
    pub fn disarm(site: &str) {
        let mut map = lock();
        map.remove(site);
        if map.is_empty() {
            ANY_ARMED.store(false, Ordering::Release);
        }
    }

    /// Disarm every site and reset the stage to 0.
    pub fn reset() {
        lock().clear();
        ANY_ARMED.store(false, Ordering::Release);
        STAGE.store(0, Ordering::Release);
    }

    /// Publish the current pipeline stage (used by [`Trigger::StageBelow`]).
    pub fn set_stage(stage: u32) {
        STAGE.store(stage, Ordering::Release);
    }

    /// The currently published stage.
    pub fn stage() -> u32 {
        STAGE.load(Ordering::Acquire)
    }

    /// Should this invocation of `site` fail? Counts a hit when armed.
    pub fn fires(site: &str) -> bool {
        // Fast path: nothing armed anywhere.
        if !ANY_ARMED.load(Ordering::Acquire) {
            return false;
        }
        let mut map = lock();
        let Some(state) = map.get_mut(site) else {
            return false;
        };
        let hit = state.hits;
        state.hits += 1;
        let fire = match &state.trigger {
            Trigger::Always => true,
            Trigger::Hits(hits) => hits.contains(&hit),
            Trigger::FirstN(n) => hit < *n,
            Trigger::StageBelow(n) => STAGE.load(Ordering::Acquire) < *n,
            Trigger::Seeded { seed, prob } => {
                let z = splitmix64(seed ^ fnv1a(site) ^ hit);
                // Map to [0, 1) using the top 53 bits.
                let u = (z >> 11) as f64 / (1u64 << 53) as f64;
                u < *prob
            }
        };
        if fire {
            state.fired += 1;
            // Leave a breadcrumb in the always-on flight recorder so an
            // incident dump shows which injected fault tripped the run.
            crate::recorder::record(crate::recorder::Kind::Fault, site, &[("hit", hit as f64)]);
        }
        fire
    }

    /// Total hits recorded against `site` since it was armed.
    pub fn hit_count(site: &str) -> u64 {
        lock().get(site).map(|s| s.hits).unwrap_or(0)
    }

    /// Total times `site` actually fired since it was armed.
    pub fn fired_count(site: &str) -> u64 {
        lock().get(site).map(|s| s.fired).unwrap_or(0)
    }

    /// Whether *any* site is currently armed (one atomic load).
    ///
    /// Parallel runtimes check this at dispatch time and fall back to
    /// serial execution while faults are armed, so hit counters advance
    /// in a thread-count-invariant order.
    pub fn any_armed() -> bool {
        ANY_ARMED.load(Ordering::Acquire)
    }

    /// Snapshot of every currently armed site with its trigger, sorted
    /// by site name — the raw material for a replayable `GEF_FAULTS`
    /// string in incident dumps.
    pub fn armed() -> Vec<(String, Trigger)> {
        let map = lock();
        let mut out: Vec<(String, Trigger)> = map
            .iter()
            .map(|(site, state)| (site.clone(), state.trigger.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Per-site `(site, hits, fired)` counters for every armed site,
    /// sorted by site name.
    pub fn armed_counts() -> Vec<(String, u64, u64)> {
        let map = lock();
        let mut out: Vec<(String, u64, u64)> = map
            .iter()
            .map(|(site, state)| (site.clone(), state.hits, state.fired))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(not(feature = "fault-injection"))]
mod imp {
    use super::Trigger;

    /// No-op without the `fault-injection` feature.
    #[inline(always)]
    pub fn arm(_site: &str, _trigger: Trigger) {}

    /// No-op without the `fault-injection` feature.
    #[inline(always)]
    pub fn disarm(_site: &str) {}

    /// No-op without the `fault-injection` feature.
    #[inline(always)]
    pub fn reset() {}

    /// No-op without the `fault-injection` feature.
    #[inline(always)]
    pub fn set_stage(_stage: u32) {}

    /// Always 0 without the `fault-injection` feature.
    #[inline(always)]
    pub fn stage() -> u32 {
        0
    }

    /// Constant `false` without the `fault-injection` feature — guarded
    /// failure paths compile away entirely.
    #[inline(always)]
    pub fn fires(_site: &str) -> bool {
        false
    }

    /// Always 0 without the `fault-injection` feature.
    #[inline(always)]
    pub fn hit_count(_site: &str) -> u64 {
        0
    }

    /// Always 0 without the `fault-injection` feature.
    #[inline(always)]
    pub fn fired_count(_site: &str) -> u64 {
        0
    }

    /// Constant `false` without the `fault-injection` feature.
    #[inline(always)]
    pub fn any_armed() -> bool {
        false
    }

    /// Always empty without the `fault-injection` feature.
    #[inline(always)]
    pub fn armed() -> Vec<(String, Trigger)> {
        Vec::new()
    }

    /// Always empty without the `fault-injection` feature.
    #[inline(always)]
    pub fn armed_counts() -> Vec<(String, u64, u64)> {
        Vec::new()
    }
}

pub use imp::{
    any_armed, arm, armed, armed_counts, disarm, fired_count, fires, hit_count, reset, set_stage,
    stage,
};

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The registry is process-global; serialise tests touching it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_registry<T>(f: impl FnOnce() -> T) -> T {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        let out = f();
        reset();
        out
    }

    #[test]
    fn unarmed_sites_never_fire() {
        with_registry(|| {
            assert!(!fires("nope"));
            assert_eq!(hit_count("nope"), 0);
        });
    }

    #[test]
    fn always_fires_every_hit() {
        with_registry(|| {
            arm("t.always", Trigger::Always);
            assert!(fires("t.always"));
            assert!(fires("t.always"));
            assert_eq!(hit_count("t.always"), 2);
            assert_eq!(fired_count("t.always"), 2);
        });
    }

    #[test]
    fn hits_trigger_selects_exact_indices() {
        with_registry(|| {
            arm("t.hits", Trigger::Hits(vec![1, 3]));
            let pattern: Vec<bool> = (0..5).map(|_| fires("t.hits")).collect();
            assert_eq!(pattern, vec![false, true, false, true, false]);
            assert_eq!(fired_count("t.hits"), 2);
        });
    }

    #[test]
    fn first_n_fires_then_stops() {
        with_registry(|| {
            arm("t.first", Trigger::FirstN(2));
            let pattern: Vec<bool> = (0..4).map(|_| fires("t.first")).collect();
            assert_eq!(pattern, vec![true, true, false, false]);
        });
    }

    #[test]
    fn stage_below_tracks_published_stage() {
        with_registry(|| {
            arm("t.stage", Trigger::StageBelow(2));
            set_stage(0);
            assert!(fires("t.stage"));
            set_stage(1);
            assert!(fires("t.stage"));
            set_stage(2);
            assert!(!fires("t.stage"));
        });
    }

    #[test]
    fn seeded_is_deterministic_and_roughly_calibrated() {
        with_registry(|| {
            arm(
                "t.seed",
                Trigger::Seeded {
                    seed: 42,
                    prob: 0.5,
                },
            );
            let run1: Vec<bool> = (0..64).map(|_| fires("t.seed")).collect();
            // Re-arming resets the hit counter → identical sequence.
            arm(
                "t.seed",
                Trigger::Seeded {
                    seed: 42,
                    prob: 0.5,
                },
            );
            let run2: Vec<bool> = (0..64).map(|_| fires("t.seed")).collect();
            assert_eq!(run1, run2);
            let fired = run1.iter().filter(|&&b| b).count();
            assert!((10..=54).contains(&fired), "p=0.5 over 64 hits: {fired}");
        });
    }

    #[test]
    fn armed_snapshot_is_sorted_and_specs_render() {
        with_registry(|| {
            arm("b.site", Trigger::FirstN(2));
            arm("a.site", Trigger::Hits(vec![1, 3]));
            let snap = armed();
            assert_eq!(snap.len(), 2);
            assert_eq!(snap[0], ("a.site".to_string(), Trigger::Hits(vec![1, 3])));
            assert_eq!(snap[0].1.to_spec(), "hits:1|3");
            assert_eq!(snap[1].1.to_spec(), "first:2");
            assert_eq!(Trigger::Always.to_spec(), "always");
            assert_eq!(Trigger::StageBelow(3).to_spec(), "stage<3");
            assert_eq!(
                Trigger::Seeded {
                    seed: 9,
                    prob: 0.25
                }
                .to_spec(),
                "seeded:9:0.25"
            );
        });
    }

    #[test]
    fn disarm_stops_counting() {
        with_registry(|| {
            arm("t.disarm", Trigger::Always);
            assert!(fires("t.disarm"));
            disarm("t.disarm");
            assert!(!fires("t.disarm"));
            assert_eq!(hit_count("t.disarm"), 0);
        });
    }
}
