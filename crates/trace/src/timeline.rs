//! Time-resolved profiling: per-thread timelines exported as Chrome
//! Trace Event Format JSON.
//!
//! Where the rest of `gef-trace` records *aggregates* (a span's count
//! and duration distribution), this module records *when* things ran
//! and on *which thread* — enough to reconstruct a per-worker gantt in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev) and see a
//! lopsided histogram-build region or a deadline trip as a shape, not a
//! sum.
//!
//! # Enabling
//!
//! Recording is **off by default** and every hook first checks
//! [`prof_enabled`] (a single relaxed atomic load). It turns on via the
//! `GEF_PROF` environment variable:
//!
//! | `GEF_PROF` | effect |
//! |---|---|
//! | unset, `""`, `0`, `off`, `false` | disabled (default) |
//! | anything else (`1`, `on`, …) | record timelines |
//!
//! Tests and embedders can override the environment with
//! [`set_prof_enabled`]. The `noop` cargo feature pins [`prof_enabled`]
//! to a constant `false`, exactly like [`crate::enabled`].
//!
//! # Model
//!
//! Each thread owns a bounded buffer of timestamped events (begin/end
//! from [`crate::Span`], instants mirrored from
//! [`crate::Telemetry::event`], per-task begin/end pairs from gef-par
//! regions, and counter samples such as heap-in-use). Buffers are
//! registered in a process-wide list at first use and survive their
//! thread, so worker events are still there after the pool idles. A
//! buffer that fills up ([`TIMELINE_CAP`]) drops *new* events — never
//! recorded ones — and counts the drops, so begin/end pairing of what
//! was kept stays intact.
//!
//! # Thread ids
//!
//! Chrome traces key tracks by `tid`. To make tids meaningful **and
//! stable across runs** they are assigned logically, not from the OS:
//!
//! * gef-par worker `k` (spawn order) registers as `tid = k + 1` via
//!   [`register_worker`] — the same worker index is the same track at
//!   any `GEF_THREADS`;
//! * the first *unregistered* thread to record (the coordinator in
//!   every gef binary) claims `tid = 0`, named `main`;
//! * any further unregistered thread gets `tid = 1000 + n` in first-use
//!   order.
//!
//! # Export
//!
//! [`chrome_trace_json`] merges every buffer into one Chrome Trace
//! Event Format document (`ph` `B`/`E`/`i`/`C` plus `thread_name`
//! metadata, `ts` in microseconds); [`emit`] writes it under
//! `results/profiles/`. Load the file in Perfetto or `chrome://tracing`
//! as-is.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::JsonWriter;

/// Maximum retained timeline events per thread; beyond this, new events
/// are dropped (and counted) so already-recorded begin/end pairs stay
/// balanced.
pub const TIMELINE_CAP: usize = 1 << 16;

// 0 = uninitialised (read GEF_PROF on first use), 1 = off, 2 = on.
static PROF: AtomicU8 = AtomicU8::new(0);

fn prof_from_env() -> bool {
    match std::env::var("GEF_PROF") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "" | "0" | "off" | "false"
        ),
        Err(_) => false,
    }
}

/// Whether timeline recording is on (resolving `GEF_PROF` on first
/// call). With the `noop` cargo feature this is a constant `false`.
#[inline(always)]
pub fn prof_enabled() -> bool {
    if cfg!(feature = "noop") {
        return false;
    }
    match PROF.load(Ordering::Relaxed) {
        0 => {
            let on = prof_from_env();
            PROF.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        1 => false,
        _ => true,
    }
}

/// Force timeline recording on or off, overriding `GEF_PROF`.
pub fn set_prof_enabled(on: bool) {
    PROF.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Process-wide monotonic origin for timeline timestamps (first use
/// wins; independent of the budget clock so arming a deadline never
/// shifts profile timestamps).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// Global tie-break sequence so merged events sort deterministically
// even when two threads record in the same nanosecond.
static SEQ: AtomicU64 = AtomicU64::new(0);

#[derive(Clone)]
struct TlEvent {
    /// Chrome phase: b'B' (begin), b'E' (end), b'i' (instant), b'C' (counter).
    ph: u8,
    ts_ns: u64,
    seq: u64,
    name: String,
    args: Vec<(String, f64)>,
    /// Trace id of the request context active at record time
    /// ([`crate::ctx`]); `0` outside any request scope.
    trace: u64,
}

struct ThreadBuf {
    tid: u64,
    name: String,
    events: Vec<TlEvent>,
    dropped: u64,
}

impl ThreadBuf {
    fn push(&mut self, ph: u8, name: &str, args: &[(&str, f64)]) {
        if self.events.len() >= TIMELINE_CAP {
            self.dropped += 1;
            return;
        }
        self.events.push(TlEvent {
            ph,
            ts_ns: now_ns(),
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            name: name.to_string(),
            args: args.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            trace: crate::ctx::current_id(),
        });
    }
}

type SharedBuf = Arc<Mutex<ThreadBuf>>;

fn registry() -> &'static Mutex<Vec<SharedBuf>> {
    static REGISTRY: OnceLock<Mutex<Vec<SharedBuf>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

// The first unregistered thread to record claims tid 0 ("main");
// later unregistered threads get 1000, 1001, … in first-use order.
static MAIN_CLAIMED: AtomicBool = AtomicBool::new(false);
static EXTRA_TID: AtomicU64 = AtomicU64::new(1000);

thread_local! {
    static TL_BUF: RefCell<Option<SharedBuf>> = const { RefCell::new(None) };
}

fn new_thread_buf(worker: Option<usize>) -> SharedBuf {
    let (tid, name) = match worker {
        Some(k) => ((k as u64) + 1, format!("gef-par-{k}")),
        None => {
            if !MAIN_CLAIMED.swap(true, Ordering::Relaxed) {
                (0, "main".to_string())
            } else {
                let tid = EXTRA_TID.fetch_add(1, Ordering::Relaxed);
                (tid, format!("thread-{}", tid - 1000))
            }
        }
    };
    let buf = Arc::new(Mutex::new(ThreadBuf {
        tid,
        name,
        events: Vec::new(),
        dropped: 0,
    }));
    registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(Arc::clone(&buf));
    buf
}

fn with_buf(f: impl FnOnce(&mut ThreadBuf)) {
    TL_BUF.with(|tl| {
        let mut slot = tl.borrow_mut();
        let arc = slot.get_or_insert_with(|| new_thread_buf(None));
        let mut buf = arc.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut buf);
    });
}

/// Bind the calling thread to logical worker id `index` (gef-par spawn
/// order): its timeline track becomes `tid = index + 1`, named
/// `gef-par-<index>`.
///
/// Called by the gef-par pool at worker spawn *unconditionally* — even
/// while profiling is off — so tids are already right if recording is
/// enabled later in the process.
pub fn register_worker(index: usize) {
    TL_BUF.with(|tl| {
        let mut slot = tl.borrow_mut();
        match slot.as_ref() {
            Some(arc) => {
                let mut buf = arc.lock().unwrap_or_else(|e| e.into_inner());
                buf.tid = (index as u64) + 1;
                buf.name = format!("gef-par-{index}");
            }
            None => {
                *slot = Some(new_thread_buf(Some(index)));
            }
        }
    });
}

/// Record a duration-begin event (`ph: "B"`) on this thread's timeline.
/// Pair with [`end`]. No-op while [`prof_enabled`] is false.
#[inline]
pub fn begin(name: &str) {
    if prof_enabled() {
        with_buf(|b| b.push(b'B', name, &[]));
    }
}

/// [`begin`] with numeric arguments (chunk index, region id, …) that
/// show in the trace viewer's detail pane.
#[inline]
pub fn begin_with(name: &str, args: &[(&str, f64)]) {
    if prof_enabled() {
        with_buf(|b| b.push(b'B', name, args));
    }
}

/// Record the duration-end event (`ph: "E"`) matching the innermost
/// open [`begin`] of the same name on this thread. No-op while
/// [`prof_enabled`] is false.
#[inline]
pub fn end(name: &str) {
    if prof_enabled() {
        with_buf(|b| b.push(b'E', name, &[]));
    }
}

/// Record a thread-scoped instant event (`ph: "i"`). No-op while
/// [`prof_enabled`] is false.
#[inline]
pub fn instant(name: &str, args: &[(&str, f64)]) {
    if prof_enabled() {
        with_buf(|b| b.push(b'i', name, args));
    }
}

/// Record a counter sample (`ph: "C"`): the named counter track shows
/// `value` from this timestamp on. No-op while [`prof_enabled`] is
/// false.
#[inline]
pub fn counter_sample(name: &str, value: f64) {
    if prof_enabled() {
        with_buf(|b| b.push(b'C', name, &[("value", value)]));
    }
}

/// Clear every thread's recorded events and drop counts (thread/tid
/// registrations are kept). Intended for tests and for reusing one
/// process for several independently exported profiles.
pub fn reset() {
    let bufs = registry().lock().unwrap_or_else(|e| e.into_inner());
    for buf in bufs.iter() {
        let mut b = buf.lock().unwrap_or_else(|e| e.into_inner());
        b.events.clear();
        b.dropped = 0;
    }
}

/// Total events currently recorded across all threads.
pub fn event_count() -> usize {
    let bufs = registry().lock().unwrap_or_else(|e| e.into_inner());
    bufs.iter()
        .map(|b| b.lock().unwrap_or_else(|e| e.into_inner()).events.len())
        .sum()
}

/// Total events dropped (buffers at [`TIMELINE_CAP`]) across all threads.
pub fn dropped_total() -> u64 {
    let bufs = registry().lock().unwrap_or_else(|e| e.into_inner());
    bufs.iter()
        .map(|b| b.lock().unwrap_or_else(|e| e.into_inner()).dropped)
        .sum()
}

/// Sorted logical thread ids that currently hold at least one event.
pub fn tids_with_events() -> Vec<u64> {
    let bufs = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut tids: Vec<u64> = bufs
        .iter()
        .map(|b| b.lock().unwrap_or_else(|e| e.into_inner()))
        .filter(|b| !b.events.is_empty())
        .map(|b| b.tid)
        .collect();
    tids.sort_unstable();
    tids.dedup();
    tids
}

/// Serialize every thread's timeline as one Chrome Trace Event Format
/// document.
///
/// The document is an object with a `traceEvents` array — `thread_name`
/// / `thread_sort_index` metadata first, then all events merged and
/// sorted by timestamp (`ts` in microseconds, tie-broken by record
/// order) — plus a top-level `droppedEvents` count. It loads directly
/// in `chrome://tracing` and Perfetto.
pub fn chrome_trace_json() -> String {
    render_chrome_trace(None)
}

/// Like [`chrome_trace_json`], but keeping only events stamped with
/// `trace` (see [`crate::ctx`]) — one request's stage and task spans
/// across every thread, as a loadable Chrome-trace fragment. Threads
/// with no matching events are omitted entirely.
pub fn chrome_trace_fragment(trace: u64) -> String {
    render_chrome_trace(Some(trace))
}

fn render_chrome_trace(filter: Option<u64>) -> String {
    struct ThreadSnap {
        tid: u64,
        name: String,
        events: Vec<TlEvent>,
    }
    let (mut threads, dropped) = {
        let bufs = registry().lock().unwrap_or_else(|e| e.into_inner());
        let mut threads = Vec::with_capacity(bufs.len());
        let mut dropped = 0u64;
        for buf in bufs.iter() {
            let b = buf.lock().unwrap_or_else(|e| e.into_inner());
            dropped += b.dropped;
            let events: Vec<TlEvent> = b
                .events
                .iter()
                .filter(|e| filter.is_none_or(|t| e.trace == t))
                .cloned()
                .collect();
            if filter.is_some() && events.is_empty() {
                continue;
            }
            threads.push(ThreadSnap {
                tid: b.tid,
                name: b.name.clone(),
                events,
            });
        }
        (threads, dropped)
    };
    threads.sort_by_key(|t| t.tid);

    let mut merged: Vec<(u64, TlEvent)> = Vec::new();
    for t in &threads {
        merged.extend(t.events.iter().map(|e| (t.tid, e.clone())));
    }
    merged.sort_by_key(|(_, e)| (e.ts_ns, e.seq));

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("traceEvents");
    w.begin_array();
    // Process + thread metadata so the viewer names and orders tracks.
    fn meta(w: &mut JsonWriter, name: &str, tid: u64, fill_args: impl FnOnce(&mut JsonWriter)) {
        w.begin_object();
        w.field_str("name", name);
        w.field_str("ph", "M");
        w.field_u64("pid", 1);
        w.field_u64("tid", tid);
        w.key("args");
        w.begin_object();
        fill_args(w);
        w.end_object();
        w.end_object();
    }
    meta(&mut w, "process_name", 0, |w| w.field_str("name", "gef"));
    for t in &threads {
        meta(&mut w, "thread_name", t.tid, |w| {
            w.field_str("name", &t.name);
        });
        meta(&mut w, "thread_sort_index", t.tid, |w| {
            w.field_f64("sort_index", t.tid as f64);
        });
    }
    for (tid, e) in &merged {
        w.begin_object();
        w.field_str("name", &e.name);
        w.field_str(
            "ph",
            match e.ph {
                b'B' => "B",
                b'E' => "E",
                b'C' => "C",
                _ => "i",
            },
        );
        // Chrome trace timestamps are microseconds.
        w.field_f64("ts", e.ts_ns as f64 / 1_000.0);
        w.field_u64("pid", 1);
        w.field_u64("tid", *tid);
        if e.ph == b'i' {
            // Thread-scoped instant (a tick on that thread's track).
            w.field_str("s", "t");
        }
        if e.trace != 0 {
            // Non-standard field, ignored by trace viewers; lets tools
            // slice an unfiltered export by request after the fact.
            w.field_str("trace", &crate::hash::to_hex(e.trace));
        }
        if !e.args.is_empty() {
            w.key("args");
            w.begin_object();
            for (k, v) in &e.args {
                w.field_f64(k, *v);
            }
            w.end_object();
        }
        w.end_object();
    }
    w.end_array();
    w.field_str("displayTimeUnit", "ms");
    w.field_u64("droppedEvents", dropped);
    w.end_object();
    w.finish()
}

/// Write [`chrome_trace_json`] as `<dir>/<label>.trace.json` (`label`
/// sanitised to `[A-Za-z0-9._-]`), creating directories.
pub fn export_chrome_to(dir: &std::path::Path, label: &str) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let safe: String = label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    let path = dir.join(format!("{safe}.trace.json"));
    std::fs::write(&path, chrome_trace_json())?;
    Ok(path)
}

/// If profiling is on, write the merged timeline under
/// `results/profiles/` and return the path (logging it to stderr);
/// otherwise do nothing. Call once at the end of a profiled run.
pub fn emit(label: &str) -> Option<std::path::PathBuf> {
    if !prof_enabled() {
        return None;
    }
    match export_chrome_to(std::path::Path::new("results/profiles"), label) {
        Ok(path) => {
            eprintln!("gef-prof: wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("gef-prof: failed to write chrome trace: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, JsonValue};

    // Profiling state and buffers are process-global, and enabling
    // profiling turns on the Telemetry::event timeline mirror for every
    // thread — so these tests share the crate-wide test lock.
    use crate::TEST_LOCK;

    fn with_prof<T>(f: impl FnOnce() -> T) -> T {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_prof_enabled(true);
        let out = f();
        set_prof_enabled(false);
        reset();
        out
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_prof_enabled(false);
        let before = event_count();
        begin("ghost");
        end("ghost");
        instant("ghost.tick", &[("x", 1.0)]);
        counter_sample("ghost.counter", 2.0);
        assert_eq!(event_count(), before);
    }

    #[test]
    fn begin_end_pairs_survive_export() {
        with_prof(|| {
            begin_with("phase", &[("chunk", 3.0)]);
            instant("tick", &[]);
            end("phase");
            let doc = chrome_trace_json();
            crate::json::validate(&doc).unwrap_or_else(|e| panic!("invalid: {e}\n{doc}"));
            let v = parse(&doc).unwrap();
            let events = v.get("traceEvents").and_then(JsonValue::as_array).unwrap();
            let phases: Vec<&str> = events
                .iter()
                .filter(|e| e.get("name").and_then(JsonValue::as_str) == Some("phase"))
                .map(|e| e.get("ph").and_then(JsonValue::as_str).unwrap())
                .collect();
            assert_eq!(phases, ["B", "E"]);
            // Every event carries the required CTF fields.
            for e in events {
                for k in ["name", "ph", "pid", "tid"] {
                    assert!(e.get(k).is_some(), "missing {k}");
                }
            }
        });
    }

    #[test]
    fn buffers_are_bounded_and_count_drops() {
        with_prof(|| {
            for _ in 0..(TIMELINE_CAP + 5) {
                instant("flood", &[]);
            }
            assert_eq!(dropped_total(), 5);
            assert!(event_count() <= TIMELINE_CAP);
        });
    }

    #[test]
    fn unregistered_and_worker_tids_are_disjoint_and_stable() {
        with_prof(|| {
            instant("main.tick", &[]);
            let t = std::thread::spawn(|| {
                register_worker(2);
                instant("worker.tick", &[]);
            });
            t.join().unwrap();
            let tids = tids_with_events();
            // This (unregistered) thread claimed tid 0 or an overflow
            // tid >= 1000 — never a worker slot.
            assert!(
                tids.iter().any(|&t| t == 0 || t >= 1000),
                "unregistered thread outside worker range: {tids:?}"
            );
            assert!(tids.contains(&3), "worker 2 maps to tid 3: {tids:?}");
            // Re-recording lands on the same tid set (stability).
            instant("main.tick2", &[]);
            assert_eq!(tids_with_events(), tids);
        });
    }

    #[test]
    fn fragment_keeps_only_one_requests_events() {
        with_prof(|| {
            instant("ambient", &[]);
            {
                let _a = crate::ctx::TraceCtx::with_id(0xa1).enter();
                begin("req.a");
                end("req.a");
            }
            {
                let _b = crate::ctx::TraceCtx::with_id(0xb2).enter();
                begin("req.b");
                end("req.b");
            }
            let doc = chrome_trace_fragment(0xa1);
            crate::json::validate(&doc).unwrap_or_else(|e| panic!("invalid: {e}\n{doc}"));
            let v = parse(&doc).unwrap();
            let events = v.get("traceEvents").and_then(JsonValue::as_array).unwrap();
            let named: Vec<&str> = events
                .iter()
                .filter(|e| e.get("ph").and_then(JsonValue::as_str) != Some("M"))
                .map(|e| e.get("name").and_then(JsonValue::as_str).unwrap())
                .collect();
            assert_eq!(named, ["req.a", "req.a"]);
            // Every non-metadata event is stamped with the request id.
            for e in events
                .iter()
                .filter(|e| e.get("ph").and_then(JsonValue::as_str) != Some("M"))
            {
                assert_eq!(
                    e.get("trace").and_then(JsonValue::as_str),
                    Some(crate::hash::to_hex(0xa1).as_str())
                );
            }
        });
    }

    #[test]
    fn reset_clears_events_but_keeps_registrations() {
        with_prof(|| {
            instant("pre", &[]);
            assert!(event_count() >= 1);
            reset();
            assert_eq!(event_count(), 0);
            instant("post", &[]);
            assert!(!tids_with_events().is_empty());
        });
    }
}
