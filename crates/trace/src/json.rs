//! Minimal hand-rolled JSON support.
//!
//! `gef-trace` is intentionally dependency-free, so it ships its own tiny
//! JSON *writer* ([`JsonWriter`]) for serializing [`crate::report::TelemetryReport`]
//! and a structural *validator* ([`validate`]) used by tests to assert that
//! emitted documents are well-formed. Neither is a general-purpose JSON
//! library: the writer only produces what the tracer needs, and the
//! validator checks syntax, not schema.

/// Escape a string for inclusion in a JSON document (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number.
///
/// JSON has no NaN/Infinity; those are mapped to `null` so documents stay
/// parseable by strict consumers.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` gives a round-trippable shortest representation.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Incremental writer that produces compact, syntactically valid JSON.
///
/// The writer tracks nesting and comma placement; callers just emit
/// fields/values in order:
///
/// ```
/// use gef_trace::json::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.field_str("name", "gam.fit");
/// w.field_u64("count", 3);
/// w.key("nested");
/// w.begin_array();
/// w.value_f64(1.5);
/// w.end_array();
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"name":"gam.fit","count":3,"nested":[1.5]}"#);
/// ```
#[derive(Default)]
pub struct JsonWriter {
    buf: String,
    // true when the next emission at the current nesting level needs a comma
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        JsonWriter {
            buf: String::new(),
            need_comma: vec![false],
        }
    }

    fn pre_value(&mut self) {
        if let Some(last) = self.need_comma.last_mut() {
            if *last {
                self.buf.push(',');
            }
            *last = true;
        }
    }

    /// Open a `{`. Use [`Self::key`] first when inside an object.
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.buf.push('{');
        self.need_comma.push(false);
    }

    /// Close the current `}`.
    pub fn end_object(&mut self) {
        self.need_comma.pop();
        self.buf.push('}');
    }

    /// Open a `[`.
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.buf.push('[');
        self.need_comma.push(false);
    }

    /// Close the current `]`.
    pub fn end_array(&mut self) {
        self.need_comma.pop();
        self.buf.push(']');
    }

    /// Emit an object key; the next emission is its value.
    pub fn key(&mut self, k: &str) {
        self.pre_value();
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
        // The value that follows must not get a comma.
        if let Some(last) = self.need_comma.last_mut() {
            *last = false;
        }
    }

    /// Emit a string value.
    pub fn value_str(&mut self, v: &str) {
        self.pre_value();
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
    }

    /// Emit an unsigned integer value.
    pub fn value_u64(&mut self, v: u64) {
        self.pre_value();
        self.buf.push_str(&v.to_string());
    }

    /// Emit a float value (NaN/inf become `null`).
    pub fn value_f64(&mut self, v: f64) {
        self.pre_value();
        self.buf.push_str(&number(v));
    }

    /// Emit a raw pre-serialized JSON fragment as a value.
    ///
    /// The fragment must itself be valid JSON; it is inserted verbatim.
    pub fn value_raw(&mut self, fragment: &str) {
        self.pre_value();
        self.buf.push_str(fragment);
    }

    /// `"k": "v"` shorthand.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.value_str(v);
    }

    /// `"k": v` shorthand for integers.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.value_u64(v);
    }

    /// `"k": v` shorthand for floats.
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.value_f64(v);
    }

    /// Consume the writer and return the document.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Structurally validate a JSON document.
///
/// Returns `Ok(())` when `input` is exactly one well-formed JSON value,
/// otherwise `Err` with a byte offset and message. This is a strict
/// recursive-descent checker (no trailing garbage, no trailing commas,
/// `\uXXXX` escapes verified) used by the test suite to vouch for the
/// output of [`JsonWriter`] without pulling in `serde_json`.
pub fn validate(input: &str) -> Result<(), String> {
    let b = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, "true"),
        Some(b'f') => parse_lit(b, pos, "false"),
        Some(b'n') => parse_lit(b, pos, "null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match b.get(*pos) {
                                Some(h) if h.is_ascii_hexdigit() => *pos += 1,
                                _ => return Err(format!("bad \\u escape at byte {pos}")),
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control char in string at byte {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

/// A parsed JSON value (see [`parse`]).
///
/// Objects preserve key order as a `Vec` of pairs — telemetry reports
/// are emitted with deterministic ordering, and consumers like the
/// `telemetry_diff` CI tool compare them order-sensitively.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also what non-finite numbers serialize to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, key order preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a key in an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize back to compact JSON (object key order preserved;
    /// non-finite numbers become `null`, mirroring [`number`]).
    ///
    /// Together with [`parse`] this gives read-modify-write over
    /// emitted documents — e.g. the bench-regression gate appending a
    /// run to its `BENCH_trajectory.json` history.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_to(&mut out);
        out
    }

    fn write_to(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(v) => out.push_str(&number(*v)),
            JsonValue::String(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_to(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.write_to(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parse one JSON document into a [`JsonValue`].
///
/// Same strictness as [`validate`] (no trailing garbage, no trailing
/// commas). This is the read half of the crate's dependency-free JSON
/// support, used by tools that consume emitted telemetry reports.
///
/// ```
/// use gef_trace::json::{parse, JsonValue};
/// let v = parse(r#"{"name":"gam.fit","count":3}"#).unwrap();
/// assert_eq!(v.get("count").and_then(JsonValue::as_f64), Some(3.0));
/// ```
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let b = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value_build(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn parse_value_build(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Object(pairs));
            }
            loop {
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b'"') {
                    return Err(format!("expected object key at byte {pos}"));
                }
                let key = parse_string_build(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                pairs.push((key, parse_value_build(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Object(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            loop {
                items.push(parse_value_build(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Array(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string_build(b, pos).map(JsonValue::String),
        Some(b't') => parse_lit(b, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null").map(|()| JsonValue::Null),
        Some(c) if *c == b'-' || c.is_ascii_digit() => {
            let start = *pos;
            parse_number(b, pos)?;
            let text = std::str::from_utf8(&b[start..*pos])
                .map_err(|_| format!("invalid utf-8 in number at byte {start}"))?;
            text.parse::<f64>()
                .map(JsonValue::Number)
                .map_err(|_| format!("unparseable number at byte {start}"))
        }
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}")),
    }
}

fn parse_string_build(b: &[u8], pos: &mut usize) -> Result<String, String> {
    let start = *pos;
    parse_string(b, pos)?;
    // Slice between the validated quotes, then decode escapes.
    let raw = std::str::from_utf8(&b[start + 1..*pos - 1])
        .map_err(|_| format!("invalid utf-8 in string at byte {start}"))?;
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('b') => out.push('\u{8}'),
            Some('f') => out.push('\u{c}'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16)
                    .map_err(|_| format!("bad \\u escape in string at byte {start}"))?;
                // Validated above; lone surrogates fall back to U+FFFD.
                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
            }
            _ => return Err(format!("bad escape in string at byte {start}")),
        }
    }
    Ok(out)
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("expected digits at byte {pos}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("expected fraction digits at byte {pos}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("expected exponent digits at byte {pos}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_produces_valid_json() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "pipeline.gam_fit");
        w.field_u64("count", 42);
        w.field_f64("mean_ns", 1234.5);
        w.field_f64("nan_becomes_null", f64::NAN);
        w.key("items");
        w.begin_array();
        for i in 0..3 {
            w.begin_object();
            w.field_u64("i", i);
            w.end_object();
        }
        w.end_array();
        w.key("empty");
        w.begin_array();
        w.end_array();
        w.end_object();
        let doc = w.finish();
        validate(&doc).unwrap_or_else(|e| panic!("invalid: {e}\n{doc}"));
        assert!(doc.contains(r#""nan_becomes_null":null"#));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let doc = format!("\"{}\"", escape("tab\tchar and \u{1} ctrl"));
        validate(&doc).unwrap();
    }

    #[test]
    fn validator_accepts_valid_documents() {
        for doc in [
            "{}",
            "[]",
            "null",
            "true",
            "-1.5e-3",
            r#"{"a":[1,2,{"b":null}],"c":"xé"}"#,
            "  { \"k\" : [ ] }  ",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "{a:1}",
            "\"unterminated",
            "01x",
            "1 2",
            "[1] trailing",
            "{\"bad\\q\":1}",
        ] {
            assert!(validate(doc).is_err(), "should reject: {doc}");
        }
    }

    #[test]
    fn number_formatting_round_trips() {
        for v in [0.0, -1.25, 1e-9, 123456789.5, f64::MAX] {
            let s = number(v);
            let parsed: f64 = s.parse().unwrap();
            assert_eq!(parsed, v, "{s}");
        }
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn parser_builds_values() {
        let v = parse(r#"{"a":[1,2.5,-3e1],"b":{"s":"x\ny é"},"t":true,"n":null}"#).unwrap();
        let arr = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_f64(), Some(-30.0));
        let s = v
            .get("b")
            .and_then(|b| b.get("s"))
            .and_then(JsonValue::as_str);
        assert_eq!(s, Some("x\ny é"));
        assert_eq!(v.get("t"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("n"), Some(&JsonValue::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("label", "quote \" slash \\ tab \t");
        w.field_f64("value", -0.125);
        w.key("items");
        w.begin_array();
        w.value_u64(7);
        w.value_raw("null");
        w.end_array();
        w.end_object();
        let doc = w.finish();
        let v = parse(&doc).unwrap();
        assert_eq!(
            v.get("label").and_then(JsonValue::as_str),
            Some("quote \" slash \\ tab \t")
        );
        assert_eq!(v.get("value").and_then(JsonValue::as_f64), Some(-0.125));
        let items = v.get("items").and_then(JsonValue::as_array).unwrap();
        assert_eq!(items, &[JsonValue::Number(7.0), JsonValue::Null]);
    }

    #[test]
    fn json_value_round_trips_through_to_json() {
        let doc = r#"{"a":[1,2.5,-30],"b":{"s":"x\ny \" é"},"t":true,"n":null,"e":[],"o":{}}"#;
        let v = parse(doc).unwrap();
        let re = v.to_json();
        validate(&re).unwrap_or_else(|e| panic!("invalid: {e}\n{re}"));
        assert_eq!(parse(&re).unwrap(), v, "{re}");
        // Non-finite numbers serialize as null.
        assert_eq!(JsonValue::Number(f64::NAN).to_json(), "null");
    }

    #[test]
    fn parser_rejects_what_validator_rejects() {
        for doc in ["", "{", "[1,]", "{\"a\":1,}", "1 2", "[1] trailing"] {
            assert!(parse(doc).is_err(), "should reject: {doc}");
        }
    }
}
