//! Log-linear histogram for latency-style values.
//!
//! Values (nanoseconds, counts, …) are bucketed on a log-linear grid: one
//! major bucket per power of two of the value, each subdivided into
//! [`SUB_BUCKETS`] linear sub-buckets. This bounds the relative quantile
//! error at `1 / SUB_BUCKETS` (25%) per estimate while keeping the whole
//! histogram a fixed 256 × `u64` array — cheap enough to keep one per
//! instrumented site and merge without allocation.

/// Number of power-of-two major buckets (covers the full `u64` range).
pub const MAJOR_BUCKETS: usize = 64;
/// Linear subdivisions inside each major bucket.
pub const SUB_BUCKETS: usize = 4;
/// Total bucket count of a [`Histogram`].
pub const NUM_BUCKETS: usize = MAJOR_BUCKETS * SUB_BUCKETS;

/// Fixed-size log-linear histogram with exact `count`/`sum`/`min`/`max`.
///
/// Quantiles ([`Histogram::quantile`]) are estimated from the bucket grid;
/// everything else is exact. The histogram is a plain value type — thread
/// safety is provided by the registry that owns it.
#[derive(Clone)]
pub struct Histogram {
    buckets: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new([0u64; NUM_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Index of the bucket that `value` falls into.
    fn bucket_index(value: u64) -> usize {
        // Values below SUB_BUCKETS map 1:1 onto the first buckets.
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros() as usize; // >= 2 here
        let major = msb - 1; // shift so small values occupy low majors
        let sub = ((value >> (msb - 2)) & (SUB_BUCKETS as u64 - 1)) as usize;
        let idx = major * SUB_BUCKETS + sub;
        idx.min(NUM_BUCKETS - 1)
    }

    /// Representative (lower-bound) value of bucket `idx`, used when
    /// estimating quantiles.
    fn bucket_floor(idx: usize) -> u64 {
        if idx < SUB_BUCKETS {
            return idx as u64;
        }
        let major = idx / SUB_BUCKETS;
        let sub = (idx % SUB_BUCKETS) as u64;
        let msb = major + 1;
        if msb >= 64 {
            // The top few bucket slots are unreachable from `bucket_index`
            // (it clamps at major 62); saturate instead of overflowing.
            return u64::MAX;
        }
        (1u64 << msb) + (sub << (msb - 2))
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) from the bucket grid.
    ///
    /// The estimate is the floor of the bucket containing the target rank,
    /// clamped to the exact `[min, max]` range, so single-bucket
    /// distributions return exact values.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation (1-based, rounded up).
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_floor(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn exact_stats_are_exact() {
        let mut h = Histogram::new();
        for v in [3u64, 9, 1000, 7, 42] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 3 + 9 + 1000 + 7 + 42);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(777);
        }
        assert_eq!(h.quantile(0.5), 777);
        assert_eq!(h.quantile(0.95), 777);
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5) as f64;
        let p95 = h.quantile(0.95) as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.30, "p50={p50}");
        assert!((p95 - 9_500.0).abs() / 9_500.0 < 0.30, "p95={p95}");
        // Monotone in q.
        assert!(h.quantile(0.1) <= h.quantile(0.5));
        assert!(h.quantile(0.5) <= h.quantile(0.99));
    }

    #[test]
    fn bucket_index_is_monotone_nondecreasing() {
        let mut last = 0usize;
        for v in 0..100_000u64 {
            let idx = Histogram::bucket_index(v);
            assert!(idx >= last, "v={v} idx={idx} last={last}");
            last = idx;
        }
        // Extremes don't panic and land in range.
        assert!(Histogram::bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn bucket_floor_is_consistent_with_index() {
        for idx in 0..NUM_BUCKETS {
            let floor = Histogram::bucket_floor(idx);
            if floor == u64::MAX {
                continue; // unreachable top slots saturate
            }
            // The floor of a bucket must map back into that bucket.
            assert_eq!(
                Histogram::bucket_index(floor),
                idx,
                "idx={idx} floor={floor}"
            );
        }
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 100);
        assert_eq!(a.sum(), 111);
    }
}
