//! `gef-trace` — zero-dependency structured telemetry for the GEF workspace.
//!
//! Every crate in the workspace (pipeline orchestration, forest training,
//! GAM fitting, data generation) reports into one process-wide registry
//! ([`Telemetry`], reachable via [`global`]). The registry offers four
//! primitive kinds:
//!
//! * **Spans** — hierarchical wall-clock timers. [`Span::enter`] returns an
//!   RAII guard; nested spans are recorded under a `/`-joined path
//!   (`pipeline.gam_fit/gam.gcv_grid`). Durations land in log-linear
//!   [`hist::Histogram`]s, so each site reports count, total, mean,
//!   p50/p95/p99, and min/max.
//! * **Counters** — monotonically increasing `u64`s behind [`Counter`]
//!   handles (one relaxed atomic add per increment). Use the [`counter!`]
//!   macro for a cached per-callsite handle.
//! * **Gauges** — last-value-wins `f64`s for convergence-style facts
//!   (`gam.pirls_iters`, final deviance, …).
//! * **Events** — a bounded log of named records with numeric fields
//!   (per-λ GCV evaluations, per-boosting-round losses, …).
//!
//! # Enabling
//!
//! Telemetry is **off by default** and every instrumentation call first
//! checks [`enabled`] (a single relaxed atomic load). It turns on via the
//! `GEF_TRACE` environment variable:
//!
//! | `GEF_TRACE` | effect |
//! |---|---|
//! | unset, `""`, `0`, `off` | disabled (default) |
//! | `1`, `on`, `summary` | collect, print a human-readable table on [`Telemetry::emit`] |
//! | `json` | collect, write a [`report::TelemetryReport`] JSON file on [`Telemetry::emit`] |
//!
//! Tests and embedding applications can override the environment with
//! [`set_mode`] / [`set_enabled`].
//!
//! Compiling with the `noop` cargo feature pins [`enabled`] to a constant
//! `false`, letting the optimizer delete instrumentation from hot paths
//! entirely.
//!
//! Orthogonal to the aggregate registry, the [`timeline`] module records
//! *time-resolved* per-thread profiles (gated by `GEF_PROF`, exported as
//! Chrome Trace Event Format JSON) and [`mem`] holds the allocation
//! counters fed by the `gef-prof` tracking allocator. The [`recorder`]
//! module is the *always-on* complement: a bounded per-thread flight
//! recorder of recent activity that incident dumps drain on failure,
//! gated only by the `noop` feature.
//!
//! # Example
//!
//! ```
//! gef_trace::set_enabled(true);
//! {
//!     let _span = gef_trace::Span::enter("gam.fit");
//!     gef_trace::counter!("gam.pirls_iterations").add(7);
//!     gef_trace::global().event("gam.gcv", &[("lambda", 0.1), ("gcv", 1.23)]);
//! }
//! let report = gef_trace::global().snapshot("example");
//! assert_eq!(report.spans[0].name, "gam.fit");
//! gef_trace::set_enabled(false);
//! # gef_trace::global().reset();
//! ```

#![deny(missing_docs)]

pub mod budget;
pub mod ctx;
pub mod env;
pub mod fault;
pub mod hash;
pub mod hist;
pub mod json;
pub mod mem;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod timeline;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use hist::Histogram;
use report::TelemetryReport;

/// Maximum retained events; later events are counted as dropped.
pub const EVENT_CAP: usize = 10_000;

/// What the tracer does with collected data on [`Telemetry::emit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Collection disabled; instrumentation is a single atomic load.
    Disabled,
    /// Collect and print a human-readable summary table to stderr.
    Summary,
    /// Collect and write a JSON [`report::TelemetryReport`].
    Json,
}

// 0 = uninitialised (read GEF_TRACE on first use), then Mode + 1.
static MODE: AtomicU8 = AtomicU8::new(0);

fn mode_from_env() -> Mode {
    match std::env::var("GEF_TRACE") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "" | "0" | "off" | "false" => Mode::Disabled,
            "json" => Mode::Json,
            _ => Mode::Summary,
        },
        Err(_) => Mode::Disabled,
    }
}

fn encode(m: Mode) -> u8 {
    match m {
        Mode::Disabled => 1,
        Mode::Summary => 2,
        Mode::Json => 3,
    }
}

/// Current tracing mode (resolving `GEF_TRACE` on first call).
pub fn mode() -> Mode {
    if cfg!(feature = "noop") {
        return Mode::Disabled;
    }
    match MODE.load(Ordering::Relaxed) {
        1 => Mode::Disabled,
        2 => Mode::Summary,
        3 => Mode::Json,
        _ => {
            let m = mode_from_env();
            MODE.store(encode(m), Ordering::Relaxed);
            m
        }
    }
}

/// Force a tracing mode, overriding `GEF_TRACE`.
pub fn set_mode(m: Mode) {
    MODE.store(encode(m), Ordering::Relaxed);
}

/// Convenience wrapper around [`set_mode`]: `true` → [`Mode::Summary`],
/// `false` → [`Mode::Disabled`].
pub fn set_enabled(on: bool) {
    set_mode(if on { Mode::Summary } else { Mode::Disabled });
}

/// Whether instrumentation is currently collecting.
///
/// With the `noop` cargo feature this is a constant `false` and every
/// guarded instrumentation block compiles away.
#[inline(always)]
pub fn enabled() -> bool {
    if cfg!(feature = "noop") {
        return false;
    }
    // Fast path: one relaxed load once initialised.
    match MODE.load(Ordering::Relaxed) {
        0 => mode() != Mode::Disabled,
        1 => false,
        _ => true,
    }
}

/// Handle to a named monotonically increasing counter.
///
/// Cloning is cheap (an `Arc` bump); increments are relaxed atomic adds and
/// become no-ops while tracing is disabled.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter (no-op while disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one (no-op while disabled).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One record in the bounded event log: a name plus numeric fields.
#[derive(Clone, Debug)]
pub struct Event {
    /// Event kind, e.g. `"gam.gcv"`.
    pub name: String,
    /// Ordered `(field, value)` pairs.
    pub fields: Vec<(String, f64)>,
}

struct EventLog {
    events: Vec<Event>,
    dropped: u64,
}

/// Process-wide telemetry registry.
///
/// Obtain the shared instance with [`global`]. All methods are thread-safe;
/// stores are keyed by name in `BTreeMap`s so snapshots and reports are
/// deterministically ordered.
pub struct Telemetry {
    start: Mutex<Instant>,
    spans: Mutex<BTreeMap<String, Histogram>>,
    values: Mutex<BTreeMap<String, Histogram>>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    events: Mutex<EventLog>,
}

static GLOBAL: OnceLock<Telemetry> = OnceLock::new();

/// The process-wide [`Telemetry`] registry.
pub fn global() -> &'static Telemetry {
    GLOBAL.get_or_init(Telemetry::new)
}

impl Telemetry {
    fn new() -> Self {
        Telemetry {
            start: Mutex::new(Instant::now()),
            spans: Mutex::new(BTreeMap::new()),
            values: Mutex::new(BTreeMap::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            events: Mutex::new(EventLog {
                events: Vec::new(),
                dropped: 0,
            }),
        }
    }

    /// Clear all collected data (counters are reset to zero but existing
    /// [`Counter`] handles stay valid). Intended for tests and for
    /// reusing one process for several independently reported runs.
    pub fn reset(&self) {
        *self.start.lock().unwrap() = Instant::now();
        self.spans.lock().unwrap().clear();
        self.values.lock().unwrap().clear();
        for c in self.counters.lock().unwrap().values() {
            c.store(0, Ordering::Relaxed);
        }
        self.gauges.lock().unwrap().clear();
        let mut log = self.events.lock().unwrap();
        log.events.clear();
        log.dropped = 0;
    }

    /// Record a completed span duration under `path` (no-op while disabled).
    pub fn record_span_ns(&self, path: &str, ns: u64) {
        if !enabled() {
            return;
        }
        let mut spans = self.spans.lock().unwrap();
        spans.entry(path.to_string()).or_default().record(ns);
    }

    /// Record a raw value into the named histogram (no-op while disabled).
    ///
    /// Use for non-span distributions: batch sizes, per-tree leaf counts,
    /// accumulated sub-phase nanoseconds, ….
    pub fn record_value(&self, name: &str, value: u64) {
        if !enabled() {
            return;
        }
        let mut values = self.values.lock().unwrap();
        values.entry(name.to_string()).or_default().record(value);
    }

    /// Get (or create) the named counter. Prefer the [`counter!`] macro on
    /// hot paths — it caches the handle per call site.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.counters.lock().unwrap();
        Counter(Arc::clone(
            counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        ))
    }

    /// Add `n` to the named counter (no-op while disabled). Convenience
    /// for cold paths; hot paths should hold a [`Counter`].
    pub fn add(&self, name: &str, n: u64) {
        if !enabled() {
            return;
        }
        self.counter(name).add(n);
    }

    /// Set a last-value-wins gauge (no-op while disabled).
    pub fn gauge(&self, name: &str, value: f64) {
        if !enabled() {
            return;
        }
        self.gauges.lock().unwrap().insert(name.to_string(), value);
    }

    /// Append an event with numeric fields (no-op while disabled). At most
    /// [`EVENT_CAP`] events are retained; beyond that only a drop count is
    /// kept. While profiling is on ([`timeline::prof_enabled`]) the event
    /// is also mirrored onto this thread's timeline as an instant, and the
    /// always-on [`recorder`] keeps it in its bounded ring regardless of
    /// `GEF_TRACE` / `GEF_PROF`.
    pub fn event(&self, name: &str, fields: &[(&str, f64)]) {
        recorder::record(recorder::Kind::Event, name, fields);
        if timeline::prof_enabled() {
            timeline::instant(name, fields);
        }
        if !enabled() {
            return;
        }
        let mut log = self.events.lock().unwrap();
        if log.events.len() >= EVENT_CAP {
            log.dropped += 1;
            return;
        }
        log.events.push(Event {
            name: name.to_string(),
            fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// Total nanoseconds recorded for the exact span path, or 0.
    pub fn span_total_ns(&self, path: &str) -> u64 {
        self.spans
            .lock()
            .unwrap()
            .get(path)
            .map(|h| h.sum())
            .unwrap_or(0)
    }

    /// Number of completions recorded for the exact span path.
    pub fn span_count(&self, path: &str) -> u64 {
        self.spans
            .lock()
            .unwrap()
            .get(path)
            .map(|h| h.count())
            .unwrap_or(0)
    }

    /// Total nanoseconds recorded for every span whose *leaf* segment
    /// (the part after the last `/`) equals `leaf`, regardless of where
    /// in the hierarchy the span was entered.
    pub fn span_leaf_total_ns(&self, leaf: &str) -> u64 {
        self.spans
            .lock()
            .unwrap()
            .iter()
            .filter(|(path, _)| path.rsplit('/').next() == Some(leaf))
            .map(|(_, h)| h.sum())
            .sum()
    }

    /// Number of completions recorded for every span whose leaf segment
    /// equals `leaf` (see [`Telemetry::span_leaf_total_ns`]).
    pub fn span_leaf_count(&self, leaf: &str) -> u64 {
        self.spans
            .lock()
            .unwrap()
            .iter()
            .filter(|(path, _)| path.rsplit('/').next() == Some(leaf))
            .map(|(_, h)| h.count())
            .sum()
    }

    /// Current value of the named counter, or 0 if never created.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .unwrap()
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Current value of the named gauge, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.lock().unwrap().get(name).copied()
    }

    /// Events whose name matches exactly, in insertion order.
    pub fn events_named(&self, name: &str) -> Vec<Event> {
        self.events
            .lock()
            .unwrap()
            .events
            .iter()
            .filter(|e| e.name == name)
            .cloned()
            .collect()
    }

    /// Snapshot everything collected so far into a serializable
    /// [`TelemetryReport`] labelled `label`.
    pub fn snapshot(&self, label: &str) -> TelemetryReport {
        let wall_ns = self.start.lock().unwrap().elapsed().as_nanos() as u64;
        let spans = self
            .spans
            .lock()
            .unwrap()
            .iter()
            .map(|(name, h)| report::SpanStats::from_hist(name, h))
            .collect();
        let histograms = self
            .values
            .lock()
            .unwrap()
            .iter()
            .map(|(name, h)| report::HistStats::from_hist(name, h))
            .collect();
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, c)| report::CounterStat {
                name: name.clone(),
                value: c.load(Ordering::Relaxed),
            })
            .collect();
        let mut gauges: Vec<report::GaugeStat> = self
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(name, v)| report::GaugeStat {
                name: name.clone(),
                value: *v,
            })
            .collect();
        if mem::tracking() {
            // Surface the allocator totals whenever the gef-prof
            // tracking allocator is feeding them (the `mem.*` namespace
            // is excluded from CI determinism diffs, like `par.*`).
            let m = mem::stats();
            gauges.push(report::GaugeStat {
                name: "mem.allocs_total".to_string(),
                value: m.allocs as f64,
            });
            gauges.push(report::GaugeStat {
                name: "mem.bytes_allocated_total".to_string(),
                value: m.bytes_allocated as f64,
            });
            gauges.push(report::GaugeStat {
                name: "mem.in_use_bytes".to_string(),
                value: m.in_use_bytes as f64,
            });
            gauges.push(report::GaugeStat {
                name: "mem.peak_bytes".to_string(),
                value: m.peak_bytes as f64,
            });
        }
        let log = self.events.lock().unwrap();
        TelemetryReport {
            schema_version: report::SCHEMA_VERSION,
            label: label.to_string(),
            created_unix_ms: report::unix_millis(),
            wall_ns,
            spans,
            histograms,
            counters,
            gauges,
            events: log.events.clone(),
            events_dropped: log.dropped,
        }
    }

    /// Act on collected data according to the current [`mode`]:
    ///
    /// * [`Mode::Disabled`] — do nothing, return `None`.
    /// * [`Mode::Summary`] — print [`TelemetryReport::summary`] to stderr.
    /// * [`Mode::Json`] — write `results/telemetry/<label>.json` (creating
    ///   directories) and return its path.
    pub fn emit(&self, label: &str) -> Option<std::path::PathBuf> {
        match mode() {
            Mode::Disabled => None,
            Mode::Summary => {
                eprintln!("{}", self.snapshot(label).summary());
                None
            }
            Mode::Json => match self.write_report(label) {
                Ok(path) => {
                    eprintln!("gef-trace: wrote {}", path.display());
                    Some(path)
                }
                Err(e) => {
                    eprintln!("gef-trace: failed to write report: {e}");
                    None
                }
            },
        }
    }

    /// Write the current snapshot as JSON under `results/telemetry/`.
    pub fn write_report(&self, label: &str) -> std::io::Result<std::path::PathBuf> {
        self.write_report_to(std::path::Path::new("results/telemetry"), label)
    }

    /// Write the current snapshot as JSON as `<dir>/<label>.json`
    /// (`label` is sanitised to `[A-Za-z0-9._-]`).
    pub fn write_report_to(
        &self,
        dir: &std::path::Path,
        label: &str,
    ) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let safe: String = label
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let path = dir.join(format!("{safe}.json"));
        std::fs::write(&path, self.snapshot(label).to_json())?;
        Ok(path)
    }
}

thread_local! {
    // Full paths of currently open spans on this thread (innermost last).
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// RAII wall-clock timer. Created with [`Span::enter`]; the elapsed time is
/// recorded into the global registry when the guard drops.
///
/// Spans nest per thread: a span entered while another is open on the same
/// thread is recorded under `parent_path/name`. While tracing is disabled,
/// `enter` takes no clock reading and `drop` records nothing.
///
/// ```
/// gef_trace::set_enabled(true);
/// {
///     let outer = gef_trace::Span::enter("pipeline.gam_fit");
///     assert_eq!(outer.path(), "pipeline.gam_fit");
///     let inner = gef_trace::Span::enter("gam.gcv_grid");
///     assert_eq!(inner.path(), "pipeline.gam_fit/gam.gcv_grid");
/// } // both guards drop here, recording their durations
/// assert_eq!(gef_trace::global().span_count("pipeline.gam_fit/gam.gcv_grid"), 1);
/// gef_trace::set_enabled(false);
/// # gef_trace::global().reset();
/// ```
#[must_use = "a span records on drop — bind it with `let _span = …`"]
pub struct Span {
    start: Option<Instant>,
    path: String,
    /// Aggregate recording ([`enabled`]) was on at enter.
    trace: bool,
    /// Timeline recording ([`timeline::prof_enabled`]) was on at enter.
    prof: bool,
    /// The flight [`recorder`] took a [`recorder::span_begin`] at enter
    /// (it is always-on, so this is normally true; constant `false`
    /// under the `noop` feature or while suppressed).
    rec: bool,
    /// Allocation counters at enter, when the tracking allocator is
    /// installed — drop records the span-attributed deltas.
    mem0: Option<mem::MemStats>,
}

impl Span {
    /// Open a span named `name` (e.g. `"pipeline.gam_fit"`).
    ///
    /// Active whenever aggregate tracing ([`enabled`]) *or* timeline
    /// profiling ([`timeline::prof_enabled`]) is on: the former records
    /// the duration histogram at the hierarchical path, the latter a
    /// begin/end pair on this thread's timeline. With both off, `enter`
    /// takes no clock reading and `drop` records nothing.
    pub fn enter(name: &str) -> Span {
        let trace = enabled();
        let prof = timeline::prof_enabled();
        // The flight recorder sees every span transition even with
        // tracing and profiling both off (its ring is bounded, so this
        // is fixed-cost).
        let rec = recorder::span_begin(name);
        if !trace && !prof {
            return Span {
                start: None,
                path: String::new(),
                trace: false,
                prof: false,
                rec,
                mem0: None,
            };
        }
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            path
        });
        if prof {
            timeline::begin(name);
        }
        let mem0 = if mem::tracking() {
            Some(mem::stats())
        } else {
            None
        };
        Span {
            start: Some(Instant::now()),
            path,
            trace,
            prof,
            rec,
            mem0,
        }
    }

    /// The full hierarchical path this span records under (empty while
    /// tracing is disabled).
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.rec {
            recorder::span_end();
        }
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos() as u64;
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
            if let Some(m0) = self.mem0 {
                let m1 = mem::stats();
                if self.trace {
                    let g = global();
                    g.record_value(
                        &format!("mem.allocs/{}", self.path),
                        m1.allocs.saturating_sub(m0.allocs),
                    );
                    g.record_value(
                        &format!("mem.bytes/{}", self.path),
                        m1.bytes_allocated.saturating_sub(m0.bytes_allocated),
                    );
                    let peak_rise = m1.peak_bytes.saturating_sub(m0.peak_bytes);
                    if peak_rise > 0 {
                        g.record_value(&format!("mem.peak_rise/{}", self.path), peak_rise);
                    }
                }
                if self.prof {
                    timeline::counter_sample("heap.in_use_bytes", m1.in_use_bytes as f64);
                }
            }
            if self.prof {
                let leaf = self.path.rsplit('/').next().unwrap_or(&self.path);
                timeline::end(leaf);
            }
            if self.trace {
                global().record_span_ns(&self.path, ns);
            }
        }
    }
}

/// The full path of the innermost span currently open on this thread,
/// or `None` when no span is open (or tracing is disabled).
///
/// Parallel runtimes capture this on the coordinating thread and replay
/// it on workers via [`push_base_path`] so spans opened inside parallel
/// tasks nest exactly as they would in a serial run.
pub fn current_path() -> Option<String> {
    if !enabled() {
        return None;
    }
    SPAN_STACK.with(|stack| stack.borrow().last().cloned())
}

/// RAII guard returned by [`push_base_path`]; pops the synthetic base
/// path from this thread's span stack on drop.
#[must_use = "the base path is popped when this guard drops"]
pub struct BasePathGuard {
    active: bool,
}

/// Seed this thread's span stack with a base path, so that subsequent
/// [`Span::enter`] calls nest under `path` instead of starting a fresh
/// top-level hierarchy. No-op (and records nothing) while tracing is
/// disabled or `path` is empty.
///
/// Used by worker threads to inherit the dispatching thread's span
/// context; the base path itself is *not* recorded as a span — only
/// spans opened under it are.
pub fn push_base_path(path: &str) -> BasePathGuard {
    if !enabled() || path.is_empty() {
        return BasePathGuard { active: false };
    }
    SPAN_STACK.with(|stack| stack.borrow_mut().push(path.to_string()));
    BasePathGuard { active: true }
}

impl Drop for BasePathGuard {
    fn drop(&mut self) {
        if self.active {
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
}

/// Time a closure under a span: `gef_trace::time("forest.train", || fit(..))`.
pub fn time<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let _span = Span::enter(name);
    f()
}

/// Per-call-site cached [`Counter`] handle:
///
/// ```
/// gef_trace::set_enabled(true);
/// gef_trace::counter!("forest.nodes_visited").add(12);
/// assert_eq!(gef_trace::global().counter_value("forest.nodes_visited"), 12);
/// gef_trace::set_enabled(false);
/// # gef_trace::global().reset();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __GEF_TRACE_COUNTER: ::std::sync::OnceLock<$crate::Counter> =
            ::std::sync::OnceLock::new();
        __GEF_TRACE_COUNTER.get_or_init(|| $crate::global().counter($name))
    }};
}

// Tracing and profiling state is process-global, and enabling either
// (set_enabled / timeline::set_prof_enabled) affects instrumentation
// running on *any* thread — e.g. Telemetry::event mirrors onto the
// timeline while profiling is on. In-crate tests that touch that state
// therefore all serialise on this one lock.
#[cfg(test)]
pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TEST_LOCK;

    fn with_tracing<T>(f: impl FnOnce() -> T) -> T {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        global().reset();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        global().reset();
        out
    }

    #[test]
    fn spans_nest_into_paths() {
        with_tracing(|| {
            {
                let outer = Span::enter("outer");
                assert_eq!(outer.path(), "outer");
                let inner = Span::enter("inner");
                assert_eq!(inner.path(), "outer/inner");
            }
            assert_eq!(global().span_count("outer"), 1);
            assert_eq!(global().span_count("outer/inner"), 1);
            // Sibling after both closed is top-level again.
            {
                let _s = Span::enter("sibling");
            }
            assert_eq!(global().span_count("sibling"), 1);
        });
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        global().reset();
        set_enabled(false);
        {
            let span = Span::enter("ghost");
            assert_eq!(span.path(), "");
        }
        global().add("ghost.counter", 5);
        global().gauge("ghost.gauge", 1.0);
        global().event("ghost.event", &[("x", 1.0)]);
        global().record_value("ghost.hist", 9);
        assert_eq!(global().span_count("ghost"), 0);
        assert_eq!(global().counter_value("ghost.counter"), 0);
        assert_eq!(global().gauge_value("ghost.gauge"), None);
        assert!(global().events_named("ghost.event").is_empty());
        global().reset();
    }

    #[test]
    fn counters_and_gauges_register() {
        with_tracing(|| {
            let c = global().counter("t.counter");
            c.add(3);
            c.incr();
            counter!("t.counter").add(6);
            assert_eq!(global().counter_value("t.counter"), 10);
            global().gauge("t.gauge", 2.5);
            global().gauge("t.gauge", 3.5);
            assert_eq!(global().gauge_value("t.gauge"), Some(3.5));
        });
    }

    #[test]
    fn events_are_bounded() {
        with_tracing(|| {
            for i in 0..(EVENT_CAP + 7) {
                global().event("t.evt", &[("i", i as f64)]);
            }
            let snap = global().snapshot("bounded");
            assert_eq!(snap.events.len(), EVENT_CAP);
            assert_eq!(snap.events_dropped, 7);
        });
    }

    #[test]
    fn counters_survive_reset_as_zero() {
        with_tracing(|| {
            let c = global().counter("t.reset");
            c.add(5);
            global().reset();
            assert_eq!(c.get(), 0);
            c.add(2);
            assert_eq!(global().counter_value("t.reset"), 2);
        });
    }

    #[test]
    fn threaded_counter_increments_are_not_lost() {
        with_tracing(|| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    std::thread::spawn(|| {
                        let c = global().counter("t.mt");
                        for _ in 0..1000 {
                            c.incr();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(global().counter_value("t.mt"), 4000);
        });
    }

    #[test]
    fn time_helper_records_and_returns() {
        with_tracing(|| {
            let v = time("t.timed", || 41 + 1);
            assert_eq!(v, 42);
            assert_eq!(global().span_count("t.timed"), 1);
        });
    }
}
