//! Snapshot types and rendering: schema-versioned JSON reports and the
//! human-readable summary table.
//!
//! A [`TelemetryReport`] is produced by [`crate::Telemetry::snapshot`] and
//! rendered either as JSON ([`TelemetryReport::to_json`]) — the document
//! written under `results/telemetry/` — or as a fixed-width table
//! ([`TelemetryReport::summary`]) for terminal use.

use crate::hist::Histogram;
use crate::json::JsonWriter;
use crate::Event;

/// Version of the JSON document layout. Bump on breaking changes to the
/// report structure; consumers should check this field first.
pub const SCHEMA_VERSION: u32 = 1;

/// Milliseconds since the Unix epoch (0 if the system clock is before it).
pub fn unix_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Aggregated duration statistics for one span path (all times ns).
#[derive(Clone, Debug)]
pub struct SpanStats {
    /// Hierarchical span path, e.g. `pipeline.gam_fit/gam.gcv_grid`.
    pub name: String,
    /// Number of completed spans recorded at this path.
    pub count: u64,
    /// Exact total of all durations.
    pub total_ns: u64,
    /// Mean duration.
    pub mean_ns: f64,
    /// Estimated median duration.
    pub p50_ns: u64,
    /// Estimated 95th-percentile duration.
    pub p95_ns: u64,
    /// Estimated 99th-percentile duration.
    pub p99_ns: u64,
    /// Exact fastest duration.
    pub min_ns: u64,
    /// Exact slowest duration.
    pub max_ns: u64,
}

impl SpanStats {
    pub(crate) fn from_hist(name: &str, h: &Histogram) -> SpanStats {
        SpanStats {
            name: name.to_string(),
            count: h.count(),
            total_ns: h.sum(),
            mean_ns: h.mean(),
            p50_ns: h.quantile(0.5),
            p95_ns: h.quantile(0.95),
            p99_ns: h.quantile(0.99),
            min_ns: h.min(),
            max_ns: h.max(),
        }
    }
}

/// Aggregated statistics for one value histogram (unit defined by the
/// recording site — see the metric's documentation).
#[derive(Clone, Debug)]
pub struct HistStats {
    /// Histogram name, e.g. `forest.hist_build_ns`.
    pub name: String,
    /// Number of recorded observations.
    pub count: u64,
    /// Exact sum of observations.
    pub sum: u64,
    /// Mean observation.
    pub mean: f64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Exact minimum.
    pub min: u64,
    /// Exact maximum.
    pub max: u64,
}

impl HistStats {
    pub(crate) fn from_hist(name: &str, h: &Histogram) -> HistStats {
        HistStats {
            name: name.to_string(),
            count: h.count(),
            sum: h.sum(),
            mean: h.mean(),
            p50: h.quantile(0.5),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            min: h.min(),
            max: h.max(),
        }
    }
}

/// Final value of one counter.
#[derive(Clone, Debug)]
pub struct CounterStat {
    /// Counter name, e.g. `forest.nodes_visited`.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// Final value of one gauge.
#[derive(Clone, Debug)]
pub struct GaugeStat {
    /// Gauge name, e.g. `gam.pirls_iters`.
    pub name: String,
    /// Last value set.
    pub value: f64,
}

/// Complete snapshot of the registry, ready for serialization.
///
/// All collections are sorted by name (spans additionally reflect their
/// hierarchical paths); `events` preserve insertion order.
#[derive(Clone, Debug)]
pub struct TelemetryReport {
    /// JSON layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Caller-supplied run label (also used as the output file stem).
    pub label: String,
    /// Wall-clock creation time, ms since Unix epoch.
    pub created_unix_ms: u64,
    /// Nanoseconds since the registry was created or last reset.
    pub wall_ns: u64,
    /// Per-span-path duration statistics.
    pub spans: Vec<SpanStats>,
    /// Value histograms.
    pub histograms: Vec<HistStats>,
    /// Counter totals.
    pub counters: Vec<CounterStat>,
    /// Gauge values.
    pub gauges: Vec<GaugeStat>,
    /// Bounded event log (insertion order).
    pub events: Vec<Event>,
    /// Events discarded after the log filled up.
    pub events_dropped: u64,
}

impl TelemetryReport {
    /// Serialize as a compact JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("schema_version", self.schema_version as u64);
        w.field_str("label", &self.label);
        w.field_u64("created_unix_ms", self.created_unix_ms);
        w.field_u64("wall_ns", self.wall_ns);
        w.key("spans");
        w.begin_array();
        for s in &self.spans {
            w.begin_object();
            w.field_str("name", &s.name);
            w.field_u64("count", s.count);
            w.field_u64("total_ns", s.total_ns);
            w.field_f64("mean_ns", s.mean_ns);
            w.field_u64("p50_ns", s.p50_ns);
            w.field_u64("p95_ns", s.p95_ns);
            w.field_u64("p99_ns", s.p99_ns);
            w.field_u64("min_ns", s.min_ns);
            w.field_u64("max_ns", s.max_ns);
            w.end_object();
        }
        w.end_array();
        w.key("histograms");
        w.begin_array();
        for h in &self.histograms {
            w.begin_object();
            w.field_str("name", &h.name);
            w.field_u64("count", h.count);
            w.field_u64("sum", h.sum);
            w.field_f64("mean", h.mean);
            w.field_u64("p50", h.p50);
            w.field_u64("p95", h.p95);
            w.field_u64("p99", h.p99);
            w.field_u64("min", h.min);
            w.field_u64("max", h.max);
            w.end_object();
        }
        w.end_array();
        w.key("counters");
        w.begin_array();
        for c in &self.counters {
            w.begin_object();
            w.field_str("name", &c.name);
            w.field_u64("value", c.value);
            w.end_object();
        }
        w.end_array();
        w.key("gauges");
        w.begin_array();
        for g in &self.gauges {
            w.begin_object();
            w.field_str("name", &g.name);
            w.field_f64("value", g.value);
            w.end_object();
        }
        w.end_array();
        w.key("events");
        w.begin_array();
        for e in &self.events {
            w.begin_object();
            w.field_str("name", &e.name);
            w.key("fields");
            w.begin_object();
            for (k, v) in &e.fields {
                w.field_f64(k, *v);
            }
            w.end_object();
            w.end_object();
        }
        w.end_array();
        w.field_u64("events_dropped", self.events_dropped);
        w.end_object();
        w.finish()
    }

    /// Render a fixed-width human-readable table (the `GEF_TRACE=summary`
    /// output).
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== gef-trace summary: {} (wall {}) ==\n",
            self.label,
            fmt_duration_ns(self.wall_ns)
        ));
        if !self.spans.is_empty() {
            let w = self
                .spans
                .iter()
                .map(|s| s.name.len())
                .max()
                .unwrap()
                .max(4);
            out.push_str(&format!(
                "-- spans --\n{:<w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}\n",
                "path", "count", "total", "mean", "p50", "p95", "p99",
            ));
            for s in &self.spans {
                out.push_str(&format!(
                    "{:<w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}\n",
                    s.name,
                    s.count,
                    fmt_duration_ns(s.total_ns),
                    fmt_duration_ns(s.mean_ns as u64),
                    fmt_duration_ns(s.p50_ns),
                    fmt_duration_ns(s.p95_ns),
                    fmt_duration_ns(s.p99_ns),
                ));
            }
        }
        if !self.histograms.is_empty() {
            let w = self
                .histograms
                .iter()
                .map(|h| h.name.len())
                .max()
                .unwrap()
                .max(4);
            out.push_str(&format!(
                "-- histograms --\n{:<w$}  {:>8}  {:>12}  {:>12}  {:>12}  {:>12}  {:>12}\n",
                "name", "count", "sum", "mean", "p50", "p95", "p99",
            ));
            for h in &self.histograms {
                out.push_str(&format!(
                    "{:<w$}  {:>8}  {:>12}  {:>12.1}  {:>12}  {:>12}  {:>12}\n",
                    h.name, h.count, h.sum, h.mean, h.p50, h.p95, h.p99,
                ));
            }
        }
        if !self.counters.is_empty() {
            let w = self
                .counters
                .iter()
                .map(|c| c.name.len())
                .max()
                .unwrap()
                .max(4);
            out.push_str("-- counters --\n");
            for c in &self.counters {
                out.push_str(&format!("{:<w$}  {:>14}\n", c.name, c.value));
            }
        }
        if !self.gauges.is_empty() {
            let w = self
                .gauges
                .iter()
                .map(|g| g.name.len())
                .max()
                .unwrap()
                .max(4);
            out.push_str("-- gauges --\n");
            for g in &self.gauges {
                out.push_str(&format!("{:<w$}  {:>14.6}\n", g.name, g.value));
            }
        }
        out.push_str(&format!(
            "-- events: {} recorded, {} dropped --\n",
            self.events.len(),
            self.events_dropped
        ));
        out
    }
}

/// Format nanoseconds with an adaptive unit (`412ns`, `3.1µs`, `25ms`, `1.2s`).
pub fn fmt_duration_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> TelemetryReport {
        let mut h = Histogram::new();
        h.record(1_500);
        h.record(2_500);
        TelemetryReport {
            schema_version: SCHEMA_VERSION,
            label: "unit \"test\"".to_string(),
            created_unix_ms: 1_700_000_000_000,
            wall_ns: 5_000_000,
            spans: vec![SpanStats::from_hist("pipeline.gam_fit", &h)],
            histograms: vec![HistStats::from_hist("forest.leaves", &h)],
            counters: vec![CounterStat {
                name: "forest.nodes_visited".into(),
                value: 123,
            }],
            gauges: vec![GaugeStat {
                name: "gam.pirls_iters".into(),
                value: 7.0,
            }],
            events: vec![Event {
                name: "gam.gcv".into(),
                fields: vec![("lambda".into(), 0.1), ("gcv".into(), f64::NAN)],
            }],
            events_dropped: 2,
        }
    }

    #[test]
    fn report_json_is_valid_and_complete() {
        let doc = sample_report().to_json();
        crate::json::validate(&doc).unwrap_or_else(|e| panic!("invalid: {e}\n{doc}"));
        for needle in [
            "\"schema_version\":1",
            "\"p99_ns\":",
            "\"p99\":",
            "pipeline.gam_fit",
            "forest.nodes_visited",
            "gam.pirls_iters",
            "\"gam.gcv\"",
            "\"events_dropped\":2",
            "unit \\\"test\\\"",
        ] {
            assert!(doc.contains(needle), "missing {needle} in {doc}");
        }
    }

    #[test]
    fn summary_renders_all_sections() {
        let s = sample_report().summary();
        for needle in [
            "-- spans --",
            "-- histograms --",
            "-- counters --",
            "-- gauges --",
            "pipeline.gam_fit",
            "2 dropped",
        ] {
            assert!(s.contains(needle), "missing {needle} in\n{s}");
        }
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration_ns(412), "412ns");
        assert_eq!(fmt_duration_ns(3_100), "3.1µs");
        assert_eq!(fmt_duration_ns(25_000_000), "25.0ms");
        assert_eq!(fmt_duration_ns(1_200_000_000), "1.20s");
    }
}
